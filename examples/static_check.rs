//! The static verifier on a deliberately broken program.
//!
//! Lowers the paper's reduction kernel for the disjoint address space,
//! deletes the transfer that brings the result back to the host — the
//! classic disjoint-space bug the paper's programmability tables are
//! really about — and shows both detectors catching it: the abstract
//! interpreter flags HM0102 statically, and the dynamic oracle confirms
//! the stale host read actually happens.
//!
//! Run with `cargo run --release --example static_check`.

use hetmem::dsl::{check_lowered, lower, programs, render, run_oracle, AddressSpace, Stmt};

fn main() {
    let program = programs::reduction();
    let lowered = lower(&program, AddressSpace::Disjoint);

    // The pristine lowering is clean — that is the regression net the
    // checker provides over `lower()` itself.
    assert!(check_lowered(&lowered).is_empty());
    assert!(run_oracle(&lowered).is_clean());

    // Now forget to copy the result back.
    let mut broken = lowered.clone();
    let idx = broken
        .stmts
        .iter()
        .position(|s| matches!(s, Stmt::MemcpyD2H { .. }))
        .expect("the disjoint lowering downloads its results");
    let deleted = broken.stmts.remove(idx);
    println!("deleted stmt {idx}: {deleted}\n");
    println!("{}", render(&broken));

    println!("--- static verifier ---");
    let diags = check_lowered(&broken);
    for d in &diags {
        println!("{d}");
    }
    assert!(!diags.is_empty(), "the checker must catch the deletion");

    println!("--- dynamic oracle ---");
    let oracle = run_oracle(&broken);
    for (stmt, buf) in &oracle.stale_host_reads {
        println!("stmt {stmt}: host reads stale `{buf}`");
    }
    assert!(
        !oracle.is_clean(),
        "the stale read really happens at run time"
    );

    // The two agree site-for-site — the property the differential test
    // suite holds across every kernel, model, and deletion.
    let static_sites: Vec<(usize, String)> = diags
        .iter()
        .filter_map(|d| Some((d.stmt?, d.buffer.clone()?)))
        .collect();
    assert_eq!(static_sites, oracle.stale_host_reads);
    println!("\nstatic verdicts match the oracle: {static_sites:?}");
}
