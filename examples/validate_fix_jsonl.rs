//! Validate `hetmem fix --format json` output: every line must parse
//! through the in-repo JSON module as an object with a string `"kind"`,
//! every `"fix"` line must carry the full schema (program, model,
//! changed flag, iteration count, comm-line totals, edit lists), and
//! the stream must end with exactly one `"summary"` line whose edit
//! totals match the fix lines above it. CI pipes the optimizer's JSON
//! through this binary.
//!
//! Run with `cargo run --release --example validate_fix_jsonl -- <file.jsonl>...`.

use hetmem::xplore::json::{parse, Json};

fn require_str(v: &Json, key: &str, at: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("{at}: missing string {key:?}"))
}

fn require_u64(v: &Json, key: &str, at: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{at}: missing integer {key:?}"))
}

/// `lines_saved` is a signed total (insertions can outnumber removals
/// on a broken input), so integers of either sign are acceptable.
fn require_i64(v: &Json, key: &str, at: &str) -> Result<i64, String> {
    match v.get(key) {
        Some(Json::UInt(n)) => i64::try_from(*n).map_err(|_| format!("{at}: {key} overflows i64")),
        Some(Json::Int(n)) => Ok(*n),
        _ => Err(format!("{at}: missing integer {key:?}")),
    }
}

fn require_edits(v: &Json, key: &str, at: &str) -> Result<u64, String> {
    let Some(Json::Arr(edits)) = v.get(key) else {
        return Err(format!("{at}: missing array {key:?}"));
    };
    for edit in edits {
        require_u64(edit, "stmt", at)?;
        require_str(edit, "text", at)?;
    }
    Ok(edits.len() as u64)
}

fn validate(path: &str) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read file: {e}"))?;
    let mut totals = [0u64; 3]; // changed, removed, inserted
    let mut saved = 0i64;
    let mut fixes = 0u64;
    let mut summary: Option<Json> = None;
    for (lineno, line) in text.lines().enumerate() {
        let at = format!("{path}:{}", lineno + 1);
        if summary.is_some() {
            return Err(format!("{at}: line after the summary"));
        }
        let v = parse(line).map_err(|e| format!("{at}: {e}"))?;
        match require_str(&v, "kind", &at)?.as_str() {
            "fix" => {
                fixes += 1;
                require_str(&v, "program", &at)?;
                require_str(&v, "model", &at)?;
                require_u64(&v, "iterations", &at)?;
                require_u64(&v, "residual", &at)?;
                let changed = match v.get("changed") {
                    Some(Json::Bool(b)) => *b,
                    _ => return Err(format!("{at}: missing boolean \"changed\"")),
                };
                totals[0] += u64::from(changed);
                totals[1] += require_edits(&v, "removed", &at)?;
                totals[2] += require_edits(&v, "inserted", &at)?;
                let before = require_u64(&v, "comm_lines_before", &at)?;
                let after = require_u64(&v, "comm_lines_after", &at)?;
                let lines_saved = require_i64(&v, "lines_saved", &at)?;
                saved += lines_saved;
                if lines_saved != before as i64 - after as i64 {
                    return Err(format!(
                        "{at}: lines_saved={lines_saved} but comm lines go \
                         {before} -> {after}"
                    ));
                }
                if !changed && lines_saved != 0 {
                    return Err(format!("{at}: unchanged fix saved {lines_saved} line(s)"));
                }
            }
            "summary" => summary = Some(v),
            other => return Err(format!("{at}: unknown kind {other:?}")),
        }
    }
    let summary = summary.ok_or_else(|| format!("{path}: no summary line"))?;
    let at = format!("{path}:summary");
    for (key, expected) in [
        ("fixed", fixes),
        ("changed", totals[0]),
        ("transfers_removed", totals[1]),
        ("transfers_inserted", totals[2]),
    ] {
        let got = require_u64(&summary, key, &at)?;
        if got != expected {
            return Err(format!("{at}: {key}={got} but the stream has {expected}"));
        }
    }
    let got_saved = require_i64(&summary, "lines_saved", &at)?;
    if got_saved != saved {
        return Err(format!(
            "{at}: lines_saved={got_saved} but the stream totals {saved}"
        ));
    }
    println!(
        "{path}: {fixes} fix report(s) OK ({} changed, {} removed, {} \
         inserted, {saved} line(s) saved)",
        totals[0], totals[1], totals[2]
    );
    Ok(())
}

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: validate_fix_jsonl <file.jsonl>...");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        if let Err(msg) = validate(path) {
            eprintln!("error: {msg}");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
