//! Form a three-node `hetmem serve` fleet in one process and watch the
//! cluster layer work: a request entering any node is forwarded to the
//! ring owner of its content key, a repeat through a different entry
//! node is answered from the owner's cache, and `/metrics?cluster=1`
//! merges every member's counters into one fleet-wide document.
//!
//! Run with `cargo run --release --example cluster_fleet`.

use hetmem::serve::{ServeOptions, Server};
use hetmem::xplore::json::Json;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One HTTP/1.1 exchange; the server closes the connection, so EOF
/// delimits the reply. Returns (status, body).
fn send(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    let mut request = format!("{method} {path} HTTP/1.1\r\nhost: example\r\n");
    if let Some(body) = body {
        request.push_str(&format!("content-length: {}\r\n", body.len()));
    }
    request.push_str("\r\n");
    request.push_str(body.unwrap_or(""));
    conn.write_all(request.as_bytes()).expect("write");
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read");
    let (head, body) = raw.split_once("\r\n\r\n").expect("framed reply");
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, body.to_owned())
}

fn main() {
    let cache_root = std::env::temp_dir().join("hetmem-cluster-fleet-example");
    let _ = std::fs::remove_dir_all(&cache_root);
    let node_options = |i: usize| ServeOptions {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        cache_dir: Some(cache_root.join(format!("node-{i}"))),
        heartbeat_ms: 100,
        replicate_after: 1,
        ..ServeOptions::default()
    };

    // The seed advertises a cluster listener; the others join it.
    let seed = Server::start(&ServeOptions {
        advertise: Some("127.0.0.1:0".to_owned()),
        ..node_options(0)
    })
    .expect("seed starts");
    let seed_cluster = seed.cluster_addr().expect("seed is clustered");
    println!(
        "seed     http {} / cluster {seed_cluster}",
        seed.local_addr()
    );
    let mut fleet = vec![seed];
    for i in 1..3 {
        let node = Server::start(&ServeOptions {
            join: Some(seed_cluster.to_string()),
            ..node_options(i)
        })
        .expect("node joins");
        println!(
            "member {i} http {} / cluster {}",
            node.local_addr(),
            node.cluster_addr().expect("clustered")
        );
        fleet.push(node);
    }

    // Heartbeats gossip the full member list; wait until every node
    // answers the fleet-wide metrics fan-out with all three members.
    for node in &fleet {
        loop {
            let (_, body) = send(node.local_addr(), "GET", "/metrics?cluster=1", None);
            let v = hetmem::xplore::json::parse(body.trim_end()).expect("metrics json");
            if v.get("nodes").and_then(Json::as_u64) == Some(3) {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    println!("fleet formed: every node sees 3 members");

    // The same request through two different entry nodes: the first
    // executes on the key's ring owner, the second is a cross-node
    // cache hit — byte-identical either way.
    let sim = "{\"kernel\":\"reduction\",\"system\":\"fusion\",\"scale\":256}";
    let (status, cold) = send(fleet[1].local_addr(), "POST", "/v1/sim", Some(sim));
    println!("sim via member 1: {status} ({} bytes, cold)", cold.len());
    let (status, warm) = send(fleet[2].local_addr(), "POST", "/v1/sim", Some(sim));
    println!("sim via member 2: {status} ({} bytes, cached)", warm.len());
    assert_eq!(cold, warm, "any entry node answers byte-identically");

    // The merged fleet view: summed counters plus the member list.
    let (_, body) = send(fleet[0].local_addr(), "GET", "/metrics?cluster=1", None);
    let v = hetmem::xplore::json::parse(body.trim_end()).expect("metrics json");
    let merged = v.get("merged").expect("merged block");
    for key in [
        "requests_total",
        "cache_hits",
        "cache_misses",
        "jobs_completed",
    ] {
        let n = merged.get(key).and_then(Json::as_u64).unwrap_or(0);
        println!("fleet {key}: {n}");
    }

    for node in &fleet {
        node.shutdown();
    }
    for node in fleet {
        node.wait();
    }
    let _ = std::fs::remove_dir_all(&cache_root);
    println!("fleet drained");
}
