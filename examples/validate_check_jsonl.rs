//! Validate `hetmem check --format json` output: every line must parse
//! through the in-repo JSON module as an object with a string `"kind"`,
//! every `"diagnostic"` line must carry the full schema (stable code,
//! name, severity, program, model, message), and the stream must end
//! with exactly one `"summary"` line whose totals match the diagnostics
//! above it. CI pipes the checker's JSON through this binary.
//!
//! Run with `cargo run --release --example validate_check_jsonl -- <file.jsonl>...`.

use hetmem::xplore::json::{parse, Json};

fn require_str(v: &Json, key: &str, at: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("{at}: missing string {key:?}"))
}

fn require_u64(v: &Json, key: &str, at: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{at}: missing integer {key:?}"))
}

fn validate(path: &str) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read file: {e}"))?;
    let mut totals = [0u64; 3]; // errors, warnings, notes
    let mut diagnostics = 0u64;
    let mut summary: Option<Json> = None;
    for (lineno, line) in text.lines().enumerate() {
        let at = format!("{path}:{}", lineno + 1);
        if summary.is_some() {
            return Err(format!("{at}: line after the summary"));
        }
        let v = parse(line).map_err(|e| format!("{at}: {e}"))?;
        match require_str(&v, "kind", &at)?.as_str() {
            "diagnostic" => {
                diagnostics += 1;
                let code = require_str(&v, "code", &at)?;
                if code.len() != 6 || !code.starts_with("HM") {
                    return Err(format!("{at}: malformed code {code:?}"));
                }
                require_str(&v, "name", &at)?;
                require_str(&v, "program", &at)?;
                require_str(&v, "model", &at)?;
                require_str(&v, "message", &at)?;
                match require_str(&v, "severity", &at)?.as_str() {
                    "error" => totals[0] += 1,
                    "warning" => totals[1] += 1,
                    "note" => totals[2] += 1,
                    other => return Err(format!("{at}: unknown severity {other:?}")),
                }
            }
            "summary" => summary = Some(v),
            other => return Err(format!("{at}: unknown kind {other:?}")),
        }
    }
    let summary = summary.ok_or_else(|| format!("{path}: no summary line"))?;
    let at = format!("{path}:summary");
    for (key, expected) in [
        ("errors", totals[0]),
        ("warnings", totals[1]),
        ("notes", totals[2]),
    ] {
        let got = require_u64(&summary, key, &at)?;
        if got != expected {
            return Err(format!("{at}: {key}={got} but the stream has {expected}"));
        }
    }
    let checked = require_u64(&summary, "checked", &at)?;
    println!(
        "{path}: {diagnostics} diagnostic(s) over {checked} report(s) OK \
         ({} error, {} warning, {} note)",
        totals[0], totals[1], totals[2]
    );
    Ok(())
}

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: validate_check_jsonl <file.jsonl>...");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        if let Err(msg) = validate(path) {
            eprintln!("error: {msg}");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
