//! Start an in-process `hetmem serve` instance and drive it as a client:
//! a sync `/v1/sim` (cold, then answered from the shared cache), an async
//! `/v1/sweep` polled to completion, a `/metrics` snapshot, and a
//! graceful drain.
//!
//! Run with `cargo run --release --example serve_client`.

use hetmem::serve::{ServeOptions, Server};
use hetmem::xplore::json::{parse, Json};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};

/// One HTTP/1.1 exchange; the server closes the connection, so EOF
/// delimits the reply. Returns (status, body).
fn send(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    let mut request = format!("{method} {path} HTTP/1.1\r\nhost: example\r\n");
    if let Some(body) = body {
        request.push_str(&format!("content-length: {}\r\n", body.len()));
    }
    request.push_str("\r\n");
    request.push_str(body.unwrap_or(""));
    conn.write_all(request.as_bytes()).expect("write");
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read");
    let (head, body) = raw.split_once("\r\n\r\n").expect("framed reply");
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, body.to_owned())
}

fn main() {
    let cache = std::env::temp_dir().join("hetmem-serve-client-example");
    let _ = std::fs::remove_dir_all(&cache);
    let server = Server::start(&ServeOptions {
        addr: "127.0.0.1:0".to_owned(), // ephemeral port
        workers: 4,
        queue_depth: 32,
        cache_dir: Some(cache.clone()),
        ..ServeOptions::default()
    })
    .expect("server starts");
    let addr = server.local_addr();
    println!("serving on http://{addr}\n");

    // A synchronous simulation: the body is byte-identical to
    // `hetmem sim <trace> fusion --format json` at the same scale.
    let sim = "{\"kernel\":\"reduction\",\"system\":\"fusion\",\"scale\":64}";
    let (status, cold) = send(addr, "POST", "/v1/sim", Some(sim));
    let ticks = parse(cold.trim_end())
        .ok()
        .and_then(|v| v.get("total_ticks").and_then(Json::as_u64))
        .expect("total_ticks");
    println!("POST /v1/sim            -> {status}, total_ticks = {ticks}");

    // The identical request again: answered from the content-addressed
    // cache, byte-for-byte.
    let (_, warm) = send(addr, "POST", "/v1/sim", Some(sim));
    println!(
        "POST /v1/sim (repeat)   -> cache hit, bytes identical: {}",
        cold == warm
    );

    // An asynchronous sweep: 202 + a poll URL, then poll to completion.
    let sweep = "{\"kernels\":[\"dct\",\"kmeans\"],\"systems\":[\"fusion\",\"gmac\"],\
                 \"spaces\":[],\"scales\":[64]}";
    let (status, accepted) = send(addr, "POST", "/v1/sweep", Some(sweep));
    let poll = parse(accepted.trim_end())
        .ok()
        .and_then(|v| v.get("poll").and_then(Json::as_str).map(str::to_owned))
        .expect("poll url");
    println!("POST /v1/sweep          -> {status}, poll {poll}");
    let records = loop {
        let (_, body) = send(addr, "GET", &poll, None);
        let v = parse(body.trim_end()).expect("job status");
        match v.get("status").and_then(Json::as_str) {
            Some("done") => {
                let Some(Json::Arr(records)) =
                    v.get("result").and_then(|r| r.get("records")).cloned()
                else {
                    panic!("records in {body}");
                };
                break records;
            }
            Some("failed") | Some("timeout") => panic!("sweep did not complete: {body}"),
            _ => std::thread::sleep(std::time::Duration::from_millis(10)),
        }
    };
    println!("GET  {poll}        -> done, {} records", records.len());

    // Live service metrics.
    let (_, metrics) = send(addr, "GET", "/metrics", None);
    let v = parse(metrics.trim_end()).expect("metrics");
    for key in [
        "requests_total",
        "jobs_completed",
        "cache_hits",
        "cache_misses",
    ] {
        println!(
            "metrics.{key:<14} = {}",
            v.get(key).and_then(Json::as_u64).expect("counter")
        );
    }

    // Graceful drain: stop admission, finish accepted work, exit.
    let (status, _) = send(addr, "POST", "/v1/shutdown", None);
    println!("\nPOST /v1/shutdown       -> {status} (draining)");
    server.wait();
    let _ = std::fs::remove_dir_all(&cache);
    println!("server drained cleanly");
}
