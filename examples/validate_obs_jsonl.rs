//! Validate observability JSONL files produced by `hetmem sim --events` /
//! `--timeline`: every line must parse as a JSON object with a string
//! `"kind"` discriminator, and the file must end with exactly one summary
//! line. CI runs this against a smoke-test simulation.
//!
//! Run with `cargo run --release --example validate_obs_jsonl -- <file>...`.

use hetmem::xplore::json::parse;

fn validate(path: &str) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read file: {e}"))?;
    let mut kinds: Vec<String> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let value = parse(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        let kind = value
            .get("kind")
            .and_then(|k| k.as_str())
            .ok_or_else(|| format!("{path}:{}: missing string \"kind\" key", lineno + 1))?;
        kinds.push(kind.to_owned());
    }
    if kinds.is_empty() {
        return Err(format!("{path}: empty file"));
    }
    let summaries = kinds.iter().filter(|k| *k == "summary").count();
    if summaries != 1 || kinds.last().map(String::as_str) != Some("summary") {
        return Err(format!(
            "{path}: expected exactly one trailing summary line, found {summaries}"
        ));
    }
    println!("{path}: {} lines OK ({} kinds)", kinds.len(), {
        let mut uniq = kinds.clone();
        uniq.sort();
        uniq.dedup();
        uniq.len()
    });
    Ok(())
}

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: validate_obs_jsonl <file.jsonl>...");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        if let Err(msg) = validate(path) {
            eprintln!("error: {msg}");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
