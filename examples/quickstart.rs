//! Quickstart: simulate one kernel on two systems and compare.
//!
//! Run with `cargo run --release --example quickstart`.

use hetmem::core::experiment::{run_case_study, ExperimentConfig};
use hetmem::core::EvaluatedSystem;
use hetmem::trace::kernels::Kernel;
use hetmem::trace::Phase;

fn main() {
    // Use the paper's full-size reduction trace (Table III: 70006 CPU +
    // 70001 GPU parallel instructions, 99996 serial, 320512 B initial
    // transfer).
    let cfg = ExperimentConfig::paper();
    let kernel = Kernel::Reduction;

    println!("kernel: {kernel} ({})\n", kernel.compute_pattern());

    for system in [EvaluatedSystem::CpuGpuCuda, EvaluatedSystem::Fusion] {
        let run = run_case_study(system, kernel, &cfg);
        let r = &run.report;
        println!("{:>12}: {r}", system.name());
        println!(
            "{:>12}  communication alone: {:.1} µs ({:.1}% of total)",
            "",
            r.communication_ns() / 1000.0,
            100.0 * r.phase_fraction(Phase::Communication)
        );
        println!(
            "{:>12}  CPU: {} instructions, {} mispredicts; GPU: {} instructions",
            "", r.cpu.instructions, r.cpu.mispredictions, r.gpu.instructions
        );
        println!(
            "{:>12}  memory: L1D miss rate {:.1}%, DRAM row-hit rate {:.1}%\n",
            "",
            100.0 * r.hierarchy.cpu_l1d.miss_rate(),
            100.0 * r.hierarchy.dram.row_hit_rate()
        );
    }

    println!("Moving the same kernel from PCI-E to an on-chip memory controller removes");
    println!("most of the communication cost — the paper's Figure 5/6 observation.");
}
