//! The hybrid second-level-cache locality scheme (§II-B5): explicitly
//! `push`ed shared data carries a locality bit that protects it from
//! implicit eviction. This example pins a critical region in the LLC,
//! streams a large implicit working set over it, and shows that the pinned
//! region survives — then repeats with the locality bit ignored (plain
//! LRU) to show it getting flushed.
//!
//! Run with `cargo run --release --example hybrid_locality`.

use hetmem::sim::{MemoryHierarchy, Placement, ServiceLevel, SystemConfig};
use hetmem::trace::PuKind;

/// Streams `lines` cache lines of implicit traffic through the LLC.
fn stream_implicit(hier: &mut MemoryHierarchy, lines: u64) {
    for i in 0..lines {
        let addr = 0x4000_0000 + i * 64;
        let _ = hier.access(PuKind::Cpu, addr, false, i * 100);
    }
}

/// Probes how many of the pinned region's lines still hit at the LLC or
/// better.
fn surviving_lines(hier: &mut MemoryHierarchy, base: u64, lines: u64) -> u64 {
    // Flush private caches so the probe hits the LLC, not the L1/L2.
    let mut survivors = 0;
    for i in 0..lines {
        let addr = base + i * 64;
        let res = hier.access(PuKind::Gpu, addr, false, 1_000_000_000 + i * 100);
        if matches!(res.level, ServiceLevel::L1 | ServiceLevel::Llc) {
            survivors += 1;
        }
    }
    survivors
}

fn main() {
    let cfg = SystemConfig::baseline();
    let pinned_base = 0x3000_0000u64;
    let pinned_bytes = 256 * 1024; // 256 KiB of "critical" shared data
    let pinned_lines = pinned_bytes / 64;
    // Stream 16 MiB — twice the LLC — to create maximal eviction pressure.
    let stream_lines = 16 * 1024 * 1024 / 64;

    println!("Pinning {pinned_bytes} B in the shared LLC, then streaming 16 MiB over it.\n");

    for honored in [true, false] {
        let mut hier = MemoryHierarchy::with_llc_locality(&cfg, honored);
        let pushed = hier.push_llc_region(pinned_base, pinned_bytes);
        assert_eq!(pushed, pinned_lines);
        stream_implicit(&mut hier, stream_lines);
        let survivors = surviving_lines(&mut hier, pinned_base, pinned_lines);
        println!(
            "  locality bit {:<8} {survivors:>5} / {pinned_lines} pinned lines survive",
            if honored { "honored:" } else { "ignored:" },
        );
        let placement = if honored {
            Placement::Explicit
        } else {
            Placement::Implicit
        };
        let _ = placement; // (the bit travels with the push; shown for clarity)
    }

    println!("\nWith the locality bit, implicit streaming traffic cannot displace the");
    println!("explicitly managed blocks — the hardware side of the paper's hybrid");
    println!("locality management for the shared cache.");
}
