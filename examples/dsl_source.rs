//! Write a heterogeneous program in the DSL's *textual* syntax, parse it,
//! measure its programmability under every memory model, and print the
//! partially-shared lowering.
//!
//! Run with `cargo run --release --example dsl_source`.

use hetmem::dsl::{lower, parse_program, render, write_program, AddressSpace};

const SOURCE: &str = r#"
// A stencil smoother: the GPU relaxes its half of the grid twice per sweep,
// the CPU handles the other half, and the host stitches the boundary.
program "stencil smoother" {
    compute 96;
    buffer gridG: 262144;
    buffer gridC: 262144;
    buffer halo: 4096;

    init gridG, gridC, halo;
    loop 4 {
        gpu relaxGPU(read gridG, halo; write gridG);
        cpu relaxCPU(read gridC; write gridC);
        seq stitchBoundary(read gridG, gridC; write halo);
    }
    seq finish(read gridG, gridC);
}
"#;

fn main() {
    let program = parse_program(SOURCE).expect("the example source is well-formed");
    println!(
        "parsed {:?}: {} buffers, {} steps, {} GPU kernel site(s)\n",
        program.name,
        program.buffers.len(),
        program.steps.len(),
        program.gpu_kernel_sites()
    );

    println!("Programmability across memory models (communication-handling lines):");
    for model in AddressSpace::ALL {
        println!(
            "  {:<4} {:>2}",
            model.abbrev(),
            lower(&program, model).comm_overhead_lines()
        );
    }

    println!("\nThe partially shared lowering:\n");
    println!(
        "{}",
        render(&lower(&program, AddressSpace::PartiallyShared))
    );

    // The textual form round-trips.
    let rewritten = write_program(&program);
    assert_eq!(parse_program(&rewritten).expect("round trip"), program);
    println!("(write_program -> parse_program round-trips exactly.)");
}
