//! Sweep the whole memory-model design space: enumerate every valid design
//! point, count options per address space, and run a quick performance
//! sweep across the five evaluated systems.
//!
//! Run with `cargo run --release --example design_space_sweep`.

use hetmem::core::experiment::{run_case_studies, ExperimentConfig};
use hetmem::core::report::render_figure5;
use hetmem::core::{AddressSpace, DesignPoint, LocalityScheme};

fn main() {
    // 1. The qualitative design space.
    println!("Valid design points (address space x fabric x locality x coherence):\n");
    for (space, count) in DesignPoint::options_per_space() {
        let locality = LocalityScheme::options_for(space).len();
        println!(
            "  {:<17} {count:>3} design points   ({locality:>2} locality schemes)",
            space.to_string()
        );
    }
    let total = DesignPoint::enumerate().len();
    println!("  {:<17} {total:>3} total\n", "");

    println!("The partially shared space offers the most options — the paper's");
    println!("conclusion 3. A few example points:\n");
    for p in DesignPoint::enumerate()
        .into_iter()
        .filter(|p| p.address_space == AddressSpace::PartiallyShared)
        .take(4)
    {
        println!("  - {p}");
    }

    // 2. A quick quantitative sweep (scale 32 to keep this example fast).
    println!("\nCase-study sweep at scale 32 (use the fig5 harness for full size):\n");
    let runs = run_case_studies(&ExperimentConfig::scaled(32));
    println!("{}", render_figure5(&runs));
}
