//! Bring your own kernel: define a new heterogeneous program in the DSL
//! (a histogram with a host-side merge), lower it for every memory model,
//! generate traces, and simulate them on the evaluated systems.
//!
//! Run with `cargo run --release --example custom_kernel`.

use hetmem::core::EvaluatedSystem;
use hetmem::dsl::{generate_trace, lower, AddressSpace, BufId, Buffer, Program, Step, Target};
use hetmem::sim::{CommCosts, Simulation};

fn histogram() -> Program {
    Program {
        name: "histogram".into(),
        buffers: vec![
            Buffer::new("samplesG", 131_072), // GPU's half of the samples
            Buffer::new("samplesC", 131_072), // CPU's half
            Buffer::new("binsG", 4_096),      // GPU's partial histogram
            Buffer::new("binsC", 4_096),      // CPU's partial histogram
        ],
        steps: vec![
            Step::HostInit {
                bufs: vec![BufId(0), BufId(1)],
            },
            Step::Kernel {
                target: Target::Gpu,
                name: "histGPU".into(),
                reads: vec![BufId(0)],
                writes: vec![BufId(2)],
                args_upload: false,
            },
            Step::Kernel {
                target: Target::Cpu,
                name: "histCPU".into(),
                reads: vec![BufId(1)],
                writes: vec![BufId(3)],
                args_upload: false,
            },
            Step::Seq {
                name: "mergeBins".into(),
                reads: vec![BufId(2), BufId(3)],
                writes: vec![BufId(3)],
            },
        ],
        compute_lines: 58,
    }
}

fn main() {
    let program = histogram();
    program.validate().expect("well-formed program");

    println!("Programmability of the custom kernel across memory models:");
    for model in AddressSpace::ALL {
        let lowered = lower(&program, model);
        println!(
            "  {:<4} {:>2} communication-handling lines",
            model.abbrev(),
            lowered.comm_overhead_lines()
        );
    }

    // Generate the disjoint-space trace and run it on the two disjoint
    // systems from the paper (PCI-E vs memory controller).
    let lowered = lower(&program, AddressSpace::Disjoint);
    let trace = generate_trace(&lowered);
    println!(
        "\nGenerated trace: {} segments, {} communication events, {} bytes moved",
        trace.segments().len(),
        trace.comm_count(),
        trace.comm_bytes()
    );

    for system in [EvaluatedSystem::CpuGpuCuda, EvaluatedSystem::Fusion] {
        let report = Simulation::builder()
            .comm_model(system.comm_model(CommCosts::paper()))
            .build()
            .expect("baseline config is valid")
            .run(&trace)
            .expect("generated traces are well-formed");
        println!("  {:>8}: {report}", system.name());
    }
}
