//! Run the full paper evaluation grid through the parallel, cached sweep
//! engine — twice — and show that the warm run answers every cell from the
//! on-disk cache with byte-identical output.
//!
//! Run with `cargo run --release --example parallel_sweep`.

use hetmem::core::experiment::ExperimentConfig;
use hetmem::xplore::{run_sweep, OutputFormat, SweepOptions, SweepSpec};

fn main() {
    // Keep the example quick: divide every kernel's input by 64.
    let scale = 64;
    let spec = SweepSpec::full(scale);
    let config = ExperimentConfig::scaled(scale);
    let cache = std::env::temp_dir().join("hetmem-parallel-sweep-example");
    let _ = std::fs::remove_dir_all(&cache);
    let opts = SweepOptions {
        workers: 4,
        cache_dir: Some(cache.clone()),
        ..SweepOptions::default()
    };

    println!(
        "Sweeping {} jobs (6 kernels x 5 systems + 6 x 4 spaces)...\n",
        spec.expand().len()
    );

    let cold = run_sweep(&spec, &config, &opts).expect("cold sweep");
    println!("cold: {}", cold.stats);

    let warm = run_sweep(&spec, &config, &opts).expect("warm sweep");
    println!("warm: {}\n", warm.stats);

    let cold_json = OutputFormat::Json.render(&cold.records);
    let warm_json = OutputFormat::Json.render(&warm.records);
    assert_eq!(cold_json, warm_json, "warm output is byte-identical");
    println!(
        "warm JSON is byte-identical to the cold run ({} bytes).\n",
        cold_json.len()
    );

    // Slice the records: communication share per system, averaged over kernels.
    println!("Mean communication share by target:");
    let mut targets: Vec<&str> = Vec::new();
    for r in &cold.records {
        if !targets.contains(&r.target.as_str()) {
            targets.push(&r.target);
        }
    }
    for target in targets {
        let shares: Vec<f64> = cold
            .records
            .iter()
            .filter(|r| r.target == target)
            .map(|r| {
                100.0 * r.report.communication_ticks as f64 / r.report.total_ticks().max(1) as f64
            })
            .collect();
        let mean = shares.iter().sum::<f64>() / shares.len() as f64;
        println!("  {target:<14} {mean:>5.1} %");
    }

    let _ = std::fs::remove_dir_all(&cache);
}
