//! Efficiency metrics and the Pareto frontier over the five evaluated
//! systems — the paper's stated future work (§VII), implemented.
//!
//! Run with `cargo run --release --example pareto_frontier`.

use hetmem::core::experiment::ExperimentConfig;
use hetmem::core::report::TextTable;
use hetmem::core::{evaluate_systems, pareto_frontier};

fn main() {
    // Scale 16 keeps the example quick; the shape is scale-stable.
    let evals = evaluate_systems(&ExperimentConfig::scaled(16));
    let frontier = pareto_frontier(&evals);

    let mut table = TextTable::new(&[
        "system",
        "perf (geomean µs)",
        "hw cost (score)",
        "programmer burden (LoC)",
        "Pareto-optimal",
    ]);
    for (i, e) in evals.iter().enumerate() {
        table.row(vec![
            e.system.name().to_owned(),
            format!("{:.1}", e.perf_ticks / 42_000.0), // ticks -> µs at 42 GHz
            e.hardware_cost.to_string(),
            format!("{:.1}", e.programmer_burden),
            if frontier.contains(&i) { "yes" } else { "" }.to_owned(),
        ]);
    }
    println!("{}", table.render());

    println!("Axes: lower is better everywhere. A system is Pareto-optimal when no");
    println!("other system is at least as good on performance, hardware cost, AND");
    println!("programmability at once. The partially shared and ADSM systems trade a");
    println!("little performance and modest hardware for most of the unified space's");
    println!("programmability — the quantitative form of the paper's conclusion.");
}
