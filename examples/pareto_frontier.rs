//! Efficiency metrics and the Pareto frontier over the five evaluated
//! systems — the paper's stated future work (§VII), implemented.
//!
//! The frontier extraction and table rendering live in `hetmem-search`
//! ([`hetmem_search::system_frontier_table`]), the same engine the
//! guided `hetmem search` subcommand uses; this example is a thin caller.
//!
//! Run with `cargo run --release --example pareto_frontier`.

use hetmem::core::evaluate_systems;
use hetmem::core::experiment::ExperimentConfig;
use hetmem_search::system_frontier_table;

fn main() {
    // Scale 16 keeps the example quick; the shape is scale-stable.
    let evals = evaluate_systems(&ExperimentConfig::scaled(16));
    println!("{}", system_frontier_table(&evals));

    println!("Axes: lower is better everywhere. A system is Pareto-optimal when no");
    println!("other system is at least as good on performance, hardware cost, AND");
    println!("programmability at once. The partially shared and ADSM systems trade a");
    println!("little performance and modest hardware for most of the unified space's");
    println!("programmability — the quantitative form of the paper's conclusion.");
}
