//! Memory-consistency litmus tests: see the weak model's relaxations with
//! your own eyes, and watch the ownership protocol of the partially shared
//! space restore sequential consistency (the paper's §II-A3 claim, run
//! rather than argued).
//!
//! Run with `cargo run --release --example litmus`.

use hetmem::core::consistency::{enumerate_outcomes, ConsistencyModel, Op};

fn show(name: &str, threads: &[Vec<Op>; 2]) {
    println!("== {name} ==");
    for model in [
        ConsistencyModel::SequentialConsistency,
        ConsistencyModel::Weak,
    ] {
        let outcomes = enumerate_outcomes(threads, model);
        let rendered: Vec<String> = outcomes
            .iter()
            .map(|o| format!("T0 sees {:?}, T1 sees {:?}", o.0[0], o.0[1]))
            .collect();
        println!("  {model:?}: {} outcome(s)", rendered.len());
        for r in rendered {
            println!("    {r}");
        }
    }
    println!();
}

fn main() {
    const X: u8 = 0;
    const Y: u8 = 1;
    let w = |loc, value| Op::Write { loc, value };
    let r = |loc| Op::Read { loc };

    // Store buffering: both threads write then read the other's flag.
    show(
        "store buffering (SB): T0: x=1; r(y)   T1: y=1; r(x)",
        &[vec![w(X, 1), r(Y)], vec![w(Y, 1), r(X)]],
    );
    println!("Under the weak model both threads can read 0 — the relaxation every");
    println!("system in Table I lives with.\n");

    // Message passing: data + flag.
    show(
        "message passing (MP): T0: x=42; y=1   T1: r(y); r(x)",
        &[vec![w(X, 42), w(Y, 1)], vec![r(Y), r(X)]],
    );
    println!("Weak order lets T1 see the flag (1) but stale data (0).\n");

    // The same producer/consumer written with ownership (Figure 2b style).
    show(
        "MP with ownership: T0: x=42; release(x)   T1: acquire(x); r(x)",
        &[
            vec![w(X, 42), Op::Release { loc: X }],
            vec![Op::Acquire { loc: X }, r(X)],
        ],
    );
    println!("With release/acquire the weak model's outcomes collapse to exactly the");
    println!("sequentially-consistent ones — the partially shared space needs no");
    println!("cross-PU coherence hardware for correctly annotated programs.");
}
