//! Watch a simulation as it runs: attach a [`Recorder`] (typed event trace
//! plus interval timeline) through the `Simulation` builder, simulate the
//! reduction kernel over PCI-E, and print the event digest, the busiest
//! timeline window, and a few JSONL lines of each stream — the same format
//! `hetmem sim --events/--timeline` writes to disk.
//!
//! Run with `cargo run --release --example observability`.

use hetmem::sim::{EventTrace, FabricKind, IntervalProfiler, Recorder, Simulation};
use hetmem::trace::kernels::{Kernel, KernelParams};
use hetmem::xplore::{events_to_jsonl, timeline_to_jsonl};

fn main() {
    let trace = Kernel::Reduction.generate(&KernelParams::scaled(64));

    let mut sim = Simulation::builder()
        .fabric(FabricKind::PciExpress)
        .observer(Recorder::new(
            Some(EventTrace::new()),
            Some(IntervalProfiler::new(1_000_000)),
        ))
        .build()
        .expect("baseline config is valid");
    let report = sim.run(&trace).expect("generated traces are well-formed");
    println!("{report}\n");

    let recorder = sim.into_observer();
    let events = recorder.events.expect("recorder was built with events");
    let timeline = recorder
        .timeline
        .expect("recorder was built with a timeline");

    let counts = events.counts();
    println!(
        "Recorded {} events ({} dropped from the ring):",
        events.len(),
        events.dropped()
    );
    println!(
        "  {} phases, {} comm actions, {} miss bursts, {} DRAM requests \
         ({} row misses), {} coherence interventions",
        counts.phase_starts,
        counts.comm_events,
        counts.miss_bursts,
        counts.dram_requests,
        counts.dram_row_misses,
        counts.interventions
    );

    let summary = timeline.summary();
    println!(
        "\nTimeline: {} windows of {} ticks; busiest window starts at tick {} \
         (peak {} DRAM requests, {} LLC misses)",
        summary.samples,
        summary.interval,
        summary.busiest_window_start,
        summary.peak_dram_requests,
        summary.peak_llc_misses
    );

    println!("\nFirst JSONL event lines (as written by `hetmem sim --events`):");
    for line in events_to_jsonl(&events).lines().take(4) {
        println!("  {line}");
    }
    println!("\nFirst JSONL timeline lines (as written by `--timeline`):");
    for line in timeline_to_jsonl(&timeline).lines().take(2) {
        println!("  {line}");
    }
}
