//! Guided design-space search: spend a quarter of the exhaustive sweep's
//! simulator budget and still find true Pareto-frontier points.
//!
//! Run with `cargo run --release --example guided_search`.

use hetmem_search::{run_search, Objective, SearchConfig, SearchOptions, SearchSpace, Strategy};

fn main() {
    // The full paper grid at a small trace scale: 9 targets (5 evaluated
    // systems + 4 address-space families), 6 kernels each.
    let space = SearchSpace::full(512);
    let exhaustive = space.exhaustive_jobs();
    let config = SearchConfig {
        budget: exhaustive / 4,
        space,
        objectives: Objective::ALL.to_vec(),
        strategy: Strategy::Halving,
        seed: 7,
        mode: hetmem::sim::ExecMode::Accurate,
    };

    let result = run_search(&config, SearchOptions::with_workers(0)).expect("search");

    println!("{}", result.render_table());
    println!(
        "Budget: {} of {} exhaustive jobs ({} submitted, {} rounds).",
        config.budget, exhaustive, result.stats.jobs_submitted, result.stats.rounds
    );
    println!("Frontier found under a quarter of the exhaustive budget:");
    for &i in &result.frontier {
        let eval = &result.evals[i];
        println!("  {}  {:?}", eval.label, eval.values);
    }
    println!();
    println!("Same seed + same spec renders byte-identical JSON on every run —");
    println!("pipe `hetmem search --budget 13 --seed 7 --format json` twice through");
    println!("`cmp` to check. A --cache-dir warm rerun issues zero new simulator");
    println!("executions; the trajectory is pinned by counting submitted jobs.");
}
