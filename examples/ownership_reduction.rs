//! The paper's Figure 2/3 walk-through: one reduction program, four memory
//! models. Prints the lowered source for each model (with the
//! communication-handling lines marked), the Table V line counts, and runs
//! the partially-shared version through the ownership-protocol checker.
//!
//! Run with `cargo run --release --example ownership_reduction`.

use hetmem::core::OwnershipTracker;
use hetmem::dsl::{lower, programs, render, AddressSpace};
use hetmem::trace::PuKind;

fn main() {
    let program = programs::reduction();

    for model in AddressSpace::ALL {
        let lowered = lower(&program, model);
        println!("{}", render(&lowered));
    }

    println!("Table V line counts for this kernel:");
    for model in AddressSpace::ALL {
        println!(
            "  {:<4} {:>2} communication-handling lines",
            model.abbrev(),
            lower(&program, model).comm_overhead_lines()
        );
    }

    // Now execute the ownership protocol the partially shared lowering
    // implies: release a, b, c to the GPU; GPU computes; CPU re-acquires c.
    println!("\nOwnership protocol replay (partially shared space):");
    let mut tracker = OwnershipTracker::new();
    let (a, b, c) = (0x3000_0000u64, 0x3002_7200, 0x3004_E400);
    for (addr, bytes) in [(a, 160_256), (b, 160_256), (c, 64)] {
        tracker.register(addr, bytes);
    }
    for addr in [a, b, c] {
        tracker
            .release(PuKind::Cpu, addr)
            .expect("CPU owns freshly allocated objects");
        tracker
            .acquire(PuKind::Gpu, addr)
            .expect("released objects are acquirable");
    }
    println!("  GPU owns a, b, c — kernel may run.");
    assert!(tracker.check_access(PuKind::Gpu, a + 128).is_ok());

    // The CPU may NOT touch c while the GPU owns it — this is exactly the
    // race the ownership design prevents without coherence hardware.
    let denied = tracker.check_access(PuKind::Cpu, c);
    println!("  CPU access to c while GPU owns it: {denied:?}");
    assert!(denied.is_err());

    tracker.release(PuKind::Gpu, c).expect("GPU owns c");
    tracker.acquire(PuKind::Cpu, c).expect("c released");
    println!("  ownership of c transferred back — CPU may read the result.");
    let (acquires, releases) = tracker.transitions();
    println!("  protocol cost: {acquires} acquires + {releases} releases (api-acq each)");
}
