//! # hetmem
//!
//! Design-space exploration of memory models for heterogeneous (CPU+GPU)
//! computing — a from-scratch Rust reproduction of Lim & Kim, *Design Space
//! Exploration of Memory Model for Heterogeneous Computing* (MSPC/PLDI
//! 2012).
//!
//! This facade crate re-exports the whole stack:
//!
//! * [`trace`] (`hetmem-trace`) — the instruction set, phase-structured
//!   traces, and the six synthetic kernel generators matching Table III.
//! * [`sim`] (`hetmem-sim`) — the cycle-level CPU+GPU simulator: cores,
//!   caches with locality-aware replacement, MSI coherence, ring NoC,
//!   DDR3 FR-FCFS DRAM, TLBs, and communication fabrics (Table II/IV).
//! * [`core`] (`hetmem-core`) — the design-space layer: address-space
//!   semantics, ownership, locality schemes, the Table I catalog, the five
//!   evaluated systems, and the experiment runners for Figures 5–7.
//! * [`dsl`] (`hetmem-dsl`) — the heterogeneous-programming DSL whose
//!   per-model lowering reproduces the Table V programmability metric.
//! * [`xplore`] (`hetmem-xplore`) — the parallel, cached design-space sweep
//!   engine behind `hetmem sweep` and the figure runners.
//! * [`serve`] (`hetmem-serve`) — the batched simulation service behind
//!   `hetmem serve`: a std-only HTTP/1.1 JSON API over sharded workers
//!   with admission control, request coalescing, and live metrics.
//! * [`cluster`] (`hetmem-cluster`) — the multi-node fleet layer behind
//!   `hetmem serve --join`: consistent-hash sharding of the result-cache
//!   key space, request forwarding with remote coalescing, successor
//!   replication of hot entries, and heartbeat membership.
//!
//! ## Quickstart
//!
//! ```
//! use hetmem::core::experiment::{run_case_study, ExperimentConfig};
//! use hetmem::core::EvaluatedSystem;
//! use hetmem::trace::kernels::Kernel;
//!
//! // Simulate the reduction kernel on a Fusion-like system (small input).
//! let cfg = ExperimentConfig::scaled(128);
//! let run = run_case_study(EvaluatedSystem::Fusion, Kernel::Reduction, &cfg);
//! println!("{}", run.report);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;

pub use hetmem_cluster as cluster;
pub use hetmem_core as core;
pub use hetmem_dsl as dsl;
pub use hetmem_serve as serve;
pub use hetmem_sim as sim;
pub use hetmem_trace as trace;
pub use hetmem_xplore as xplore;
