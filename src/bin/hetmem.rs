//! The `hetmem` command-line tool: regenerate the paper's tables and
//! figures, inspect DSL programs, and simulate trace files.
//!
//! Run `hetmem help` for usage.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match hetmem::cli::parse_args(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("hetmem: {msg}");
            eprintln!("{}", hetmem::cli::USAGE);
            std::process::exit(2);
        }
    };
    if let Err(err) = hetmem::cli::execute(&command) {
        let code = err.exit_code();
        if code == 2 {
            eprintln!("hetmem: {err}");
            eprintln!("{}", hetmem::cli::USAGE);
        } else {
            eprintln!("error: {err}");
        }
        std::process::exit(code);
    }
}
