//! The `hetmem` command-line tool: regenerate the paper's tables and
//! figures, inspect DSL programs, and simulate trace files.
//!
//! Run `hetmem help` for usage.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match hetmem::cli::parse_args(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("hetmem: {msg}");
            eprintln!("{}", hetmem::cli::USAGE);
            std::process::exit(2);
        }
    };
    if let Err(msg) = hetmem::cli::execute(&command) {
        eprintln!("error: {msg}");
        std::process::exit(1);
    }
}
