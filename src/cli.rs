//! Command-line interface: argument parsing and command execution for the
//! `hetmem` binary.
//!
//! ```text
//! hetmem tables                         # regenerate Tables I–V
//! hetmem fig 5 [--scale N]              # regenerate Figure 5 (also 6, 7)
//! hetmem loc <program.hdsl>             # programmability of a DSL source file
//! hetmem lower <program.hdsl> <model>   # print one lowering (uni|pas|dis|adsm)
//! hetmem trace <kernel> [--scale N]     # dump a kernel trace (.hmt) to stdout
//! hetmem sim <trace.hmt> <system>       # simulate a trace file on a system
//! hetmem catalog                        # the Table I survey
//! ```

use hetmem_core::experiment::{run_address_spaces, run_case_studies, ExperimentConfig};
use hetmem_core::report::{render_figure5, render_figure6, render_figure7, TextTable};
use hetmem_core::EvaluatedSystem;
use hetmem_dsl::AddressSpace;
use hetmem_trace::kernels::{Kernel, KernelParams};

/// A parsed command.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// Regenerate Tables I–V.
    Tables,
    /// Regenerate Figure `number` at `scale`.
    Fig {
        /// 5, 6, or 7.
        number: u8,
        /// Trace scale divisor.
        scale: u32,
    },
    /// Report the Table V row for a DSL source file.
    Loc {
        /// Path to the `.hdsl` source.
        path: String,
    },
    /// Print one lowering of a DSL source file.
    Lower {
        /// Path to the `.hdsl` source.
        path: String,
        /// Which memory model.
        model: AddressSpace,
    },
    /// Dump a generated kernel trace in `.hmt` form.
    Trace {
        /// Which kernel.
        kernel: Kernel,
        /// Trace scale divisor.
        scale: u32,
    },
    /// Simulate an `.hmt` trace file on an evaluated system.
    Sim {
        /// Path to the trace file.
        path: String,
        /// Which system.
        system: EvaluatedSystem,
    },
    /// Run the DSL static analyzer over a source file.
    Lint {
        /// Path to the `.hdsl` source.
        path: String,
    },
    /// Print the Table I survey.
    Catalog,
    /// Print usage.
    Help,
}

/// Usage text.
pub const USAGE: &str = "usage: hetmem <command>
commands:
  tables                        regenerate Tables I-V
  fig <5|6|7> [--scale N]       regenerate a figure (default full scale)
  loc <program.hdsl>            programmability (Table V row) of a DSL file
  lint <program.hdsl>           static analysis of a DSL file
  lower <program.hdsl> <model>  print a lowering (uni|pas|dis|adsm)
  trace <kernel> [--scale N]    dump a kernel trace (.hmt) to stdout
  sim <trace.hmt> <system>      simulate a trace (cpu+gpu|lrb|gmac|fusion|ideal)
  catalog                       the Table I survey
  help                          this message";

fn parse_scale(args: &[String]) -> Result<u32, String> {
    match args.iter().position(|a| a == "--scale") {
        None => Ok(1),
        Some(i) => args
            .get(i + 1)
            .and_then(|v| v.parse::<u32>().ok())
            .filter(|&v| v > 0)
            .ok_or_else(|| "--scale needs a positive integer".to_owned()),
    }
}

fn parse_system(s: &str) -> Result<EvaluatedSystem, String> {
    match s.to_ascii_lowercase().as_str() {
        "cpu+gpu" | "cuda" | "cpugpu" => Ok(EvaluatedSystem::CpuGpuCuda),
        "lrb" => Ok(EvaluatedSystem::Lrb),
        "gmac" => Ok(EvaluatedSystem::Gmac),
        "fusion" => Ok(EvaluatedSystem::Fusion),
        "ideal" | "ideal-hetero" => Ok(EvaluatedSystem::IdealHetero),
        other => Err(format!("unknown system {other:?} (cpu+gpu|lrb|gmac|fusion|ideal)")),
    }
}

fn parse_model(s: &str) -> Result<AddressSpace, String> {
    match s.to_ascii_lowercase().as_str() {
        "uni" | "unified" => Ok(AddressSpace::Unified),
        "pas" | "partial" | "partially-shared" => Ok(AddressSpace::PartiallyShared),
        "dis" | "disjoint" => Ok(AddressSpace::Disjoint),
        "adsm" => Ok(AddressSpace::Adsm),
        other => Err(format!("unknown model {other:?} (uni|pas|dis|adsm)")),
    }
}

/// Parses command-line arguments (without the program name).
///
/// # Errors
///
/// Returns a usage-style message on malformed input.
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "tables" => Ok(Command::Tables),
        "fig" => {
            let number = args
                .get(1)
                .and_then(|v| v.parse::<u8>().ok())
                .filter(|n| matches!(n, 5..=7))
                .ok_or_else(|| "fig needs a figure number: 5, 6, or 7".to_owned())?;
            Ok(Command::Fig { number, scale: parse_scale(args)? })
        }
        "loc" => {
            let path =
                args.get(1).cloned().ok_or_else(|| "loc needs a source path".to_owned())?;
            Ok(Command::Loc { path })
        }
        "lint" => {
            let path =
                args.get(1).cloned().ok_or_else(|| "lint needs a source path".to_owned())?;
            Ok(Command::Lint { path })
        }
        "lower" => {
            let path =
                args.get(1).cloned().ok_or_else(|| "lower needs a source path".to_owned())?;
            let model = parse_model(
                args.get(2).ok_or_else(|| "lower needs a model (uni|pas|dis|adsm)".to_owned())?,
            )?;
            Ok(Command::Lower { path, model })
        }
        "trace" => {
            let kernel: Kernel = args
                .get(1)
                .ok_or_else(|| "trace needs a kernel name".to_owned())?
                .parse()
                .map_err(|e| format!("{e}"))?;
            Ok(Command::Trace { kernel, scale: parse_scale(args)? })
        }
        "sim" => {
            let path =
                args.get(1).cloned().ok_or_else(|| "sim needs a trace path".to_owned())?;
            let system = parse_system(
                args.get(2).ok_or_else(|| "sim needs a system name".to_owned())?,
            )?;
            Ok(Command::Sim { path, system })
        }
        "catalog" => Ok(Command::Catalog),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

/// Executes a parsed command, writing human-readable output to stdout.
///
/// # Errors
///
/// Returns a message on I/O failures, unparsable inputs, or malformed
/// trace/DSL files.
pub fn execute(command: &Command) -> Result<(), String> {
    match command {
        Command::Help => println!("{USAGE}"),
        Command::Tables => {
            print_catalog();
            print_loc_table();
            print_characteristics();
        }
        Command::Catalog => print_catalog(),
        Command::Fig { number, scale } => {
            let cfg = ExperimentConfig::scaled(*scale);
            match number {
                5 => println!("{}", render_figure5(&run_case_studies(&cfg))),
                6 => println!("{}", render_figure6(&run_case_studies(&cfg))),
                7 => println!("{}", render_figure7(&run_address_spaces(&cfg))),
                _ => unreachable!("validated at parse time"),
            }
        }
        Command::Loc { path } => {
            let program = load_program(path)?;
            println!("{}: {} compute lines", program.name, program.compute_lines);
            for model in AddressSpace::ALL {
                println!(
                    "  {:<4} {:>3} communication-handling lines",
                    model.abbrev(),
                    hetmem_dsl::lower(&program, model).comm_overhead_lines()
                );
            }
        }
        Command::Lint { path } => {
            let program = load_program(path)?;
            let lints = hetmem_dsl::analyze(&program);
            if lints.is_empty() {
                println!("{}: no findings", program.name);
            } else {
                for lint in &lints {
                    println!("{lint}");
                }
                let warnings = lints
                    .iter()
                    .filter(|l| l.severity() == hetmem_dsl::Severity::Warning)
                    .count();
                println!("{} finding(s), {} warning(s)", lints.len(), warnings);
            }
        }
        Command::Lower { path, model } => {
            let program = load_program(path)?;
            println!("{}", hetmem_dsl::render(&hetmem_dsl::lower(&program, *model)));
        }
        Command::Trace { kernel, scale } => {
            let trace = kernel.generate(&KernelParams::scaled(*scale));
            print!("{}", hetmem_trace::write_trace(&trace));
        }
        Command::Sim { path, system } => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {path}: {e}"))?;
            let trace = hetmem_trace::parse_trace(&text).map_err(|e| e.to_string())?;
            let mut sim = hetmem_sim::System::new(&hetmem_sim::SystemConfig::baseline());
            let mut comm = system.comm_model(hetmem_sim::CommCosts::paper());
            let report = sim.run(&trace, &mut comm);
            println!("{}: {report}", system.name());
        }
    }
    Ok(())
}

fn load_program(path: &str) -> Result<hetmem_dsl::Program, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    hetmem_dsl::parse_program(&text).map_err(|e| e.to_string())
}

fn print_catalog() {
    let mut table = TextTable::new(&["scheme", "address space", "connection", "consistency"]);
    for e in hetmem_core::catalog() {
        table.row(vec![
            e.name.to_owned(),
            e.space.to_string(),
            e.connection.to_string(),
            e.consistency.to_string(),
        ]);
    }
    println!("Table I:\n{}", table.render());
}

fn print_loc_table() {
    let mut table = TextTable::new(&["kernel", "Comp", "UNI", "PAS", "DIS", "ADSM"]);
    for row in hetmem_dsl::loc_table() {
        table.row(vec![
            row.kernel.clone(),
            row.comp.to_string(),
            row.uni.to_string(),
            row.pas.to_string(),
            row.dis.to_string(),
            row.adsm.to_string(),
        ]);
    }
    println!("Table V:\n{}", table.render());
}

fn print_characteristics() {
    let mut table = TextTable::new(&["kernel", "CPU", "GPU", "serial", "comms", "initial B"]);
    for k in Kernel::ALL {
        let c = k.paper_characteristics();
        table.row(vec![
            k.name().to_owned(),
            c.cpu_instructions.to_string(),
            c.gpu_instructions.to_string(),
            c.serial_instructions.to_string(),
            c.communications.to_string(),
            c.initial_transfer_bytes.to_string(),
        ]);
    }
    println!("Table III:\n{}", table.render());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parses_every_command_form() {
        assert_eq!(parse_args(&args(&["tables"])), Ok(Command::Tables));
        assert_eq!(parse_args(&args(&["catalog"])), Ok(Command::Catalog));
        assert_eq!(parse_args(&args(&[])), Ok(Command::Help));
        assert_eq!(parse_args(&args(&["help"])), Ok(Command::Help));
        assert_eq!(
            parse_args(&args(&["fig", "5"])),
            Ok(Command::Fig { number: 5, scale: 1 })
        );
        assert_eq!(
            parse_args(&args(&["fig", "7", "--scale", "64"])),
            Ok(Command::Fig { number: 7, scale: 64 })
        );
        assert_eq!(
            parse_args(&args(&["trace", "reduction", "--scale", "8"])),
            Ok(Command::Trace { kernel: Kernel::Reduction, scale: 8 })
        );
        assert_eq!(
            parse_args(&args(&["sim", "t.hmt", "fusion"])),
            Ok(Command::Sim { path: "t.hmt".into(), system: EvaluatedSystem::Fusion })
        );
        assert_eq!(
            parse_args(&args(&["lower", "p.hdsl", "adsm"])),
            Ok(Command::Lower { path: "p.hdsl".into(), model: AddressSpace::Adsm })
        );
        assert_eq!(parse_args(&args(&["loc", "p.hdsl"])), Ok(Command::Loc { path: "p.hdsl".into() }));
        assert_eq!(
            parse_args(&args(&["lint", "p.hdsl"])),
            Ok(Command::Lint { path: "p.hdsl".into() })
        );
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_args(&args(&["fig"])).is_err());
        assert!(parse_args(&args(&["fig", "4"])).is_err());
        assert!(parse_args(&args(&["fig", "5", "--scale", "0"])).is_err());
        assert!(parse_args(&args(&["trace", "not-a-kernel"])).is_err());
        assert!(parse_args(&args(&["sim", "t.hmt", "not-a-system"])).is_err());
        assert!(parse_args(&args(&["lower", "p.hdsl", "weird"])).is_err());
        assert!(parse_args(&args(&["frobnicate"])).is_err());
    }

    #[test]
    fn system_and_model_aliases() {
        assert_eq!(parse_system("CUDA"), Ok(EvaluatedSystem::CpuGpuCuda));
        assert_eq!(parse_system("ideal-hetero"), Ok(EvaluatedSystem::IdealHetero));
        assert_eq!(parse_model("partially-shared"), Ok(AddressSpace::PartiallyShared));
        assert_eq!(parse_model("UNIFIED"), Ok(AddressSpace::Unified));
    }
}
