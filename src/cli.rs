//! Command-line interface: argument parsing and command execution for the
//! `hetmem` binary.
//!
//! ```text
//! hetmem tables                         # regenerate Tables I–V
//! hetmem fig 5 [--scale N]              # regenerate Figure 5 (also 6, 7)
//! hetmem sweep [filters]                # parallel, cached design-space sweep
//! hetmem search [--budget N --seed S]   # guided multi-objective search
//! hetmem loc <program.hdsl>             # programmability of a DSL source file
//! hetmem check <kernel|--all>           # memory-model static verifier
//! hetmem lower <program.hdsl> <model>   # print one lowering (uni|pas|dis|adsm)
//! hetmem trace <kernel> [--scale N]     # dump a kernel trace (.hmt) to stdout
//! hetmem sim <trace.hmt> <system>       # simulate a trace file on a system
//! hetmem serve [--addr HOST:PORT]       # batched simulation service (HTTP)
//! hetmem catalog                        # the Table I survey
//! ```
//!
//! Argument contract: unknown commands and unknown flags are errors — the
//! binary prints a one-line `hetmem: ...` diagnostic plus usage on stderr
//! and exits with status 2. Runtime failures (unreadable files, malformed
//! traces) exit with status 1.

use hetmem_cluster::FleetDispatcher;
use hetmem_core::experiment::ExperimentConfig;
use hetmem_core::report::{render_figure5, render_figure6, render_figure7, TextTable};
use hetmem_core::EvaluatedSystem;
use hetmem_dsl::AddressSpace;
use hetmem_search::{Objective, SearchConfig, SearchOptions, SearchSpace, Strategy};
use hetmem_sim::{EventTrace, ExecMode, IntervalProfiler, Recorder, SimError, Simulation};
use hetmem_trace::kernels::{Kernel, KernelParams};
use hetmem_xplore::{
    parse_kernel, parse_space, parse_system, JobDispatcher, Json, OutputFormat, SweepOptions,
    SweepSpec,
};
use std::path::PathBuf;
use std::sync::Arc;

/// Timeline window size (in ticks) when `--timeline` gives no `:interval`
/// suffix: about 24 µs of simulated time, a few hundred windows for the
/// bundled kernels at small scales.
pub const DEFAULT_TIMELINE_INTERVAL: u64 = 1_000_000;

/// A parsed command.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Regenerate Tables I–V.
    Tables,
    /// Regenerate Figure `number` at `scale`.
    Fig {
        /// 5, 6, or 7.
        number: u8,
        /// Trace scale divisor.
        scale: u32,
        /// Output format (`Table` renders the paper's figure).
        format: OutputFormat,
        /// Worker threads (0 = auto).
        jobs: usize,
        /// Optional result cache directory.
        cache_dir: Option<PathBuf>,
    },
    /// Run a parallel, cached sweep over the design-space grid.
    Sweep {
        /// The axes to cover.
        spec: SweepSpec,
        /// Output format.
        format: OutputFormat,
        /// Worker threads (0 = auto).
        jobs: usize,
        /// Optional result cache directory.
        cache_dir: Option<PathBuf>,
        /// Execution mode for every job.
        mode: ExecMode,
        /// Cluster address of a serve-fleet member to scatter jobs to.
        join: Option<String>,
    },
    /// Run a guided multi-objective search over the design-space grid.
    Search {
        /// The space, objectives, strategy, budget, and seed.
        config: SearchConfig,
        /// Output format (`json` is the pinned byte-identical report).
        format: OutputFormat,
        /// Worker threads (0 = auto).
        jobs: usize,
        /// Optional result cache directory (shared with `sweep`).
        cache_dir: Option<PathBuf>,
        /// Cluster address of a serve-fleet member to scatter jobs to.
        join: Option<String>,
    },
    /// Report the Table V row for a DSL source file.
    Loc {
        /// Path to the `.hdsl` source.
        path: String,
    },
    /// Print one lowering of a DSL source file.
    Lower {
        /// Path to the `.hdsl` source.
        path: String,
        /// Which memory model.
        model: AddressSpace,
    },
    /// Dump a generated kernel trace in `.hmt` form.
    Trace {
        /// Which kernel.
        kernel: Kernel,
        /// Trace scale divisor.
        scale: u32,
    },
    /// Simulate an `.hmt` trace file on an evaluated system.
    Sim {
        /// Path to the trace file.
        path: String,
        /// Which system.
        system: EvaluatedSystem,
        /// Output format (`Table` is the one-line human report).
        format: OutputFormat,
        /// Write the event trace as JSON Lines to this path.
        events: Option<String>,
        /// Write a counter timeline as JSON Lines to `(path, interval)`.
        timeline: Option<(String, u64)>,
        /// Execution mode for the run.
        mode: ExecMode,
    },
    /// Run the DSL static analyzer over a source file.
    Lint {
        /// Path to the `.hdsl` source.
        path: String,
    },
    /// Run the memory-model static verifier over built-in kernels or
    /// `.hdsl` files.
    Check {
        /// Kernel names or `.hdsl` paths to check (empty with `all`).
        targets: Vec<String>,
        /// Check every built-in program instead of named targets.
        all: bool,
        /// Address-space models to check under (empty = all four).
        models: Vec<AddressSpace>,
        /// Output format (`Table` renders rustc-style text, `Json` emits
        /// one diagnostic per line plus a summary line).
        format: OutputFormat,
        /// Least-severe severity that fails the run (default
        /// [`hetmem_dsl::Severity::Error`]; `--deny warnings|notes`
        /// escalates, rustc `-D`-style).
        deny: hetmem_dsl::Severity,
        /// Print the explanation for one diagnostic code instead of
        /// checking anything (`--explain HM0101`, rustc-style).
        explain: Option<String>,
    },
    /// Rewrite programs to the minimal communication set the checker can
    /// certify sufficient.
    Fix {
        /// Kernel names or `.hdsl` paths to fix (empty with `all`).
        targets: Vec<String>,
        /// Fix every built-in program instead of named targets.
        all: bool,
        /// Address-space models to fix under (empty = all four).
        models: Vec<AddressSpace>,
        /// Output format.
        format: FixFormat,
        /// Exit 1 when the optimizer changes nothing (`--deny
        /// unchanged`).
        deny_unchanged: bool,
    },
    /// Run the batched simulation service until it is asked to drain.
    Serve {
        /// Bind address, `HOST:PORT` (port 0 picks an ephemeral port).
        addr: String,
        /// Worker threads / shards (0 = auto).
        workers: usize,
        /// Per-shard queue bound; submissions beyond it are answered
        /// 429.
        queue_depth: usize,
        /// Result-cache directory shared with `sweep --cache-dir`.
        cache_dir: Option<PathBuf>,
        /// Cluster listener bind address; enables clustering.
        advertise: Option<String>,
        /// Cluster address of an existing member to join.
        join: Option<String>,
        /// Cluster heartbeat period in milliseconds.
        heartbeat_ms: u64,
    },
    /// Print the Table I survey.
    Catalog,
    /// Print usage.
    Help,
}

/// Usage text.
pub const USAGE: &str = "usage: hetmem <command>
commands:
  tables                        regenerate Tables I-V
  fig <5|6|7> [--scale N] [--format json|csv|table] [--jobs N] [--cache-dir D]
                                regenerate a figure (default full scale)
  sweep [--kernel K] [--system S] [--space A] [--scale N] [--jobs N]
        [--cache-dir D] [--format json|csv|table] [--mode M] [--join H:P]
                                parallel cached sweep over the design space
                                (filters repeat or take comma lists; default
                                covers every kernel x system x space at scale 1;
                                --join scatters jobs across a serve fleet)
  search [--budget N] [--seed S] [--objectives cycles,energy,loc,hw,saved]
         [--strategy random|halving|evolve] [--kernel K] [--system S]
         [--space A] [--scale N] [--jobs N] [--cache-dir D]
         [--format json|table] [--mode M] [--join H:P]
                                guided multi-objective design-space search:
                                spends a simulator-job budget (default: a
                                quarter of the exhaustive sweep) through a
                                seeded strategy and reports the Pareto
                                frontier; same seed + same spec gives a
                                byte-identical JSON report
  loc <program.hdsl>            programmability (Table V row) of a DSL file
  lint <program.hdsl>           static analysis of a DSL file
  check <kernel|file.hdsl ...|--all> [--model M] [--format json|table]
        [--deny warnings|notes]
                                memory-model static verifier over the lowered
                                program(s); --model repeats or takes a comma
                                list (default: all four); findings at Error
                                severity (or above --deny) exit 1
  check --explain HM0xxx        print what a diagnostic code means
  fix <kernel|file.hdsl ...|--all> [--model M]
      [--format pretty|json|diff] [--deny unchanged]
                                rewrite program(s) to the minimal communication
                                set the checker certifies: deletes provably
                                redundant transfers, inserts the transfers
                                needed to clear errors; --deny unchanged exits
                                1 when nothing changed
  lower <program.hdsl> <model>  print a lowering (uni|pas|dis|adsm)
  trace <kernel> [--scale N]    dump a kernel trace (.hmt) to stdout
  sim <trace.hmt> <system> [--format json|table] [--events F.jsonl]
      [--timeline F.jsonl[:interval]] [--mode M]
                                simulate a trace (cpu+gpu|lrb|gmac|fusion|ideal);
                                --events/--timeline write observability JSONL;
                                --mode M is accurate (default), event-driven
                                (cycle-exact fast-forwarding), or
                                sampled[:WARM:DETAIL] (SMARTS-style, <2%
                                cycles error at scale >= 256)
  serve [--addr H:P] [--workers N] [--queue-depth D] [--cache-dir DIR]
        [--advertise H:P] [--join H:P] [--heartbeat-ms MS]
                                HTTP simulation service: POST /v1/sim,
                                /v1/sweep, /v1/check, /v1/fix; GET /healthz,
                                /v1/health, /metrics, /v1/jobs/<id>;
                                POST /v1/shutdown drains; --advertise or
                                --join forms a multi-node fleet that shards
                                and replicates the result cache
                                (/metrics?cluster=1 merges the fleet)
  catalog                       the Table I survey
  help                          this message";

/// Recognized `--flag value` occurrences, in argument order.
type Flags<'a> = Vec<(&'a str, &'a str)>;

/// Splits `args` into positionals and recognized `--flag value` pairs.
/// Unknown flags are errors; every listed flag takes one value and may
/// repeat.
fn split_flags<'a>(
    args: &'a [String],
    allowed: &[&str],
) -> Result<(Vec<&'a str>, Flags<'a>), String> {
    let mut positionals = Vec::new();
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        if let Some(name) = arg.strip_prefix("--") {
            if !allowed.contains(&name) {
                return Err(format!("unknown flag --{name}"));
            }
            let value = args
                .get(i + 1)
                .filter(|v| !v.is_empty())
                .ok_or_else(|| format!("--{name} needs a value"))?
                .as_str();
            flags.push((name, value));
            i += 2;
        } else if arg.starts_with('-') && arg.len() > 1 {
            return Err(format!("unknown flag {arg}"));
        } else {
            positionals.push(arg);
            i += 1;
        }
    }
    Ok((positionals, flags))
}

/// Values of every occurrence of `name`, with comma lists split.
fn flag_values<'a>(flags: &[(&'a str, &'a str)], name: &str) -> Vec<&'a str> {
    flags
        .iter()
        .filter(|(n, _)| *n == name)
        .flat_map(|(_, v)| v.split(','))
        .filter(|v| !v.is_empty())
        .collect()
}

fn parse_scale_value(v: &str) -> Result<u32, String> {
    v.parse::<u32>()
        .ok()
        .filter(|&n| n > 0)
        .ok_or_else(|| "--scale needs a positive integer".to_owned())
}

fn parse_single_scale(flags: &[(&str, &str)]) -> Result<u32, String> {
    match flag_values(flags, "scale").as_slice() {
        [] => Ok(1),
        [v] => parse_scale_value(v),
        _ => Err("--scale given more than once".to_owned()),
    }
}

fn parse_jobs(flags: &[(&str, &str)]) -> Result<usize, String> {
    match flag_values(flags, "jobs").as_slice() {
        [] => Ok(0),
        [v] => v
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| "--jobs needs a positive integer".to_owned()),
        _ => Err("--jobs given more than once".to_owned()),
    }
}

fn parse_format(flags: &[(&str, &str)]) -> Result<OutputFormat, String> {
    match flag_values(flags, "format").as_slice() {
        [] => Ok(OutputFormat::Table),
        [v] => OutputFormat::parse(v),
        _ => Err("--format given more than once".to_owned()),
    }
}

/// The `--format` path for commands without a CSV rendering (search, sim,
/// check). CSV is rejected here at parse time, so every malformed-format
/// diagnostic flows through the same usage-error path and exits 2.
fn parse_format_no_csv(flags: &[(&str, &str)], command: &str) -> Result<OutputFormat, String> {
    match parse_format(flags)? {
        OutputFormat::Csv => Err(format!("{command} supports --format json|table")),
        format => Ok(format),
    }
}

/// Output format for `hetmem fix`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FixFormat {
    /// One summary line per program × model pair, then the fixed source.
    Pretty,
    /// JSON Lines: one `"fix"` object per pair plus a summary line.
    Json,
    /// Unified-style line diff between the original and fixed lowerings.
    Diff,
}

impl FixFormat {
    fn parse(v: &str) -> Result<FixFormat, String> {
        match v {
            "pretty" => Ok(FixFormat::Pretty),
            "json" => Ok(FixFormat::Json),
            "diff" => Ok(FixFormat::Diff),
            other => Err(format!(
                "fix supports --format pretty|json|diff, not {other:?}"
            )),
        }
    }
}

fn parse_fix_format(flags: &[(&str, &str)]) -> Result<FixFormat, String> {
    match flag_values(flags, "format").as_slice() {
        [] => Ok(FixFormat::Pretty),
        [v] => FixFormat::parse(v),
        _ => Err("--format given more than once".to_owned()),
    }
}

/// The `--mode` execution-mode flag shared by `sweep`, `search`, and
/// `sim`. Mode strings never contain commas, so the comma-splitting in
/// [`flag_values`] cannot mangle them.
fn parse_mode(flags: &[(&str, &str)]) -> Result<ExecMode, String> {
    match flag_values(flags, "mode").as_slice() {
        [] => Ok(ExecMode::Accurate),
        [v] => ExecMode::parse(v),
        _ => Err("--mode given more than once".to_owned()),
    }
}

fn parse_cache_dir(flags: &[(&str, &str)]) -> Option<PathBuf> {
    flag_values(flags, "cache-dir").last().map(PathBuf::from)
}

/// Parses a `--timeline` value of the form `path[:interval]`. A numeric
/// suffix after the last `:` is the window size in ticks; without one the
/// whole value is the path and [`DEFAULT_TIMELINE_INTERVAL`] applies.
fn parse_timeline_value(value: &str) -> Result<(String, u64), String> {
    if let Some((path, suffix)) = value.rsplit_once(':') {
        if !suffix.is_empty() && suffix.bytes().all(|b| b.is_ascii_digit()) {
            let interval = suffix
                .parse::<u64>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| "--timeline interval must be a positive integer".to_owned())?;
            if path.is_empty() {
                return Err("--timeline needs a path before the interval".to_owned());
            }
            return Ok((path.to_owned(), interval));
        }
    }
    Ok((value.to_owned(), DEFAULT_TIMELINE_INTERVAL))
}

fn parse_list<T>(
    values: &[&str],
    parse: impl Fn(&str) -> Result<T, String>,
) -> Result<Vec<T>, String> {
    values.iter().map(|v| parse(v)).collect()
}

fn expect_no_positionals(positionals: &[&str], command: &str) -> Result<(), String> {
    match positionals.first() {
        None => Ok(()),
        Some(extra) => Err(format!("unexpected argument {extra:?} for {command}")),
    }
}

fn parse_sweep(args: &[String]) -> Result<Command, String> {
    let (positionals, flags) = split_flags(
        args,
        &[
            "kernel",
            "system",
            "space",
            "scale",
            "jobs",
            "cache-dir",
            "format",
            "mode",
            "join",
        ],
    )?;
    expect_no_positionals(&positionals, "sweep")?;

    Ok(Command::Sweep {
        spec: parse_axes(&flags)?,
        format: parse_format(&flags)?,
        jobs: parse_jobs(&flags)?,
        cache_dir: parse_cache_dir(&flags),
        mode: parse_mode(&flags)?,
        join: parse_join_flag(&flags)?,
    })
}

/// Parses the shared optional `--join H:P` flag: the cluster address of
/// a serve-fleet member whose ring this process should scatter its
/// sweep/search jobs across.
fn parse_join_flag(flags: &Flags<'_>) -> Result<Option<String>, String> {
    match flag_values(flags, "join").as_slice() {
        [] => Ok(None),
        [v] if v.contains(':') => Ok(Some((*v).to_owned())),
        [v] => Err(format!("--join needs HOST:PORT, not {v:?}")),
        _ => Err("--join given more than once".to_owned()),
    }
}

/// The spec axes shared by `sweep` and `search`: kernels, systems,
/// spaces, and scales, with the same defaults and family-narrowing rules.
fn parse_axes(flags: &[(&str, &str)]) -> Result<SweepSpec, String> {
    let kernel_names = flag_values(flags, "kernel");
    let kernels = if kernel_names.is_empty() {
        Kernel::ALL.to_vec()
    } else {
        parse_list(&kernel_names, parse_kernel)?
    };

    let system_names = flag_values(flags, "system");
    let space_names = flag_values(flags, "space");
    // With no target filter, cover both families; a filter on one family
    // narrows to it unless the other is filtered too.
    let (systems, spaces) = if system_names.is_empty() && space_names.is_empty() {
        (EvaluatedSystem::ALL.to_vec(), AddressSpace::ALL.to_vec())
    } else {
        (
            parse_list(&system_names, parse_system)?,
            parse_list(&space_names, parse_space)?,
        )
    };

    let scale_values = flag_values(flags, "scale");
    let scales = if scale_values.is_empty() {
        vec![1]
    } else {
        parse_list(&scale_values, parse_scale_value)?
    };

    Ok(SweepSpec {
        kernels,
        systems,
        spaces,
        scales,
    })
}

fn parse_search(args: &[String]) -> Result<Command, String> {
    let (positionals, flags) = split_flags(
        args,
        &[
            "budget",
            "seed",
            "objectives",
            "strategy",
            "kernel",
            "system",
            "space",
            "scale",
            "jobs",
            "cache-dir",
            "format",
            "mode",
            "join",
        ],
    )?;
    expect_no_positionals(&positionals, "search")?;

    let space = SearchSpace::from_spec(&parse_axes(&flags)?);

    let objective_names = flag_values(&flags, "objectives");
    let objectives = if objective_names.is_empty() {
        Objective::ALL.to_vec()
    } else {
        let list = parse_list(&objective_names, Objective::parse)?;
        for (i, o) in list.iter().enumerate() {
            if list[..i].contains(o) {
                return Err(format!("duplicate objective {:?}", o.name()));
            }
        }
        list
    };

    let strategy = match flag_values(&flags, "strategy").as_slice() {
        [] => Strategy::Halving,
        [v] => Strategy::parse(v)?,
        _ => return Err("--strategy given more than once".to_owned()),
    };

    let budget = match flag_values(&flags, "budget").as_slice() {
        // Default: a quarter of the exhaustive sweep, but never less than
        // one candidate evaluation.
        [] => (space.exhaustive_jobs() / 4).max(space.jobs_per_candidate()),
        [v] => v
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| "--budget needs a positive integer".to_owned())?,
        _ => return Err("--budget given more than once".to_owned()),
    };

    let seed = match flag_values(&flags, "seed").as_slice() {
        [] => 0,
        [v] => v
            .parse::<u64>()
            .map_err(|_| "--seed needs a non-negative integer".to_owned())?,
        _ => return Err("--seed given more than once".to_owned()),
    };

    Ok(Command::Search {
        config: SearchConfig {
            space,
            objectives,
            strategy,
            budget,
            seed,
            mode: parse_mode(&flags)?,
        },
        format: parse_format_no_csv(&flags, "search")?,
        jobs: parse_jobs(&flags)?,
        cache_dir: parse_cache_dir(&flags),
        join: parse_join_flag(&flags)?,
    })
}

/// Parses command-line arguments (without the program name).
///
/// # Errors
///
/// Returns a one-line message on malformed input; the binary prints it
/// with usage and exits 2.
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "tables" => {
            expect_no_positionals(&split_flags(rest, &[])?.0, "tables")?;
            Ok(Command::Tables)
        }
        "fig" => {
            let (positionals, flags) =
                split_flags(rest, &["scale", "format", "jobs", "cache-dir"])?;
            let number = positionals
                .first()
                .and_then(|v| v.parse::<u8>().ok())
                .filter(|n| matches!(n, 5..=7))
                .ok_or_else(|| "fig needs a figure number: 5, 6, or 7".to_owned())?;
            expect_no_positionals(&positionals[1..], "fig")?;
            Ok(Command::Fig {
                number,
                scale: parse_single_scale(&flags)?,
                format: parse_format(&flags)?,
                jobs: parse_jobs(&flags)?,
                cache_dir: parse_cache_dir(&flags),
            })
        }
        "sweep" => parse_sweep(rest),
        "search" => parse_search(rest),
        "loc" => {
            let (positionals, _) = split_flags(rest, &[])?;
            let path = positionals
                .first()
                .map(|s| (*s).to_owned())
                .ok_or_else(|| "loc needs a source path".to_owned())?;
            expect_no_positionals(&positionals[1..], "loc")?;
            Ok(Command::Loc { path })
        }
        "lint" => {
            let (positionals, _) = split_flags(rest, &[])?;
            let path = positionals
                .first()
                .map(|s| (*s).to_owned())
                .ok_or_else(|| "lint needs a source path".to_owned())?;
            expect_no_positionals(&positionals[1..], "lint")?;
            Ok(Command::Lint { path })
        }
        "check" => {
            // `--all` is a bare switch, unlike the value-taking flags
            // split_flags handles, so strip it first.
            let mut all = false;
            let remaining: Vec<String> = rest
                .iter()
                .filter(|a| {
                    if a.as_str() == "--all" {
                        all = true;
                        false
                    } else {
                        true
                    }
                })
                .cloned()
                .collect();
            let (positionals, flags) =
                split_flags(&remaining, &["model", "format", "deny", "explain"])?;
            let targets: Vec<String> = positionals.iter().map(|s| (*s).to_owned()).collect();
            let explain = match flag_values(&flags, "explain").as_slice() {
                [] => None,
                [v] => Some((*v).to_owned()),
                _ => return Err("--explain given more than once".to_owned()),
            };
            if all && !targets.is_empty() {
                return Err("check takes either --all or explicit targets, not both".to_owned());
            }
            if explain.is_some() && (all || !targets.is_empty()) {
                return Err("check --explain takes no targets".to_owned());
            }
            if explain.is_none() && !all && targets.is_empty() {
                return Err("check needs a kernel name, an .hdsl path, or --all".to_owned());
            }
            let models = parse_list(&flag_values(&flags, "model"), parse_space)?;
            let deny = match flag_values(&flags, "deny").as_slice() {
                [] => hetmem_dsl::Severity::Error,
                ["warnings" | "warning"] => hetmem_dsl::Severity::Warning,
                ["notes" | "note"] => hetmem_dsl::Severity::Note,
                [other] => return Err(format!("--deny takes warnings|notes, not {other:?}")),
                _ => return Err("--deny given more than once".to_owned()),
            };
            Ok(Command::Check {
                targets,
                all,
                models,
                format: parse_format_no_csv(&flags, "check")?,
                deny,
                explain,
            })
        }
        "fix" => {
            // `--all` is a bare switch, stripped before split_flags like
            // `check`'s.
            let mut all = false;
            let remaining: Vec<String> = rest
                .iter()
                .filter(|a| {
                    if a.as_str() == "--all" {
                        all = true;
                        false
                    } else {
                        true
                    }
                })
                .cloned()
                .collect();
            let (positionals, flags) = split_flags(&remaining, &["model", "format", "deny"])?;
            let targets: Vec<String> = positionals.iter().map(|s| (*s).to_owned()).collect();
            if all && !targets.is_empty() {
                return Err("fix takes either --all or explicit targets, not both".to_owned());
            }
            if !all && targets.is_empty() {
                return Err("fix needs a kernel name, an .hdsl path, or --all".to_owned());
            }
            let deny_unchanged = match flag_values(&flags, "deny").as_slice() {
                [] => false,
                ["unchanged"] => true,
                [other] => return Err(format!("fix --deny takes unchanged, not {other:?}")),
                _ => return Err("--deny given more than once".to_owned()),
            };
            Ok(Command::Fix {
                targets,
                all,
                models: parse_list(&flag_values(&flags, "model"), parse_space)?,
                format: parse_fix_format(&flags)?,
                deny_unchanged,
            })
        }
        "lower" => {
            let (positionals, _) = split_flags(rest, &[])?;
            let path = positionals
                .first()
                .map(|s| (*s).to_owned())
                .ok_or_else(|| "lower needs a source path".to_owned())?;
            let model = parse_space(
                positionals
                    .get(1)
                    .ok_or_else(|| "lower needs a model (uni|pas|dis|adsm)".to_owned())?,
            )?;
            expect_no_positionals(&positionals[2..], "lower")?;
            Ok(Command::Lower { path, model })
        }
        "trace" => {
            let (positionals, flags) = split_flags(rest, &["scale"])?;
            let kernel = parse_kernel(
                positionals
                    .first()
                    .ok_or_else(|| "trace needs a kernel name".to_owned())?,
            )?;
            expect_no_positionals(&positionals[1..], "trace")?;
            Ok(Command::Trace {
                kernel,
                scale: parse_single_scale(&flags)?,
            })
        }
        "sim" => {
            let (positionals, flags) =
                split_flags(rest, &["format", "events", "timeline", "mode"])?;
            let path = positionals
                .first()
                .map(|s| (*s).to_owned())
                .ok_or_else(|| "sim needs a trace path".to_owned())?;
            let system = parse_system(
                positionals
                    .get(1)
                    .ok_or_else(|| "sim needs a system name".to_owned())?,
            )?;
            expect_no_positionals(&positionals[2..], "sim")?;
            Ok(Command::Sim {
                path,
                system,
                format: parse_format_no_csv(&flags, "sim")?,
                events: flag_values(&flags, "events")
                    .last()
                    .map(|s| (*s).to_owned()),
                timeline: flag_values(&flags, "timeline")
                    .last()
                    .map(|v| parse_timeline_value(v))
                    .transpose()?,
                mode: parse_mode(&flags)?,
            })
        }
        "serve" => {
            let (positionals, flags) = split_flags(
                rest,
                &[
                    "addr",
                    "workers",
                    "queue-depth",
                    "cache-dir",
                    "advertise",
                    "join",
                    "heartbeat-ms",
                ],
            )?;
            expect_no_positionals(&positionals, "serve")?;
            let addr = match flag_values(&flags, "addr").as_slice() {
                [] => "127.0.0.1:7878".to_owned(),
                [v] if v.contains(':') => (*v).to_owned(),
                [v] => return Err(format!("--addr needs HOST:PORT, not {v:?}")),
                _ => return Err("--addr given more than once".to_owned()),
            };
            let workers = match flag_values(&flags, "workers").as_slice() {
                [] => 0,
                [v] => v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| "--workers needs a positive integer".to_owned())?,
                _ => return Err("--workers given more than once".to_owned()),
            };
            let queue_depth = match flag_values(&flags, "queue-depth").as_slice() {
                [] => 32,
                [v] => v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| "--queue-depth needs a positive integer".to_owned())?,
                _ => return Err("--queue-depth given more than once".to_owned()),
            };
            let host_port = |name: &str| match flag_values(&flags, name).as_slice() {
                [] => Ok(None),
                [v] if v.contains(':') => Ok(Some((*v).to_owned())),
                [v] => Err(format!("--{name} needs HOST:PORT, not {v:?}")),
                _ => Err(format!("--{name} given more than once")),
            };
            let advertise = host_port("advertise")?;
            let join = host_port("join")?;
            let heartbeat_ms = match flag_values(&flags, "heartbeat-ms").as_slice() {
                [] => 500,
                [v] => v
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| "--heartbeat-ms needs a positive integer".to_owned())?,
                _ => return Err("--heartbeat-ms given more than once".to_owned()),
            };
            Ok(Command::Serve {
                addr,
                workers,
                queue_depth,
                cache_dir: parse_cache_dir(&flags),
                advertise,
                join,
                heartbeat_ms,
            })
        }
        "catalog" => {
            expect_no_positionals(&split_flags(rest, &[])?.0, "catalog")?;
            Ok(Command::Catalog)
        }
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Connects to a serve fleet when `--join` was given and returns a
/// dispatcher that scatters sweep/search jobs across the member ring.
fn fleet_dispatcher(join: Option<&str>) -> Result<Option<Arc<dyn JobDispatcher>>, SimError> {
    let Some(addr) = join else { return Ok(None) };
    let fleet = FleetDispatcher::connect(addr)?;
    eprintln!("joined fleet via {addr}: {} node(s)", fleet.nodes());
    Ok(Some(Arc::new(fleet)))
}

/// Executes a parsed command, writing human-readable output to stdout.
///
/// # Errors
///
/// Returns a [`SimError`] on I/O failures, unparsable inputs, or malformed
/// trace/DSL files. The binary maps it to an exit code uniformly:
/// [`SimError::exit_code`] gives 2 for usage errors and 1 for everything
/// else.
pub fn execute(command: &Command) -> Result<(), SimError> {
    match command {
        Command::Help => println!("{USAGE}"),
        Command::Tables => {
            print_catalog();
            print_loc_table();
            print_characteristics();
        }
        Command::Catalog => print_catalog(),
        Command::Fig {
            number,
            scale,
            format,
            jobs,
            cache_dir,
        } => {
            execute_fig(*number, *scale, *format, *jobs, cache_dir.clone())?;
        }
        Command::Sweep {
            spec,
            format,
            jobs,
            cache_dir,
            mode,
            join,
        } => {
            let config = ExperimentConfig::paper();
            let opts = SweepOptions::builder()
                .workers(*jobs)
                .cache_dir(cache_dir.clone())
                .progress(true)
                .mode(*mode)
                .dispatcher(fleet_dispatcher(join.as_deref())?)
                .build();
            let out = hetmem_xplore::run_sweep(spec, &config, &opts)?;
            print!("{}", format.render(&out.records));
            eprintln!("sweep: {}", out.stats);
        }
        Command::Search {
            config,
            format,
            jobs,
            cache_dir,
            join,
        } => {
            let opts = SearchOptions {
                workers: *jobs,
                cache_dir: cache_dir.clone(),
                dispatcher: fleet_dispatcher(join.as_deref())?,
                ..SearchOptions::default()
            };
            let result = hetmem_search::run_search(config, opts)?;
            // Stdout carries only the deterministic report (byte-identical
            // for a fixed seed + spec, cold or warm cache); execution
            // counters go to stderr like the sweep's.
            match format {
                OutputFormat::Json => println!("{}", result.to_json().render()),
                OutputFormat::Table => println!("{}", result.render_table()),
                OutputFormat::Csv => unreachable!("rejected at parse time"),
            }
            eprintln!("search: {}", result.stats);
        }
        Command::Loc { path } => {
            let program = load_program(path)?;
            println!("{}: {} compute lines", program.name, program.compute_lines);
            for model in AddressSpace::ALL {
                println!(
                    "  {:<4} {:>3} communication-handling lines",
                    model.abbrev(),
                    hetmem_dsl::lower(&program, model).comm_overhead_lines()
                );
            }
        }
        Command::Lint { path } => {
            let program = load_program(path)?;
            let lints = hetmem_dsl::program_lints(&program);
            if lints.is_empty() {
                println!("{}: no findings", program.name);
            } else {
                for lint in &lints {
                    println!("{lint}");
                }
                let warnings = lints
                    .iter()
                    .filter(|l| l.severity == hetmem_dsl::Severity::Warning)
                    .count();
                println!("{} finding(s), {} warning(s)", lints.len(), warnings);
            }
        }
        Command::Check {
            targets,
            all,
            models,
            format,
            deny,
            explain,
        } => match explain {
            Some(code) => execute_explain(code)?,
            None => execute_check(targets, *all, models, *format, *deny)?,
        },
        Command::Fix {
            targets,
            all,
            models,
            format,
            deny_unchanged,
        } => execute_fix(targets, *all, models, *format, *deny_unchanged)?,
        Command::Lower { path, model } => {
            let program = load_program(path)?;
            println!(
                "{}",
                hetmem_dsl::render(&hetmem_dsl::lower(&program, *model))
            );
        }
        Command::Trace { kernel, scale } => {
            let trace = kernel.generate(&KernelParams::scaled(*scale));
            print!("{}", hetmem_trace::write_trace(&trace));
        }
        Command::Sim {
            path,
            system,
            format,
            events,
            timeline,
            mode,
        } => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| SimError::Io(format!("cannot read {path}: {e}")))?;
            let trace = hetmem_trace::parse_trace(&text)
                .map_err(|e| SimError::MalformedTrace(e.to_string()))?;
            let recorder = Recorder::new(
                events.as_ref().map(|_| EventTrace::new()),
                timeline
                    .as_ref()
                    .map(|&(_, interval)| IntervalProfiler::new(interval)),
            );
            let mut sim = Simulation::builder()
                .comm_model(system.comm_model(hetmem_sim::CommCosts::paper()))
                .mode(*mode)
                .observer(recorder)
                .build()?;
            let report = sim.run(&trace)?;
            let recorder = sim.into_observer();
            if let (Some(out_path), Some(event_trace)) = (events, &recorder.events) {
                std::fs::write(out_path, hetmem_xplore::events_to_jsonl(event_trace))
                    .map_err(|e| SimError::Io(format!("cannot write {out_path}: {e}")))?;
            }
            if let (Some((out_path, _)), Some(profiler)) = (timeline, &recorder.timeline) {
                std::fs::write(out_path, hetmem_xplore::timeline_to_jsonl(profiler))
                    .map_err(|e| SimError::Io(format!("cannot write {out_path}: {e}")))?;
            }
            match format {
                OutputFormat::Table => println!("{}: {report}", system.name()),
                OutputFormat::Json => {
                    let value = Json::obj(vec![
                        ("system", Json::Str(system.name().to_owned())),
                        ("total_ticks", Json::UInt(report.total_ticks())),
                        ("report", hetmem_xplore::report_to_json(&report)),
                    ]);
                    println!("{}", value.render());
                }
                OutputFormat::Csv => unreachable!("rejected at parse time"),
            }
        }
        Command::Serve {
            addr,
            workers,
            queue_depth,
            cache_dir,
            advertise,
            join,
            heartbeat_ms,
        } => {
            let server = hetmem_serve::Server::start(&hetmem_serve::ServeOptions {
                addr: addr.clone(),
                workers: *workers,
                queue_depth: *queue_depth,
                cache_dir: cache_dir.clone(),
                advertise: advertise.clone(),
                join: join.clone(),
                heartbeat_ms: *heartbeat_ms,
                ..hetmem_serve::ServeOptions::default()
            })?;
            // The resolved addresses on stdout first, so scripts binding
            // port 0 can discover the ephemeral ports.
            println!("hetmem-serve listening on http://{}", server.local_addr());
            if let Some(cluster) = server.cluster_addr() {
                println!("hetmem-serve cluster on {cluster}");
            }
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
            server.wait();
        }
    }
    Ok(())
}

/// Figures 5–7 through the sweep engine: parallel and optionally cached.
fn execute_fig(
    number: u8,
    scale: u32,
    format: OutputFormat,
    jobs: usize,
    cache_dir: Option<PathBuf>,
) -> Result<(), SimError> {
    let config = ExperimentConfig::scaled(scale);
    let opts = SweepOptions::builder()
        .workers(jobs)
        .cache_dir(cache_dir)
        .build();
    // The table format renders the paper's figure; json/csv emit the raw
    // sweep records for scripting.
    if format == OutputFormat::Table {
        match number {
            5 => {
                let (runs, _) = hetmem_xplore::run_case_studies(&config, &opts)?;
                println!("{}", render_figure5(&runs));
            }
            6 => {
                let (runs, _) = hetmem_xplore::run_case_studies(&config, &opts)?;
                println!("{}", render_figure6(&runs));
            }
            7 => {
                let (runs, _) = hetmem_xplore::run_address_spaces(&config, &opts)?;
                println!("{}", render_figure7(&runs));
            }
            _ => unreachable!("validated at parse time"),
        }
        return Ok(());
    }
    let spec = match number {
        5 | 6 => SweepSpec {
            spaces: vec![],
            ..SweepSpec::full(scale)
        },
        7 => SweepSpec {
            systems: vec![],
            ..SweepSpec::full(scale)
        },
        _ => unreachable!("validated at parse time"),
    };
    let out = hetmem_xplore::run_sweep(&spec, &config, &opts)?;
    print!("{}", format.render(&out.records));
    Ok(())
}

/// Resolves a `check` target: an `.hdsl` path loads a source file, any
/// other word looks up a built-in program by (normalized) name.
fn resolve_check_target(target: &str) -> Result<hetmem_dsl::Program, SimError> {
    if target.ends_with(".hdsl") {
        return load_program(target);
    }
    hetmem_dsl::programs::find(target).ok_or_else(|| {
        SimError::Usage(format!(
            "unknown kernel {target:?} (use a built-in kernel name, an .hdsl path, or --all)"
        ))
    })
}

/// Runs the memory-model verifier over the selected programs × models,
/// printing reports (or JSONL) and mapping Error findings to exit 1.
fn execute_check(
    targets: &[String],
    all: bool,
    models: &[AddressSpace],
    format: OutputFormat,
    deny: hetmem_dsl::Severity,
) -> Result<(), SimError> {
    let models: Vec<AddressSpace> = if models.is_empty() {
        AddressSpace::ALL.to_vec()
    } else {
        models.to_vec()
    };
    let programs: Vec<hetmem_dsl::Program> = if all {
        let mut v = hetmem_dsl::programs::all();
        v.extend(hetmem_dsl::programs::extra::all());
        v
    } else {
        targets
            .iter()
            .map(|t| resolve_check_target(t))
            .collect::<Result<_, _>>()?
    };
    let mut reports = Vec::new();
    for program in &programs {
        for &model in &models {
            reports.push(hetmem_dsl::check(program, model));
        }
    }
    match format {
        OutputFormat::Table => {
            for report in &reports {
                println!("{report}");
            }
        }
        OutputFormat::Json => print!("{}", hetmem_xplore::check_reports_to_jsonl(&reports)),
        OutputFormat::Csv => unreachable!("rejected at parse time"),
    }
    // Severity orders most-severe-first, so `<= deny` selects everything
    // at or above the denied threshold.
    let errors: usize = reports
        .iter()
        .flat_map(|r| &r.diagnostics)
        .filter(|d| d.severity <= deny)
        .count();
    if errors > 0 {
        return Err(SimError::CheckFailed { errors });
    }
    Ok(())
}

/// Prints the `rustc --explain`-style paragraph for one diagnostic code.
/// Unknown codes are usage errors (exit 2).
fn execute_explain(text: &str) -> Result<(), SimError> {
    let code = hetmem_dsl::Code::parse(text).ok_or_else(|| {
        SimError::Usage(format!(
            "unknown diagnostic code {text:?} (codes run HM0001-HM0005 and HM0101-HM0106)"
        ))
    })?;
    println!("{}: {}", code, code.name());
    println!("{}", code.explanation());
    Ok(())
}

/// Runs the checker-driven communication optimizer over the selected
/// programs × models and prints each outcome in the requested format.
fn execute_fix(
    targets: &[String],
    all: bool,
    models: &[AddressSpace],
    format: FixFormat,
    deny_unchanged: bool,
) -> Result<(), SimError> {
    let models: Vec<AddressSpace> = if models.is_empty() {
        AddressSpace::ALL.to_vec()
    } else {
        models.to_vec()
    };
    let programs: Vec<hetmem_dsl::Program> = if all {
        let mut v = hetmem_dsl::programs::all();
        v.extend(hetmem_dsl::programs::extra::all());
        v
    } else {
        targets
            .iter()
            .map(|t| resolve_check_target(t))
            .collect::<Result<_, _>>()?
    };
    let mut reports = Vec::new();
    for program in &programs {
        for &model in &models {
            reports.push(hetmem_dsl::fix(program, model));
        }
    }
    match format {
        FixFormat::Pretty => {
            for report in &reports {
                println!("{report}");
                println!("{}", hetmem_dsl::render(&report.fixed));
            }
        }
        FixFormat::Json => print!("{}", hetmem_xplore::fix_reports_to_jsonl(&reports)),
        FixFormat::Diff => {
            for report in &reports {
                let id = format!("{}/{}", report.original.program_name, report.original.model);
                println!("--- {id} (original)");
                println!("+++ {id} (fixed)");
                print!(
                    "{}",
                    hetmem_dsl::diff_lines(
                        &hetmem_dsl::render(&report.original),
                        &hetmem_dsl::render(&report.fixed)
                    )
                );
            }
        }
    }
    if deny_unchanged && !reports.iter().any(hetmem_dsl::FixReport::changed) {
        return Err(SimError::FixUnchanged {
            pairs: reports.len(),
        });
    }
    Ok(())
}

fn load_program(path: &str) -> Result<hetmem_dsl::Program, SimError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| SimError::Io(format!("cannot read {path}: {e}")))?;
    hetmem_dsl::parse_program(&text).map_err(|e| SimError::Io(e.to_string()))
}

fn print_catalog() {
    let mut table = TextTable::new(&["scheme", "address space", "connection", "consistency"]);
    for e in hetmem_core::catalog() {
        table.row(vec![
            e.name.to_owned(),
            e.space.to_string(),
            e.connection.to_string(),
            e.consistency.to_string(),
        ]);
    }
    println!("Table I:\n{}", table.render());
}

fn print_loc_table() {
    let mut table = TextTable::new(&["kernel", "Comp", "UNI", "PAS", "DIS", "ADSM"]);
    for row in hetmem_dsl::loc_table() {
        table.row(vec![
            row.kernel.clone(),
            row.comp.to_string(),
            row.uni.to_string(),
            row.pas.to_string(),
            row.dis.to_string(),
            row.adsm.to_string(),
        ]);
    }
    println!("Table V:\n{}", table.render());
}

fn print_characteristics() {
    let mut table = TextTable::new(&["kernel", "CPU", "GPU", "serial", "comms", "initial B"]);
    for k in Kernel::ALL {
        let c = k.paper_characteristics();
        table.row(vec![
            k.name().to_owned(),
            c.cpu_instructions.to_string(),
            c.gpu_instructions.to_string(),
            c.serial_instructions.to_string(),
            c.communications.to_string(),
            c.initial_transfer_bytes.to_string(),
        ]);
    }
    println!("Table III:\n{}", table.render());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parses_every_command_form() {
        assert_eq!(parse_args(&args(&["tables"])), Ok(Command::Tables));
        assert_eq!(parse_args(&args(&["catalog"])), Ok(Command::Catalog));
        assert_eq!(parse_args(&args(&[])), Ok(Command::Help));
        assert_eq!(parse_args(&args(&["help"])), Ok(Command::Help));
        assert_eq!(
            parse_args(&args(&["fig", "5"])),
            Ok(Command::Fig {
                number: 5,
                scale: 1,
                format: OutputFormat::Table,
                jobs: 0,
                cache_dir: None
            })
        );
        assert_eq!(
            parse_args(&args(&["fig", "7", "--scale", "64", "--format", "json"])),
            Ok(Command::Fig {
                number: 7,
                scale: 64,
                format: OutputFormat::Json,
                jobs: 0,
                cache_dir: None
            })
        );
        assert_eq!(
            parse_args(&args(&["trace", "reduction", "--scale", "8"])),
            Ok(Command::Trace {
                kernel: Kernel::Reduction,
                scale: 8
            })
        );
        assert_eq!(
            parse_args(&args(&["sim", "t.hmt", "fusion"])),
            Ok(Command::Sim {
                path: "t.hmt".into(),
                system: EvaluatedSystem::Fusion,
                format: OutputFormat::Table,
                events: None,
                timeline: None,
                mode: ExecMode::Accurate,
            })
        );
        assert_eq!(
            parse_args(&args(&[
                "sim",
                "t.hmt",
                "gmac",
                "--events",
                "ev.jsonl",
                "--timeline",
                "tl.jsonl:500000",
            ])),
            Ok(Command::Sim {
                path: "t.hmt".into(),
                system: EvaluatedSystem::Gmac,
                format: OutputFormat::Table,
                events: Some("ev.jsonl".into()),
                timeline: Some(("tl.jsonl".into(), 500_000)),
                mode: ExecMode::Accurate,
            })
        );
        assert_eq!(
            parse_args(&args(&["lower", "p.hdsl", "adsm"])),
            Ok(Command::Lower {
                path: "p.hdsl".into(),
                model: AddressSpace::Adsm
            })
        );
        assert_eq!(
            parse_args(&args(&["loc", "p.hdsl"])),
            Ok(Command::Loc {
                path: "p.hdsl".into()
            })
        );
        assert_eq!(
            parse_args(&args(&["lint", "p.hdsl"])),
            Ok(Command::Lint {
                path: "p.hdsl".into()
            })
        );
        assert_eq!(
            parse_args(&args(&["check", "--all"])),
            Ok(Command::Check {
                targets: vec![],
                all: true,
                models: vec![],
                format: OutputFormat::Table,
                deny: hetmem_dsl::Severity::Error,
                explain: None,
            })
        );
        assert_eq!(
            parse_args(&args(&["check", "--explain", "HM0101"])),
            Ok(Command::Check {
                targets: vec![],
                all: false,
                models: vec![],
                format: OutputFormat::Table,
                deny: hetmem_dsl::Severity::Error,
                explain: Some("HM0101".into()),
            })
        );
        assert_eq!(
            parse_args(&args(&["fix", "--all"])),
            Ok(Command::Fix {
                targets: vec![],
                all: true,
                models: vec![],
                format: FixFormat::Pretty,
                deny_unchanged: false,
            })
        );
        assert_eq!(
            parse_args(&args(&[
                "fix",
                "kmeans",
                "--model",
                "pas",
                "--format",
                "diff",
                "--deny",
                "unchanged"
            ])),
            Ok(Command::Fix {
                targets: vec!["kmeans".into()],
                all: false,
                models: vec![AddressSpace::PartiallyShared],
                format: FixFormat::Diff,
                deny_unchanged: true,
            })
        );
        assert_eq!(
            parse_args(&args(&[
                "check",
                "reduction",
                "p.hdsl",
                "--model",
                "dis,adsm",
                "--format",
                "json"
            ])),
            Ok(Command::Check {
                targets: vec!["reduction".into(), "p.hdsl".into()],
                all: false,
                models: vec![AddressSpace::Disjoint, AddressSpace::Adsm],
                format: OutputFormat::Json,
                deny: hetmem_dsl::Severity::Error,
                explain: None,
            })
        );
    }

    #[test]
    fn check_rejects_contradictory_and_empty_forms() {
        assert!(parse_args(&args(&["check"])).is_err());
        assert!(parse_args(&args(&["check", "--all", "reduction"])).is_err());
        assert!(parse_args(&args(&["check", "reduction", "--bogus", "1"])).is_err());
        assert!(parse_args(&args(&["check", "reduction", "--model", "weird"])).is_err());
        assert!(parse_args(&args(&["check", "reduction", "--deny", "everything"])).is_err());
        let Ok(Command::Check { deny, .. }) =
            parse_args(&args(&["check", "reduction", "--deny", "warnings"]))
        else {
            panic!("--deny warnings must parse");
        };
        assert_eq!(deny, hetmem_dsl::Severity::Warning);
        assert!(parse_args(&args(&["check", "reduction", "--explain", "HM0101"])).is_err());
        assert!(parse_args(&args(&["check", "--all", "--explain", "HM0101"])).is_err());
    }

    #[test]
    fn fix_rejects_contradictory_and_empty_forms() {
        assert!(parse_args(&args(&["fix"])).is_err());
        assert!(parse_args(&args(&["fix", "--all", "reduction"])).is_err());
        assert!(parse_args(&args(&["fix", "reduction", "--deny", "warnings"])).is_err());
        assert!(parse_args(&args(&["fix", "reduction", "--format", "csv"])).is_err());
        assert!(parse_args(&args(&["fix", "reduction", "--model", "weird"])).is_err());
    }

    #[test]
    fn parses_sweep_defaults_and_filters() {
        let Ok(Command::Sweep {
            spec,
            format,
            jobs,
            cache_dir,
            mode,
            join,
        }) = parse_args(&args(&["sweep"]))
        else {
            panic!("sweep must parse");
        };
        assert_eq!(spec, SweepSpec::full(1));
        assert_eq!(format, OutputFormat::Table);
        assert_eq!(jobs, 0);
        assert_eq!(cache_dir, None);
        assert_eq!(mode, ExecMode::Accurate);
        assert_eq!(join, None);

        let Ok(Command::Sweep {
            spec,
            format,
            jobs,
            cache_dir,
            ..
        }) = parse_args(&args(&[
            "sweep",
            "--kernel",
            "kmeans,dct",
            "--system",
            "fusion",
            "--scale",
            "64",
            "--jobs",
            "8",
            "--cache-dir",
            "/tmp/c",
            "--format",
            "csv",
        ]))
        else {
            panic!("filtered sweep must parse");
        };
        assert_eq!(spec.kernels, vec![Kernel::KMeans, Kernel::Dct]);
        assert_eq!(spec.systems, vec![EvaluatedSystem::Fusion]);
        assert!(
            spec.spaces.is_empty(),
            "a system filter narrows to case studies"
        );
        assert_eq!(spec.scales, vec![64]);
        assert_eq!(format, OutputFormat::Csv);
        assert_eq!(jobs, 8);
        assert_eq!(cache_dir, Some(PathBuf::from("/tmp/c")));
    }

    #[test]
    fn parses_join_flag_and_rejects_bad_addresses() {
        let Ok(Command::Sweep { join, .. }) =
            parse_args(&args(&["sweep", "--join", "127.0.0.1:7070"]))
        else {
            panic!("sweep --join must parse");
        };
        assert_eq!(join.as_deref(), Some("127.0.0.1:7070"));

        let Ok(Command::Search { join, .. }) =
            parse_args(&args(&["search", "--join", "127.0.0.1:7070"]))
        else {
            panic!("search --join must parse");
        };
        assert_eq!(join.as_deref(), Some("127.0.0.1:7070"));

        assert!(parse_args(&args(&["sweep", "--join", "no-port"])).is_err());
        assert!(parse_args(&args(&["sweep", "--join", "a:1", "--join", "b:2"])).is_err());
    }

    #[test]
    fn parses_search_defaults_and_filters() {
        let Ok(Command::Search {
            config,
            format,
            jobs,
            cache_dir,
            join,
        }) = parse_args(&args(&["search"]))
        else {
            panic!("search must parse");
        };
        assert_eq!(join, None);
        assert_eq!(config.space, SearchSpace::full(1));
        assert_eq!(config.objectives, Objective::ALL.to_vec());
        assert_eq!(config.strategy, Strategy::Halving);
        // A quarter of the 54-job exhaustive sweep.
        assert_eq!(config.budget, 13);
        assert_eq!(config.seed, 0);
        assert_eq!(config.mode, ExecMode::Accurate);
        assert_eq!(format, OutputFormat::Table);
        assert_eq!(jobs, 0);
        assert_eq!(cache_dir, None);

        let Ok(Command::Search { config, format, .. }) = parse_args(&args(&[
            "search",
            "--budget",
            "20",
            "--seed",
            "9",
            "--objectives",
            "perf,hw",
            "--strategy",
            "evolve",
            "--system",
            "fusion,ideal",
            "--scale",
            "64",
            "--format",
            "json",
        ])) else {
            panic!("filtered search must parse");
        };
        assert_eq!(config.budget, 20);
        assert_eq!(config.seed, 9);
        assert_eq!(config.objectives, vec![Objective::Cycles, Objective::Hw]);
        assert_eq!(config.strategy, Strategy::Evolve);
        assert_eq!(config.space.targets.len(), 2);
        assert_eq!(config.space.scales, vec![64]);
        assert_eq!(format, OutputFormat::Json);
    }

    #[test]
    fn mode_flag_parses_on_every_command_that_takes_it() {
        let Ok(Command::Sweep { mode, .. }) =
            parse_args(&args(&["sweep", "--mode", "event-driven"]))
        else {
            panic!("sweep --mode must parse");
        };
        assert_eq!(mode, ExecMode::EventDriven);

        let Ok(Command::Sim { mode, .. }) = parse_args(&args(&[
            "sim",
            "t.hmt",
            "fusion",
            "--mode",
            "sampled:1000:100",
        ])) else {
            panic!("sim --mode sampled must parse");
        };
        assert_eq!(
            mode,
            ExecMode::Sampled {
                warm_interval: 1000,
                detail_window: 100
            }
        );

        let Ok(Command::Search { config, .. }) =
            parse_args(&args(&["search", "--mode", "sampled"]))
        else {
            panic!("search --mode must parse");
        };
        assert_eq!(config.mode, ExecMode::sampled_default());

        assert!(parse_args(&args(&["sweep", "--mode", "turbo"])).is_err());
        assert!(parse_args(&args(&[
            "sim", "t.hmt", "fusion", "--mode", "accurate", "--mode", "accurate"
        ]))
        .is_err());
        // Commands without an execution mode reject the flag outright.
        assert!(parse_args(&args(&["fig", "5", "--mode", "event-driven"])).is_err());
    }

    #[test]
    fn csv_is_rejected_at_parse_time_where_unsupported() {
        assert!(parse_args(&args(&["sim", "t.hmt", "fusion", "--format", "csv"])).is_err());
        assert!(parse_args(&args(&["search", "--format", "csv"])).is_err());
        assert!(parse_args(&args(&["check", "--all", "--format", "csv"])).is_err());
        // Sweep and fig render CSV, so it still parses there.
        assert!(parse_args(&args(&["sweep", "--format", "csv"])).is_ok());
        assert!(parse_args(&args(&["fig", "5", "--format", "csv"])).is_ok());
    }

    #[test]
    fn search_rejects_malformed_flags() {
        assert!(parse_args(&args(&["search", "--budget", "0"])).is_err());
        assert!(parse_args(&args(&["search", "--seed", "minus-one"])).is_err());
        assert!(parse_args(&args(&["search", "--objectives", "speed"])).is_err());
        assert!(parse_args(&args(&["search", "--objectives", "hw,hw"])).is_err());
        assert!(parse_args(&args(&["search", "--strategy", "bayes"])).is_err());
        assert!(parse_args(&args(&["search", "--bogus", "1"])).is_err());
        assert!(parse_args(&args(&["search", "extra"])).is_err());
    }

    #[test]
    fn sweep_space_filter_selects_isolation_family() {
        let Ok(Command::Sweep { spec, .. }) = parse_args(&args(&["sweep", "--space", "uni,adsm"]))
        else {
            panic!("sweep must parse");
        };
        assert!(spec.systems.is_empty());
        assert_eq!(spec.spaces, vec![AddressSpace::Unified, AddressSpace::Adsm]);
    }

    #[test]
    fn timeline_values_split_path_and_interval() {
        assert_eq!(
            parse_timeline_value("t.jsonl"),
            Ok(("t.jsonl".to_owned(), DEFAULT_TIMELINE_INTERVAL))
        );
        assert_eq!(
            parse_timeline_value("t.jsonl:250000"),
            Ok(("t.jsonl".to_owned(), 250_000))
        );
        // A colon in the path without a numeric suffix stays in the path.
        assert_eq!(
            parse_timeline_value("dir:with:colons/t.jsonl"),
            Ok((
                "dir:with:colons/t.jsonl".to_owned(),
                DEFAULT_TIMELINE_INTERVAL
            ))
        );
        assert!(parse_timeline_value("t.jsonl:0").is_err());
        assert!(parse_timeline_value(":250000").is_err());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_args(&args(&["fig"])).is_err());
        assert!(parse_args(&args(&["fig", "4"])).is_err());
        assert!(parse_args(&args(&["fig", "5", "--scale", "0"])).is_err());
        assert!(parse_args(&args(&["trace", "not-a-kernel"])).is_err());
        assert!(parse_args(&args(&["sim", "t.hmt", "not-a-system"])).is_err());
        assert!(parse_args(&args(&["lower", "p.hdsl", "weird"])).is_err());
        assert!(parse_args(&args(&["frobnicate"])).is_err());
    }

    #[test]
    fn rejects_unknown_flags_and_extra_arguments() {
        assert!(parse_args(&args(&["fig", "5", "--bogus", "1"])).is_err());
        assert!(parse_args(&args(&["sweep", "--turbo", "on"])).is_err());
        assert!(parse_args(&args(&["sweep", "extra"])).is_err());
        assert!(parse_args(&args(&["tables", "--scale", "2"])).is_err());
        assert!(parse_args(&args(&["sweep", "--jobs", "0"])).is_err());
        assert!(parse_args(&args(&["sweep", "--jobs"])).is_err());
        assert!(parse_args(&args(&["sweep", "--format", "yaml"])).is_err());
        assert!(parse_args(&args(&["sim", "t.hmt", "fusion", "extra"])).is_err());
    }

    #[test]
    fn system_and_model_aliases() {
        assert_eq!(parse_system("CUDA"), Ok(EvaluatedSystem::CpuGpuCuda));
        assert_eq!(
            parse_system("ideal-hetero"),
            Ok(EvaluatedSystem::IdealHetero)
        );
        assert_eq!(
            parse_space("partially-shared"),
            Ok(AddressSpace::PartiallyShared)
        );
        assert_eq!(parse_space("UNIFIED"), Ok(AddressSpace::Unified));
    }
}
