//! Exact Pareto-frontier extraction with deterministic ordering.
//!
//! This is the single source of truth for dominance in the workspace: the
//! search driver, the `pareto_frontier` example, and the bench study all
//! filter through here. `hetmem-core` keeps its own three-axis
//! [`hetmem_core::pareto_frontier`] for the paper's fixed metric triple;
//! [`evaluation_frontier`] routes those same points through the generic
//! engine (a parity test in the crate pins the two to identical answers —
//! core cannot depend on this crate, so the duplication is checked, not
//! removed).

use hetmem_core::report::TextTable;
use hetmem_core::Evaluation;

/// Whether objective vector `a` dominates `b`: at least as good on every
/// axis and strictly better on at least one (all axes minimized).
///
/// # Panics
///
/// Panics if the vectors disagree on length — callers compare points from
/// one objective space.
#[must_use]
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "objective vectors must align");
    let mut strictly = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly = true;
        }
    }
    strictly
}

/// Indices of the Pareto-optimal points (no other point dominates them),
/// in input order — the deterministic dominance ordering the search
/// contract pins. Duplicate points are all kept: neither dominates the
/// other.
#[must_use]
pub fn pareto_indices(points: &[Vec<f64>]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            !points
                .iter()
                .enumerate()
                .any(|(j, p)| j != i && dominates(p, &points[i]))
        })
        .collect()
}

/// Routes `hetmem-core`'s three-axis [`Evaluation`]s through the generic
/// frontier engine. Matches [`hetmem_core::pareto_frontier`] exactly.
#[must_use]
pub fn evaluation_frontier(evals: &[Evaluation]) -> Vec<usize> {
    let points: Vec<Vec<f64>> = evals
        .iter()
        .map(|e| {
            vec![
                e.perf_ticks,
                f64::from(e.hardware_cost),
                e.programmer_burden,
            ]
        })
        .collect();
    pareto_indices(&points)
}

/// Renders the evaluated-systems frontier as the shared text table the
/// `pareto_frontier` example and the `study_pareto` bench bin both print
/// (perf in µs at the simulator's 42 GHz tick rate, hardware-cost score,
/// Table V burden, and a frontier marker).
#[must_use]
pub fn system_frontier_table(evals: &[Evaluation]) -> String {
    let frontier = evaluation_frontier(evals);
    let mut table = TextTable::new(&[
        "system",
        "perf geomean (µs)",
        "hw cost",
        "programmer burden (LoC)",
        "Pareto-optimal",
    ]);
    for (i, e) in evals.iter().enumerate() {
        table.row(vec![
            e.system.name().to_owned(),
            format!("{:.1}", e.perf_ticks / 42_000.0),
            e.hardware_cost.to_string(),
            format!("{:.1}", e.programmer_burden),
            if frontier.contains(&i) { "yes" } else { "" }.to_owned(),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetmem_core::experiment::ExperimentConfig;
    use hetmem_core::{evaluate_systems, EvaluatedSystem};

    #[test]
    fn dominance_requires_strict_improvement() {
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0]));
        assert!(!dominates(&[1.0, 4.0], &[2.0, 3.0]));
    }

    #[test]
    fn frontier_keeps_input_order_and_duplicates() {
        let points = vec![
            vec![1.0, 3.0],
            vec![3.0, 1.0],
            vec![2.0, 2.0],
            vec![3.0, 3.0], // dominated by the previous point
            vec![1.0, 3.0], // duplicate of the first: kept
        ];
        assert_eq!(pareto_indices(&points), vec![0, 1, 2, 4]);
    }

    #[test]
    fn empty_and_singleton_spaces() {
        assert!(pareto_indices(&[]).is_empty());
        assert_eq!(pareto_indices(&[vec![5.0]]), vec![0]);
    }

    #[test]
    fn generic_engine_matches_core_frontier() {
        let evals = evaluate_systems(&ExperimentConfig::scaled(256));
        assert_eq!(
            evaluation_frontier(&evals),
            hetmem_core::pareto_frontier(&evals),
            "generic dominance must agree with hetmem-core's fixed triple"
        );
    }

    #[test]
    fn table_marks_the_cheapest_system() {
        let evals = evaluate_systems(&ExperimentConfig::scaled(256));
        let table = system_frontier_table(&evals);
        // CUDA has the unique minimum hardware cost, so it is always
        // Pareto-optimal and its row carries the marker.
        let cuda_row = table
            .lines()
            .find(|l| l.contains(EvaluatedSystem::CpuGpuCuda.name()))
            .expect("row present");
        assert!(cuda_row.contains("yes"), "{table}");
    }
}
