//! The multi-objective space a guided search optimizes over.
//!
//! Four axes, one per trade-off the paper studies, all minimized:
//!
//! * **cycles** — simulated execution time (geometric-mean total ticks over
//!   the candidate's kernels), from the cached `hetmem-xplore` records;
//! * **energy** — a communication-energy proxy: mean communication ticks
//!   plus DRAM bus-busy ticks. Both counters live inside the cached
//!   [`hetmem_sim::RunReport`], so warm restarts never re-simulate to
//!   recompute energy;
//! * **loc** — programmability: mean extra source lines the candidate's
//!   address space forces (the Table V metric, computed by the DSL
//!   lowering);
//! * **hw** — the abstract hardware-cost score of the candidate's design
//!   point ([`hetmem_core::hardware_cost`]);
//! * **saved** — lowering quality: mean communication lines the
//!   checker-driven `fix` optimizer can still delete from the candidate's
//!   canonical lowerings. Zero means the address space's lowering is
//!   already provably minimal; higher means the model forces
//!   communication boilerplate the checker can prove redundant.

/// One optimization axis. All axes are minimized.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Geometric-mean total execution ticks.
    Cycles,
    /// Communication + DRAM bus traffic proxy for energy.
    Energy,
    /// Mean extra source lines (Table V) under the address space.
    Loc,
    /// Abstract hardware-cost score of the design point.
    Hw,
    /// Mean communication lines the fix pass proves removable from the
    /// canonical lowerings (residual redundancy of the address space).
    Saved,
}

impl Objective {
    /// Every axis, in canonical order.
    pub const ALL: [Objective; 5] = [
        Objective::Cycles,
        Objective::Energy,
        Objective::Loc,
        Objective::Hw,
        Objective::Saved,
    ];

    /// Canonical lower-case name (the CLI/JSON spelling).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Objective::Cycles => "cycles",
            Objective::Energy => "energy",
            Objective::Loc => "loc",
            Objective::Hw => "hw",
            Objective::Saved => "saved",
        }
    }

    /// Parses one objective name or alias.
    ///
    /// # Errors
    ///
    /// Returns a one-line message listing valid names.
    pub fn parse(s: &str) -> Result<Objective, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "cycles" | "perf" | "performance" => Ok(Objective::Cycles),
            "energy" | "comm" | "traffic" => Ok(Objective::Energy),
            "loc" | "programmability" | "burden" => Ok(Objective::Loc),
            "hw" | "hardware" | "cost" => Ok(Objective::Hw),
            "saved" | "redundancy" | "fixable" => Ok(Objective::Saved),
            other => Err(format!(
                "unknown objective {other:?} (cycles|energy|loc|hw|saved)"
            )),
        }
    }

    /// Parses a comma-separated objective list, rejecting duplicates and
    /// empty lists.
    ///
    /// # Errors
    ///
    /// Returns a one-line message naming the offending entry.
    pub fn parse_list(s: &str) -> Result<Vec<Objective>, String> {
        let mut out = Vec::new();
        for part in s.split(',') {
            if part.trim().is_empty() {
                continue;
            }
            let objective = Objective::parse(part)?;
            if out.contains(&objective) {
                return Err(format!("duplicate objective {:?}", objective.name()));
            }
            out.push(objective);
        }
        if out.is_empty() {
            return Err("no objectives given (cycles|energy|loc|hw|saved)".to_owned());
        }
        Ok(out)
    }
}

impl std::fmt::Display for Objective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aliases_parse() {
        assert_eq!(Objective::parse("PERF"), Ok(Objective::Cycles));
        assert_eq!(Objective::parse("comm"), Ok(Objective::Energy));
        assert_eq!(Objective::parse("programmability"), Ok(Objective::Loc));
        assert_eq!(Objective::parse("hardware"), Ok(Objective::Hw));
        assert_eq!(Objective::parse("redundancy"), Ok(Objective::Saved));
        assert!(Objective::parse("speed").is_err());
    }

    #[test]
    fn list_parses_and_rejects_duplicates() {
        assert_eq!(
            Objective::parse_list("cycles,energy,loc,hw,saved"),
            Ok(Objective::ALL.to_vec())
        );
        assert_eq!(
            Objective::parse_list("perf, hw"),
            Ok(vec![Objective::Cycles, Objective::Hw])
        );
        assert!(Objective::parse_list("cycles,perf").is_err());
        assert!(Objective::parse_list("").is_err());
    }

    #[test]
    fn names_round_trip() {
        for o in Objective::ALL {
            assert_eq!(Objective::parse(o.name()), Ok(o));
        }
    }
}
