//! The search driver: a budgeted evaluate–update loop over the cached
//! sweep engine.
//!
//! Each round the strategy proposes a batch of candidates, the driver
//! expands them into sweep jobs and runs them through
//! [`hetmem_xplore::run_jobs`] (so the content-addressed cache serves warm
//! restarts for free), scores the records on the requested objectives, and
//! recomputes the Pareto frontier. The budget counts jobs *submitted* —
//! what a cold run would simulate — not cache misses, so a warm cache
//! changes wall-clock but never the trajectory: same seed + same spec ⇒
//! byte-identical [`SearchResult::to_json`].

use crate::objective::Objective;
use crate::space::SearchSpace;
use crate::strategy::{SearchState, Strategy};
use crate::{pareto_indices, Json};
use hetmem_core::experiment::ExperimentConfig;
use hetmem_core::report::TextTable;
use hetmem_core::{hardware_cost, programmer_burden};
use hetmem_dsl::kernel_overhead;
use hetmem_sim::{ExecMode, SimError};
use hetmem_xplore::{run_jobs, Job, JobDispatcher, SweepOptions, SweepRecord};
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// What to search: the space, the axes to minimize, the strategy, and the
/// reproducibility knobs.
#[derive(Clone, Debug, PartialEq)]
pub struct SearchConfig {
    /// The candidate space.
    pub space: SearchSpace,
    /// Objectives to minimize, in report order.
    pub objectives: Vec<Objective>,
    /// The black-box strategy proposing batches.
    pub strategy: Strategy,
    /// Maximum simulator jobs to submit (cold-run equivalents). Clamped
    /// up so at least one candidate is always evaluated.
    pub budget: usize,
    /// PRNG seed; the whole trajectory is a pure function of
    /// (seed, space, objectives, strategy, budget, mode).
    pub seed: u64,
    /// Execution mode for every candidate evaluation. Part of the config —
    /// not [`SearchOptions`] — because sampled scores steer the optimizer,
    /// so the mode is part of the trajectory's identity.
    pub mode: ExecMode,
}

/// Live progress handed to [`SearchOptions::on_round`] after every round.
#[derive(Clone, Debug)]
pub struct SearchProgress {
    /// Rounds completed so far.
    pub round: usize,
    /// Candidates evaluated so far.
    pub evaluations: usize,
    /// Jobs submitted so far.
    pub jobs_submitted: usize,
    /// Labels of the current frontier, in evaluation order.
    pub frontier: Vec<String>,
}

/// Per-round progress callback, invoked with the frontier-so-far.
pub type ProgressHook = Box<dyn FnMut(&SearchProgress) + Send>;

/// Execution knobs (nothing here may influence the trajectory).
#[derive(Default)]
pub struct SearchOptions {
    /// Worker threads per batch; `0` uses the host's parallelism.
    pub workers: usize,
    /// Sweep cache directory; `None` disables memoization.
    pub cache_dir: Option<PathBuf>,
    /// Cooperative cancellation (checked between jobs, like the sweep's).
    pub cancel: Option<Arc<AtomicBool>>,
    /// Called after every round with frontier-so-far progress.
    pub on_round: Option<ProgressHook>,
    /// Remote execution for each round's job batch (a cluster,
    /// typically); `None` runs every job locally. Execution placement
    /// never touches the trajectory: records land in ordinal order
    /// wherever they ran, so scores — and therefore the whole search —
    /// stay byte-stable.
    pub dispatcher: Option<Arc<dyn JobDispatcher>>,
}

impl SearchOptions {
    /// Options with `n` workers and no cache.
    #[must_use]
    pub fn with_workers(n: usize) -> SearchOptions {
        SearchOptions {
            workers: n,
            ..SearchOptions::default()
        }
    }
}

/// One evaluated candidate.
#[derive(Clone, Debug, PartialEq)]
pub struct CandidateEval {
    /// Index into the search space.
    pub candidate: usize,
    /// `target@scale` label.
    pub label: String,
    /// Target display name.
    pub target: String,
    /// Trace scale divisor.
    pub scale: u32,
    /// Objective values, aligned with [`SearchConfig::objectives`].
    pub values: Vec<f64>,
}

/// One round of the trajectory.
#[derive(Clone, Debug, PartialEq)]
pub struct RoundLog {
    /// Round ordinal, from zero.
    pub round: usize,
    /// Candidate indices evaluated this round, in proposal order.
    pub evaluated: Vec<usize>,
    /// Jobs this round submitted.
    pub jobs: usize,
    /// Candidate indices on the frontier after this round, in evaluation
    /// order.
    pub frontier: Vec<usize>,
}

/// Execution counters (deliberately excluded from [`SearchResult::to_json`]
/// — cache hits differ between cold and warm runs, and the JSON output is
/// pinned byte-identical).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Rounds run.
    pub rounds: usize,
    /// Candidates evaluated.
    pub evaluations: usize,
    /// Jobs submitted (cold-run equivalents) — the budget currency.
    pub jobs_submitted: usize,
    /// Jobs answered by the sweep cache.
    pub cache_hits: u64,
    /// Jobs actually simulated.
    pub live_executions: u64,
    /// The configured budget.
    pub budget: usize,
    /// Jobs an exhaustive sweep of the space would submit.
    pub exhaustive_jobs: usize,
}

impl std::fmt::Display for SearchStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} candidates in {} rounds, {} of {} exhaustive jobs submitted \
             ({} cache hits, {} live), budget {}",
            self.evaluations,
            self.rounds,
            self.jobs_submitted,
            self.exhaustive_jobs,
            self.cache_hits,
            self.live_executions,
            self.budget
        )
    }
}

/// A finished search.
#[derive(Debug)]
pub struct SearchResult {
    /// The configuration that produced it.
    pub config: SearchConfig,
    /// Every evaluated candidate, in evaluation order.
    pub evals: Vec<CandidateEval>,
    /// The per-round trajectory.
    pub trajectory: Vec<RoundLog>,
    /// Indices into [`SearchResult::evals`] on the final Pareto frontier,
    /// in evaluation order.
    pub frontier: Vec<usize>,
    /// Execution counters (never serialized into the deterministic JSON).
    pub stats: SearchStats,
}

/// Scores one candidate's sweep records on `objectives`. Records must be
/// the candidate's kernels in expansion order.
#[must_use]
pub fn score(
    space: &SearchSpace,
    candidate: usize,
    records: &[SweepRecord],
    objectives: &[Objective],
) -> Vec<f64> {
    let n = records.len().max(1) as f64;
    objectives
        .iter()
        .map(|&objective| match objective {
            Objective::Cycles => {
                // Geometric mean of total ticks, matching the core metric.
                let sum_ln: f64 = records
                    .iter()
                    .map(|r| (r.report.total_ticks() as f64).ln())
                    .sum();
                (sum_ln / n).exp()
            }
            Objective::Energy => {
                // Communication + DRAM bus traffic, straight from the
                // cached report — no re-simulation on warm restarts.
                let sum: u64 = records
                    .iter()
                    .map(|r| r.report.communication_ticks + r.report.hierarchy.dram.bus_busy_ticks)
                    .sum();
                sum as f64 / n
            }
            Objective::Loc => {
                let model = space.target(candidate).address_space();
                let sum: f64 = space
                    .kernels
                    .iter()
                    .map(|k| {
                        kernel_overhead(k.name(), model)
                            .map_or_else(|| programmer_burden(model), f64::from)
                    })
                    .sum();
                sum / space.kernels.len().max(1) as f64
            }
            Objective::Hw => f64::from(hardware_cost(&space.target(candidate).design_point())),
            Objective::Saved => {
                // Residual redundancy: communication lines the fix pass
                // can still prove removable from the canonical lowering.
                // Zero means the model's lowering is already minimal.
                let model = space.target(candidate).address_space();
                let sum: f64 = space
                    .kernels
                    .iter()
                    .map(|k| {
                        hetmem_dsl::programs::find(k.name()).map_or(0.0, |p| {
                            hetmem_dsl::fix(&p, model).lines_saved().max(0) as f64
                        })
                    })
                    .sum();
                sum / space.kernels.len().max(1) as f64
            }
        })
        .collect()
}

/// Runs a guided search to completion (budget exhausted or strategy done).
///
/// # Errors
///
/// Returns [`SimError`] when the cache directory cannot be opened, a
/// simulation fails, or the search is cancelled.
///
/// # Panics
///
/// Panics if the search space has no kernels or no candidates.
pub fn run_search(
    config: &SearchConfig,
    mut opts: SearchOptions,
) -> Result<SearchResult, SimError> {
    let space = &config.space;
    assert!(
        !space.is_empty() && !space.kernels.is_empty(),
        "search space must have candidates and kernels"
    );
    let cost = space.jobs_per_candidate();
    let sim_config = ExperimentConfig::paper();
    let mut optimizer = config.strategy.build(config.seed, space);

    let mut evaluated: Vec<Option<Vec<f64>>> = vec![None; space.len()];
    let mut evals: Vec<CandidateEval> = Vec::new();
    let mut trajectory: Vec<RoundLog> = Vec::new();
    let mut frontier_candidates: Vec<usize> = Vec::new();
    let mut stats = SearchStats {
        budget: config.budget,
        exhaustive_jobs: space.exhaustive_jobs(),
        ..SearchStats::default()
    };

    loop {
        let remaining = config.budget.saturating_sub(stats.jobs_submitted);
        let mut max_candidates = remaining / cost;
        if max_candidates == 0 {
            // Always evaluate at least one candidate, even under a budget
            // smaller than one evaluation — an empty search answers
            // nothing.
            if evals.is_empty() {
                max_candidates = 1;
            } else {
                break;
            }
        }
        let batch = {
            let state = SearchState {
                space,
                evaluated: &evaluated,
                frontier: &frontier_candidates,
            };
            optimizer.propose(&state, max_candidates)
        };
        let batch: Vec<usize> = batch
            .into_iter()
            .filter(|&c| evaluated[c].is_none())
            .take(max_candidates)
            .collect();
        if batch.is_empty() {
            break;
        }

        let mut jobs: Vec<Job> = Vec::with_capacity(batch.len() * cost);
        for &candidate in &batch {
            jobs.extend(space.jobs_for(candidate, jobs.len() as u64));
        }
        let sweep_opts = SweepOptions::builder()
            .workers(opts.workers)
            .cache_dir(opts.cache_dir.clone())
            .cancel(opts.cancel.clone())
            .mode(config.mode)
            .dispatcher(opts.dispatcher.clone())
            .build();
        let out = run_jobs(&jobs, &sim_config, &sweep_opts)?;
        stats.jobs_submitted += jobs.len();
        stats.cache_hits += out.stats.cache_hits;
        stats.live_executions += out.stats.cache_misses;

        for (i, &candidate) in batch.iter().enumerate() {
            let records = &out.records[i * cost..(i + 1) * cost];
            let values = score(space, candidate, records, &config.objectives);
            evaluated[candidate] = Some(values.clone());
            evals.push(CandidateEval {
                candidate,
                label: space.label(candidate),
                target: space.target(candidate).name().to_owned(),
                scale: space.scale(candidate),
                values,
            });
        }
        stats.evaluations = evals.len();

        let points: Vec<Vec<f64>> = evals.iter().map(|e| e.values.clone()).collect();
        let frontier_evals = pareto_indices(&points);
        frontier_candidates = frontier_evals.iter().map(|&i| evals[i].candidate).collect();
        trajectory.push(RoundLog {
            round: stats.rounds,
            evaluated: batch,
            jobs: jobs.len(),
            frontier: frontier_candidates.clone(),
        });
        stats.rounds += 1;

        if let Some(on_round) = opts.on_round.as_mut() {
            on_round(&SearchProgress {
                round: stats.rounds,
                evaluations: evals.len(),
                jobs_submitted: stats.jobs_submitted,
                frontier: frontier_candidates
                    .iter()
                    .map(|&c| space.label(c))
                    .collect(),
            });
        }
    }

    let points: Vec<Vec<f64>> = evals.iter().map(|e| e.values.clone()).collect();
    let frontier = pareto_indices(&points);
    Ok(SearchResult {
        config: config.clone(),
        evals,
        trajectory,
        frontier,
        stats,
    })
}

impl SearchResult {
    fn objective_obj(&self, values: &[f64]) -> Json {
        Json::Obj(
            self.config
                .objectives
                .iter()
                .zip(values)
                .map(|(o, &v)| (o.name().to_owned(), Json::Float(v)))
                .collect(),
        )
    }

    fn eval_obj(&self, eval: &CandidateEval) -> Json {
        Json::obj(vec![
            ("candidate", Json::Str(eval.label.clone())),
            ("target", Json::Str(eval.target.clone())),
            ("scale", Json::UInt(u64::from(eval.scale))),
            ("objectives", self.objective_obj(&eval.values)),
        ])
    }

    /// The deterministic report: same seed + same spec ⇒ byte-identical
    /// output, cold or warm cache. Execution counters live in
    /// [`SearchResult::stats`] and are deliberately absent here.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let space = &self.config.space;
        let mut search_pairs = vec![
            (
                "strategy",
                Json::Str(self.config.strategy.name().to_owned()),
            ),
            ("seed", Json::UInt(self.config.seed)),
            ("budget", Json::UInt(self.config.budget as u64)),
            (
                "objectives",
                Json::Arr(
                    self.config
                        .objectives
                        .iter()
                        .map(|o| Json::Str(o.name().to_owned()))
                        .collect(),
                ),
            ),
        ];
        // Accurate reports stay byte-identical to pre-mode reports.
        if self.config.mode != ExecMode::Accurate {
            search_pairs.push(("mode", Json::Str(self.config.mode.label())));
        }
        let search = Json::obj(search_pairs);
        let space_obj = Json::obj(vec![
            (
                "kernels",
                Json::Arr(
                    space
                        .kernels
                        .iter()
                        .map(|k| Json::Str(k.name().to_owned()))
                        .collect(),
                ),
            ),
            (
                "targets",
                Json::Arr(
                    space
                        .targets
                        .iter()
                        .map(|t| Json::Str(t.name().to_owned()))
                        .collect(),
                ),
            ),
            (
                "scales",
                Json::Arr(
                    space
                        .scales
                        .iter()
                        .map(|&s| Json::UInt(u64::from(s)))
                        .collect(),
                ),
            ),
            ("candidates", Json::UInt(space.len() as u64)),
            (
                "exhaustive_jobs",
                Json::UInt(space.exhaustive_jobs() as u64),
            ),
        ]);
        let trajectory = Json::Arr(
            self.trajectory
                .iter()
                .map(|r| {
                    Json::obj(vec![
                        ("round", Json::UInt(r.round as u64)),
                        (
                            "evaluated",
                            Json::Arr(
                                r.evaluated
                                    .iter()
                                    .map(|&c| Json::Str(space.label(c)))
                                    .collect(),
                            ),
                        ),
                        ("jobs", Json::UInt(r.jobs as u64)),
                        (
                            "frontier",
                            Json::Arr(
                                r.frontier
                                    .iter()
                                    .map(|&c| Json::Str(space.label(c)))
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        Json::obj(vec![
            ("search", search),
            ("space", space_obj),
            (
                "evaluations",
                Json::Arr(self.evals.iter().map(|e| self.eval_obj(e)).collect()),
            ),
            ("trajectory", trajectory),
            (
                "frontier",
                Json::Arr(
                    self.frontier
                        .iter()
                        .map(|&i| self.eval_obj(&self.evals[i]))
                        .collect(),
                ),
            ),
        ])
    }

    /// A human-readable table of every evaluated candidate with frontier
    /// markers.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut headers: Vec<&str> = vec!["candidate"];
        headers.extend(self.config.objectives.iter().map(|o| o.name()));
        headers.push("Pareto-optimal");
        let mut table = TextTable::new(&headers);
        for (i, eval) in self.evals.iter().enumerate() {
            let mut row = vec![eval.label.clone()];
            row.extend(eval.values.iter().map(|v| format!("{v:.1}")));
            row.push(
                if self.frontier.contains(&i) {
                    "yes"
                } else {
                    ""
                }
                .to_owned(),
            );
            table.row(row);
        }
        table.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(strategy: Strategy, budget: usize) -> SearchConfig {
        let mut space = SearchSpace::full(512);
        space.kernels.truncate(2);
        SearchConfig {
            space,
            objectives: Objective::ALL.to_vec(),
            strategy,
            budget,
            seed: 7,
            mode: ExecMode::Accurate,
        }
    }

    #[test]
    fn event_driven_search_matches_the_accurate_trajectory() {
        let accurate = tiny_config(Strategy::Halving, 8);
        let wheel = SearchConfig {
            mode: ExecMode::EventDriven,
            ..accurate.clone()
        };
        let a = run_search(&accurate, SearchOptions::with_workers(2)).expect("search");
        let w = run_search(&wheel, SearchOptions::with_workers(2)).expect("search");
        // Cycle-exact scores: identical evaluations and frontier; only the
        // rendered config differs (the mode tag).
        assert_eq!(a.evals, w.evals);
        assert_eq!(a.frontier, w.frontier);
        let rendered = w.to_json().render();
        assert!(rendered.contains("\"mode\":\"event-driven\""), "{rendered}");
        assert!(!a.to_json().render().contains("\"mode\""));
    }

    #[test]
    fn full_budget_evaluates_everything_once() {
        let config = tiny_config(Strategy::Random, usize::MAX);
        let result = run_search(&config, SearchOptions::with_workers(2)).expect("search");
        assert_eq!(result.evals.len(), config.space.len());
        assert_eq!(result.stats.jobs_submitted, config.space.exhaustive_jobs());
        let mut seen: Vec<usize> = result.evals.iter().map(|e| e.candidate).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), config.space.len(), "no candidate repeats");
    }

    #[test]
    fn budget_bounds_submitted_jobs() {
        let config = tiny_config(Strategy::Halving, 6);
        let result = run_search(&config, SearchOptions::with_workers(2)).expect("search");
        assert!(result.stats.jobs_submitted <= 6);
        assert_eq!(result.evals.len(), 3);
    }

    #[test]
    fn sub_evaluation_budget_still_answers() {
        let config = tiny_config(Strategy::Random, 1);
        let result = run_search(&config, SearchOptions::with_workers(1)).expect("search");
        assert_eq!(result.evals.len(), 1);
        assert_eq!(result.frontier, vec![0]);
    }

    #[test]
    fn json_is_reproducible_and_stats_free() {
        let config = tiny_config(Strategy::Evolve, 8);
        let a = run_search(&config, SearchOptions::with_workers(1)).expect("search");
        let b = run_search(&config, SearchOptions::with_workers(4)).expect("search");
        let ja = a.to_json().render();
        assert_eq!(ja, b.to_json().render(), "worker count must not matter");
        assert!(
            !ja.contains("cache_hits"),
            "stats must stay out of the JSON"
        );
        assert!(ja.contains("\"frontier\""));
    }

    #[test]
    fn table_marks_frontier_rows() {
        let config = tiny_config(Strategy::Random, usize::MAX);
        let result = run_search(&config, SearchOptions::with_workers(2)).expect("search");
        let table = result.render_table();
        assert!(table.contains("yes"), "{table}");
        assert!(table.contains("CPU+GPU@512"), "{table}");
    }

    #[test]
    fn progress_callback_sees_monotone_rounds() {
        let config = tiny_config(Strategy::Halving, usize::MAX);
        let seen = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = std::sync::Arc::clone(&seen);
        let opts = SearchOptions {
            workers: 2,
            on_round: Some(Box::new(move |p: &SearchProgress| {
                sink.lock().expect("lock").push((p.round, p.frontier.len()));
            })),
            ..SearchOptions::default()
        };
        let result = run_search(&config, opts).expect("search");
        let seen = seen.lock().expect("lock");
        assert_eq!(seen.len(), result.stats.rounds);
        for (i, &(round, frontier)) in seen.iter().enumerate() {
            assert_eq!(round, i + 1);
            assert!(frontier >= 1);
        }
    }
}
