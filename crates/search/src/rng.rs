//! A tiny deterministic PRNG (xorshift64*) — the same generator the
//! workspace's property tests use, promoted to a library type so every
//! search strategy draws from one seeded, reproducible stream.
//!
//! Determinism is the whole point: the search contract is "same seed +
//! same spec ⇒ byte-identical trajectory", so no `std::collections`
//! iteration order, host entropy, or time may leak into decisions.

/// Deterministic xorshift64* generator.
#[derive(Clone, Debug)]
pub struct SearchRng(u64);

impl SearchRng {
    /// A generator seeded with `seed`. Zero is remapped to a fixed odd
    /// constant (xorshift has a zero fixed point), so every seed works.
    #[must_use]
    pub fn new(seed: u64) -> SearchRng {
        SearchRng(if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        })
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A pseudo-random index in `0..n`. Modulo bias is irrelevant here —
    /// only determinism matters, and `n` is tiny (design-space axes).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_range(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_range needs a nonempty range");
        usize::try_from(self.next_u64() % n as u64).expect("index fits")
    }

    /// Fisher–Yates shuffle, deterministic for a given seed and length.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SearchRng::new(42);
        let mut b = SearchRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SearchRng::new(1);
        let mut b = SearchRng::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = SearchRng::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SearchRng::new(7);
        let mut v: Vec<usize> = (0..10).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
        // And deterministic.
        let mut r2 = SearchRng::new(7);
        let mut v2: Vec<usize> = (0..10).collect();
        r2.shuffle(&mut v2);
        assert_eq!(v, v2);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SearchRng::new(3);
        for _ in 0..1000 {
            assert!(r.gen_range(5) < 5);
        }
    }
}
