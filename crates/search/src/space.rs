//! The searchable design space: candidates over the sweep axes.
//!
//! A **candidate** is one (target, scale) pair; a **target** is either an
//! evaluated system (the Fig 5/6 case-study axis) or an address-space
//! option under idealized communication (the Fig 7 isolation axis) —
//! exactly the axes [`hetmem_xplore::SweepSpec`] expands. Evaluating a
//! candidate costs one simulator job per kernel, executed through the
//! cached sweep engine, so the search's unit of budget is the job.
//!
//! Candidate enumeration is scale-major then target, mirroring the sweep's
//! own expansion order, and is the deterministic index space every
//! optimizer works in.

use hetmem_core::metrics::design_point_of;
use hetmem_core::{
    AddressSpace, CoherenceOption, DesignPoint, EvaluatedSystem, LocalityControl, LocalityScheme,
};
use hetmem_sim::FabricKind;
use hetmem_trace::kernels::Kernel;
use hetmem_xplore::{Job, JobKind, SweepSpec};

/// One point on the target axis: a case-study system or an isolated
/// address space under the ideal fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Target {
    /// A Figure 5/6 evaluated system.
    System(EvaluatedSystem),
    /// A Figure 7 address-space option with idealized communication.
    Space(AddressSpace),
}

impl Target {
    /// The sweep's display name for this target (system name or space
    /// abbreviation — the same string [`Job::target_name`] reports).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Target::System(system) => system.name(),
            Target::Space(space) => space.abbrev(),
        }
    }

    /// The address space a programmer sees on this target — the axis the
    /// programmability (LoC) objective depends on.
    #[must_use]
    pub fn address_space(self) -> AddressSpace {
        match self {
            Target::System(system) => system.address_space(),
            Target::Space(space) => space,
        }
    }

    /// The [`JobKind`] a job on this target carries.
    #[must_use]
    pub fn job_kind(self) -> JobKind {
        match self {
            Target::System(system) => JobKind::CaseStudy { system },
            Target::Space(space) => JobKind::AddressSpace { space },
        }
    }

    /// The canonical design point scored by the hardware-cost objective.
    ///
    /// Systems use their published design point. Isolated spaces model
    /// what the Fig 7 experiment actually idealizes: the ideal fabric,
    /// implicit locality, and the cheapest *valid* coherence for the
    /// space (hardware for the shared illusions, software for ADSM's
    /// one-sided protocol, none for disjoint) — so the 40-point ideal
    /// fabric honestly prices "free communication" into the score.
    #[must_use]
    pub fn design_point(self) -> DesignPoint {
        match self {
            Target::System(system) => design_point_of(system),
            Target::Space(space) => {
                let coherence = match space {
                    AddressSpace::Unified | AddressSpace::PartiallyShared => {
                        CoherenceOption::Hardware
                    }
                    AddressSpace::Adsm => CoherenceOption::Software,
                    AddressSpace::Disjoint => CoherenceOption::None,
                };
                let locality = if space == AddressSpace::Disjoint {
                    LocalityScheme {
                        cpu_private: LocalityControl::Implicit,
                        gpu_private: LocalityControl::Explicit,
                        shared: None,
                    }
                } else {
                    LocalityScheme::all_implicit()
                };
                DesignPoint {
                    address_space: space,
                    fabric: FabricKind::Ideal,
                    locality,
                    coherence,
                }
            }
        }
    }
}

impl std::fmt::Display for Target {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The candidate space a search explores: kernels fixed per evaluation,
/// targets × scales enumerable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SearchSpace {
    /// Kernels every candidate is evaluated on (Table III order).
    pub kernels: Vec<Kernel>,
    /// The target axis, in sweep order (systems first, then spaces).
    pub targets: Vec<Target>,
    /// The scale axis.
    pub scales: Vec<u32>,
}

impl SearchSpace {
    /// The full paper grid at one scale: every kernel, all five systems
    /// plus all four isolated spaces.
    #[must_use]
    pub fn full(scale: u32) -> SearchSpace {
        SearchSpace::from_spec(&SweepSpec::full(scale))
    }

    /// The search view of a sweep spec: the spec's system and space lists
    /// concatenate (systems first) into the target axis.
    #[must_use]
    pub fn from_spec(spec: &SweepSpec) -> SearchSpace {
        let targets = spec
            .systems
            .iter()
            .copied()
            .map(Target::System)
            .chain(spec.spaces.iter().copied().map(Target::Space))
            .collect();
        SearchSpace {
            kernels: spec.kernels.clone(),
            targets,
            scales: spec.scales.clone(),
        }
    }

    /// Number of candidates (targets × scales).
    #[must_use]
    pub fn len(&self) -> usize {
        self.targets.len() * self.scales.len()
    }

    /// Whether the space has no candidates.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Simulator jobs one candidate evaluation costs.
    #[must_use]
    pub fn jobs_per_candidate(&self) -> usize {
        self.kernels.len()
    }

    /// Jobs an exhaustive sweep of the whole space would run — the
    /// baseline guided search is measured against.
    #[must_use]
    pub fn exhaustive_jobs(&self) -> usize {
        self.len() * self.jobs_per_candidate()
    }

    /// Decomposes a candidate index into (target index, scale index).
    /// Enumeration is scale-major then target, like the sweep expansion.
    ///
    /// # Panics
    ///
    /// Panics if `candidate` is out of range.
    #[must_use]
    pub fn coords(&self, candidate: usize) -> (usize, usize) {
        assert!(candidate < self.len(), "candidate {candidate} out of range");
        (
            candidate % self.targets.len(),
            candidate / self.targets.len(),
        )
    }

    /// The candidate index for (target index, scale index).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn index_of(&self, target: usize, scale: usize) -> usize {
        assert!(target < self.targets.len() && scale < self.scales.len());
        scale * self.targets.len() + target
    }

    /// The candidate's target.
    #[must_use]
    pub fn target(&self, candidate: usize) -> Target {
        self.targets[self.coords(candidate).0]
    }

    /// The candidate's scale.
    #[must_use]
    pub fn scale(&self, candidate: usize) -> u32 {
        self.scales[self.coords(candidate).1]
    }

    /// A short human label, `target@scale`.
    #[must_use]
    pub fn label(&self, candidate: usize) -> String {
        format!("{}@{}", self.target(candidate), self.scale(candidate))
    }

    /// The sweep jobs evaluating `candidate`, with ids starting at
    /// `first_id` (batch callers keep ids unique across one submission).
    #[must_use]
    pub fn jobs_for(&self, candidate: usize, first_id: u64) -> Vec<Job> {
        let target = self.target(candidate);
        let scale = self.scale(candidate);
        self.kernels
            .iter()
            .enumerate()
            .map(|(i, &kernel)| Job {
                id: first_id + i as u64,
                kernel,
                kind: target.job_kind(),
                scale,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetmem_core::hardware_cost;

    #[test]
    fn full_space_covers_the_paper_grid() {
        let space = SearchSpace::full(64);
        assert_eq!(space.len(), 9);
        assert_eq!(space.jobs_per_candidate(), 6);
        assert_eq!(space.exhaustive_jobs(), 54);
        assert_eq!(space.label(0), "CPU+GPU@64");
        assert_eq!(space.label(8), "ADSM@64");
    }

    #[test]
    fn coords_round_trip() {
        let mut space = SearchSpace::full(64);
        space.scales = vec![64, 32, 16];
        for c in 0..space.len() {
            let (t, s) = space.coords(c);
            assert_eq!(space.index_of(t, s), c);
        }
        // Scale-major: the second scale's first candidate follows all
        // targets of the first scale.
        assert_eq!(space.coords(space.targets.len()), (0, 1));
    }

    #[test]
    fn jobs_match_sweep_expansion_semantics() {
        let space = SearchSpace::full(32);
        let jobs = space.jobs_for(3, 10); // Fusion
        assert_eq!(jobs.len(), 6);
        assert_eq!(jobs[0].id, 10);
        assert_eq!(jobs[5].id, 15);
        for job in &jobs {
            assert_eq!(job.target_name(), "Fusion");
            assert_eq!(job.scale, 32);
        }
    }

    #[test]
    fn space_design_points_are_valid_and_priced() {
        for space in AddressSpace::ALL {
            let point = Target::Space(space).design_point();
            assert!(point.is_valid(), "{space:?}: {point:?}");
            // The ideal fabric's 40-point price puts every isolated
            // space above the PCI-E CUDA system.
            let cuda = Target::System(EvaluatedSystem::CpuGpuCuda).design_point();
            assert!(hardware_cost(&point) > hardware_cost(&cuda));
        }
    }

    #[test]
    fn cuda_has_the_unique_minimum_hardware_cost() {
        let space = SearchSpace::full(64);
        let costs: Vec<u32> = space
            .targets
            .iter()
            .map(|t| hardware_cost(&t.design_point()))
            .collect();
        let min = *costs.iter().min().expect("nonempty");
        let argmins: Vec<usize> = (0..costs.len()).filter(|&i| costs[i] == min).collect();
        assert_eq!(argmins, vec![0], "{costs:?}");
        assert_eq!(
            space.targets[0],
            Target::System(EvaluatedSystem::CpuGpuCuda)
        );
    }
}
