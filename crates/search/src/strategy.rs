//! Pluggable black-box search strategies.
//!
//! An [`Optimizer`] proposes the next batch of candidate indices from what
//! has been evaluated so far; the driver executes them through the cached
//! sweep engine and feeds results back. Strategies are pure functions of
//! (seed, space, evaluation history), so a search trajectory is
//! byte-reproducible — no wall-clock, thread order, or host entropy
//! reaches a decision.
//!
//! Three strategies ship:
//!
//! * **random** — the honesty baseline: a seeded shuffle of the candidate
//!   space, consumed in order.
//! * **halving** — successive halving over the scale axis as fidelity
//!   rungs: every target is screened at the cheapest (most-divided) scale,
//!   and only the least-dominated half advances to each costlier rung.
//!   With a single scale it degenerates to a deterministic front-to-back
//!   screen of the target axis.
//! * **evolve** — a seeded (μ+λ) mutation scheme: the current Pareto
//!   frontier breeds neighbours by ±1 steps along the target and scale
//!   axes, topped up with unexplored random candidates.

use crate::frontier::dominates;
use crate::rng::SearchRng;
use crate::space::SearchSpace;

/// Which search strategy to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Seeded random order — the baseline.
    Random,
    /// Successive halving over scale rungs.
    Halving,
    /// Seeded evolutionary mutation of the frontier.
    Evolve,
}

impl Strategy {
    /// Every strategy, in canonical order.
    pub const ALL: [Strategy; 3] = [Strategy::Random, Strategy::Halving, Strategy::Evolve];

    /// Canonical lower-case name (the CLI/JSON spelling).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Random => "random",
            Strategy::Halving => "halving",
            Strategy::Evolve => "evolve",
        }
    }

    /// Parses a strategy name or alias.
    ///
    /// # Errors
    ///
    /// Returns a one-line message listing valid names.
    pub fn parse(s: &str) -> Result<Strategy, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "random" | "rand" => Ok(Strategy::Random),
            "halving" | "sha" | "successive-halving" => Ok(Strategy::Halving),
            "evolve" | "evolutionary" | "mutate" => Ok(Strategy::Evolve),
            other => Err(format!(
                "unknown strategy {other:?} (random|halving|evolve)"
            )),
        }
    }

    /// Builds the optimizer implementing this strategy.
    #[must_use]
    pub fn build(self, seed: u64, space: &SearchSpace) -> Box<dyn Optimizer + Send> {
        match self {
            Strategy::Random => Box::new(RandomSearch::new(seed, space)),
            Strategy::Halving => Box::new(SuccessiveHalving::new(space)),
            Strategy::Evolve => Box::new(Evolutionary::new(seed, space)),
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What an optimizer sees between rounds.
pub struct SearchState<'a> {
    /// The candidate space.
    pub space: &'a SearchSpace,
    /// Per-candidate objective vectors; `None` = not yet evaluated.
    pub evaluated: &'a [Option<Vec<f64>>],
    /// Candidate indices currently on the Pareto frontier.
    pub frontier: &'a [usize],
}

impl SearchState<'_> {
    fn is_evaluated(&self, candidate: usize) -> bool {
        self.evaluated[candidate].is_some()
    }
}

/// A black-box search strategy: proposes the next batch of candidate
/// indices (at most `max`, none already evaluated). An empty proposal
/// ends the search.
pub trait Optimizer {
    /// The next candidates to evaluate, in priority order.
    fn propose(&mut self, state: &SearchState<'_>, max: usize) -> Vec<usize>;
}

/// Seeded random order over the whole candidate space.
struct RandomSearch {
    order: Vec<usize>,
    cursor: usize,
}

impl RandomSearch {
    fn new(seed: u64, space: &SearchSpace) -> RandomSearch {
        let mut order: Vec<usize> = (0..space.len()).collect();
        SearchRng::new(seed).shuffle(&mut order);
        RandomSearch { order, cursor: 0 }
    }
}

impl Optimizer for RandomSearch {
    fn propose(&mut self, state: &SearchState<'_>, max: usize) -> Vec<usize> {
        let mut batch = Vec::new();
        while batch.len() < max && self.cursor < self.order.len() {
            let candidate = self.order[self.cursor];
            self.cursor += 1;
            if !state.is_evaluated(candidate) {
                batch.push(candidate);
            }
        }
        batch
    }
}

/// Successive halving: scales ordered cheapest-first (a larger divisor
/// means a smaller trace) form fidelity rungs; each rung keeps the
/// least-dominated half of the targets that survived the previous rung.
struct SuccessiveHalving {
    /// Scale-axis indices, cheapest rung first.
    rungs: Vec<usize>,
    /// Position in `rungs` of the rung currently screening.
    rung: usize,
    /// Target-axis indices still alive, in deterministic order.
    alive: Vec<usize>,
    /// Candidates proposed for the current rung, awaiting results.
    pending: Vec<usize>,
}

impl SuccessiveHalving {
    fn new(space: &SearchSpace) -> SuccessiveHalving {
        let mut rungs: Vec<usize> = (0..space.scales.len()).collect();
        // Cheapest (largest divisor) first; stable tie-break on axis order.
        rungs.sort_by_key(|&i| std::cmp::Reverse(space.scales[i]));
        SuccessiveHalving {
            rungs,
            rung: 0,
            alive: (0..space.targets.len()).collect(),
            pending: Vec::new(),
        }
    }

    /// Ranks the rung cohort: ascending domination count, then
    /// lexicographic objective vector, then target index — a total,
    /// deterministic order.
    fn promote(&mut self, state: &SearchState<'_>) {
        let rung_scale = self.rungs[self.rung];
        let cohort: Vec<(usize, &Vec<f64>)> = self
            .alive
            .iter()
            .filter_map(|&t| {
                let candidate = state.space.index_of(t, rung_scale);
                state.evaluated[candidate].as_ref().map(|v| (t, v))
            })
            .collect();
        let mut ranked: Vec<(usize, usize, &Vec<f64>)> = cohort
            .iter()
            .map(|&(t, v)| {
                let dominated_by = cohort.iter().filter(|&&(_, o)| dominates(o, v)).count();
                (dominated_by, t, v)
            })
            .collect();
        ranked.sort_by(|a, b| {
            a.0.cmp(&b.0)
                .then_with(|| a.2.partial_cmp(b.2).unwrap_or(std::cmp::Ordering::Equal))
                .then_with(|| a.1.cmp(&b.1))
        });
        let keep = ranked.len().div_ceil(2);
        let mut survivors: Vec<usize> = ranked[..keep].iter().map(|&(_, t, _)| t).collect();
        survivors.sort_unstable(); // back to axis order for stable batches
        self.alive = survivors;
        self.rung += 1;
        self.pending.clear();
    }
}

impl Optimizer for SuccessiveHalving {
    fn propose(&mut self, state: &SearchState<'_>, max: usize) -> Vec<usize> {
        loop {
            if self.rung >= self.rungs.len() || self.alive.is_empty() {
                return Vec::new();
            }
            let rung_scale = self.rungs[self.rung];
            let wanted: Vec<usize> = self
                .alive
                .iter()
                .map(|&t| state.space.index_of(t, rung_scale))
                .filter(|&c| !state.is_evaluated(c))
                .collect();
            if wanted.is_empty() {
                // Rung fully screened (this round or by the cache of an
                // earlier search): promote and move on.
                self.promote(state);
                continue;
            }
            return wanted.into_iter().take(max).collect();
        }
    }
}

/// Seeded (μ+λ) evolutionary mutation over the (target, scale) grid.
struct Evolutionary {
    rng: SearchRng,
    /// Deterministic fallback order for exploration top-ups.
    explore: Vec<usize>,
    cursor: usize,
    seeded: bool,
}

impl Evolutionary {
    /// Initial population size (clamped to the space).
    const POPULATION: usize = 4;

    fn new(seed: u64, space: &SearchSpace) -> Evolutionary {
        let mut explore: Vec<usize> = (0..space.len()).collect();
        let mut rng = SearchRng::new(seed);
        rng.shuffle(&mut explore);
        Evolutionary {
            rng,
            explore,
            cursor: 0,
            seeded: false,
        }
    }

    /// One ±1 step along the target or scale axis, wrapping at the edges.
    fn mutate(&mut self, state: &SearchState<'_>, candidate: usize) -> usize {
        let space = state.space;
        let (mut t, mut s) = space.coords(candidate);
        let step_target = space.scales.len() == 1 || self.rng.gen_range(2) == 0;
        if step_target {
            let n = space.targets.len();
            t = if self.rng.gen_range(2) == 0 {
                (t + 1) % n
            } else {
                (t + n - 1) % n
            };
        } else {
            let n = space.scales.len();
            s = if self.rng.gen_range(2) == 0 {
                (s + 1) % n
            } else {
                (s + n - 1) % n
            };
        }
        space.index_of(t, s)
    }

    fn top_up(&mut self, state: &SearchState<'_>, batch: &mut Vec<usize>, max: usize) {
        while batch.len() < max && self.cursor < self.explore.len() {
            let candidate = self.explore[self.cursor];
            self.cursor += 1;
            if !state.is_evaluated(candidate) && !batch.contains(&candidate) {
                batch.push(candidate);
            }
        }
    }
}

impl Optimizer for Evolutionary {
    fn propose(&mut self, state: &SearchState<'_>, max: usize) -> Vec<usize> {
        let mut batch = Vec::new();
        if !self.seeded {
            self.seeded = true;
            let want = Self::POPULATION.min(state.space.len()).min(max.max(1));
            self.top_up(state, &mut batch, want);
            return batch;
        }
        // Breed from the frontier in its deterministic order; each parent
        // gets a few mutation attempts to find unexplored ground.
        for &parent in state.frontier {
            if batch.len() >= max {
                break;
            }
            for _ in 0..4 {
                let child = self.mutate(state, parent);
                if !state.is_evaluated(child) && !batch.contains(&child) {
                    batch.push(child);
                    break;
                }
            }
        }
        self.top_up(state, &mut batch, max);
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> SearchSpace {
        let mut s = SearchSpace::full(64);
        s.scales = vec![64, 16];
        s
    }

    fn state<'a>(
        space: &'a SearchSpace,
        evaluated: &'a [Option<Vec<f64>>],
        frontier: &'a [usize],
    ) -> SearchState<'a> {
        SearchState {
            space,
            evaluated,
            frontier,
        }
    }

    #[test]
    fn strategy_names_round_trip() {
        for s in Strategy::ALL {
            assert_eq!(Strategy::parse(s.name()), Ok(s));
        }
        assert_eq!(Strategy::parse("SHA"), Ok(Strategy::Halving));
        assert!(Strategy::parse("bayes").is_err());
    }

    #[test]
    fn random_covers_the_space_without_repeats() {
        let space = space();
        let evaluated = vec![None; space.len()];
        let mut opt = RandomSearch::new(9, &space);
        let mut seen = Vec::new();
        loop {
            let batch = opt.propose(&state(&space, &evaluated, &[]), 5);
            if batch.is_empty() {
                break;
            }
            seen.extend(batch);
        }
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), space.len());
    }

    #[test]
    fn halving_screens_cheapest_rung_first_then_halves() {
        let space = space(); // scales [64, 16]: 64 divides more = cheaper
        let mut evaluated: Vec<Option<Vec<f64>>> = vec![None; space.len()];
        let mut opt = SuccessiveHalving::new(&space);

        let first = opt.propose(&state(&space, &evaluated, &[]), usize::MAX);
        assert_eq!(first.len(), space.targets.len());
        for &c in &first {
            assert_eq!(space.scale(c), 64, "cheapest rung first");
        }
        // Give target i objective value i: lower index = better.
        for &c in &first {
            let (t, _) = space.coords(c);
            evaluated[c] = Some(vec![t as f64]);
        }
        let second = opt.propose(&state(&space, &evaluated, &[]), usize::MAX);
        assert_eq!(second.len(), space.targets.len().div_ceil(2));
        for &c in &second {
            assert_eq!(space.scale(c), 16, "promoted rung is costlier");
            let (t, _) = space.coords(c);
            assert!(t < space.targets.len().div_ceil(2), "best half promoted");
        }
    }

    #[test]
    fn evolve_seeds_then_mutates_near_the_frontier() {
        let space = space();
        let mut evaluated: Vec<Option<Vec<f64>>> = vec![None; space.len()];
        let mut opt = Evolutionary::new(3, &space);
        let seedlings = opt.propose(&state(&space, &evaluated, &[]), usize::MAX);
        assert_eq!(seedlings.len(), Evolutionary::POPULATION);
        for &c in &seedlings {
            evaluated[c] = Some(vec![c as f64]);
        }
        let frontier = [seedlings[0]];
        let next = opt.propose(&state(&space, &evaluated, &frontier), 3);
        assert!(!next.is_empty());
        for &c in &next {
            assert!(evaluated[c].is_none(), "never re-proposes evaluated points");
        }
    }

    #[test]
    fn proposals_are_deterministic_per_seed() {
        let space = space();
        let evaluated = vec![None; space.len()];
        for strategy in Strategy::ALL {
            let mut a = strategy.build(5, &space);
            let mut b = strategy.build(5, &space);
            assert_eq!(
                a.propose(&state(&space, &evaluated, &[]), 4),
                b.propose(&state(&space, &evaluated, &[]), 4),
                "{strategy}"
            );
        }
    }
}
