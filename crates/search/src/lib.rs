//! # hetmem-search
//!
//! Guided design-space optimization over the cached sweep core: instead of
//! exhaustively enumerating kernels × targets × scales, a seeded black-box
//! strategy spends a job budget where it matters and reports the exact
//! Pareto frontier of the evaluated candidates.
//!
//! * [`Objective`] — the four minimized axes: simulated cycles, a
//!   communication/DRAM-traffic energy proxy, the Table V programmability
//!   LoC metric (via the DSL lowering), and the abstract hardware-cost
//!   score.
//! * [`pareto_indices`] / [`dominates`] — exact frontier extraction with
//!   deterministic (input-order) dominance ordering; the single source of
//!   truth the examples and benches also call.
//! * [`Strategy`] — pluggable optimizers: seeded random baseline,
//!   successive halving over scale-fidelity rungs, and a seeded
//!   evolutionary mutation scheme.
//! * [`run_search`] — the budgeted driver executing batches through
//!   [`hetmem_xplore::run_jobs`], so the content-addressed cache makes
//!   warm restarts free; budget counts jobs *submitted*, so the
//!   trajectory — and the rendered JSON — is byte-identical for any cache
//!   state, worker count, or re-run with the same seed.
//!
//! ## Example
//!
//! ```
//! use hetmem_search::{run_search, Objective, SearchConfig, SearchOptions, SearchSpace, Strategy};
//!
//! let mut space = SearchSpace::full(512); // tiny traces for the example
//! space.kernels.truncate(1);
//! let config = SearchConfig {
//!     budget: space.exhaustive_jobs() / 4,
//!     space,
//!     objectives: Objective::ALL.to_vec(),
//!     strategy: Strategy::Halving,
//!     seed: 7,
//!     mode: hetmem_sim::ExecMode::Accurate,
//! };
//! let result = run_search(&config, SearchOptions::with_workers(2)).expect("search");
//! assert!(!result.frontier.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod driver;
mod frontier;
mod objective;
mod rng;
mod space;
mod strategy;

pub use driver::{
    run_search, score, CandidateEval, ProgressHook, RoundLog, SearchConfig, SearchOptions,
    SearchProgress, SearchResult, SearchStats,
};
pub use frontier::{dominates, evaluation_frontier, pareto_indices, system_frontier_table};
pub use hetmem_xplore::Json;
pub use objective::Objective;
pub use rng::SearchRng;
pub use space::{SearchSpace, Target};
pub use strategy::{Optimizer, SearchState, Strategy};
