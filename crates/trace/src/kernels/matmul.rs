//! Dense matrix multiplication: fully parallel, no communication during
//! computation.
//!
//! Each PU computes half of the output tiles; A is streamed row-major while
//! B is walked column-wise ([`AddressPattern::RowColumn`]). Table III: CPU
//! 8585229, GPU 8585228, serial 16384, 2 communications, initial transfer
//! 524288 B (two 256 KiB input matrices' halves).

use super::{layout, KernelParams};
use crate::builder::{AddressPattern, InstMix, TraceBuilder};
use crate::inst::{CommEvent, CommKind, TransferDirection};
use crate::phase::PhasedTrace;

/// Bytes of the GPU's share of A and B at full scale (Table III).
const INITIAL_BYTES: u64 = 524_288;
/// Bytes of the GPU's half of the result matrix C.
const RESULT_BYTES: u64 = 262_144;
/// Row length in bytes of the modelled 256×256 f32 matrices.
const ROW_BYTES: u64 = 1024;

pub(super) fn generate(params: &KernelParams) -> PhasedTrace {
    let (cpu_par, gpu_par) = params.partition(8_585_229, 8_585_228);
    let serial = params.count(16_384);
    let input = params.bytes(INITIAL_BYTES);
    let result = params.bytes(RESULT_BYTES);

    // Inner-product loop: two loads (a[i][k], b[k][j]), multiply-accumulate,
    // occasional store of c[i][j], loop-back branch.
    let cpu_mix = InstMix {
        loads: 2,
        int_ops: 1,
        fp_ops: 2,
        stores: 1,
        branches: 1,
        simd: false,
        access_bytes: 4,
        branch_taken_pct: 98,
    };
    let gpu_mix = InstMix {
        loads: 2,
        int_ops: 1,
        fp_ops: 3,
        stores: 1,
        branches: 1,
        simd: true,
        access_bytes: 32,
        branch_taken_pct: 99,
    };

    let mut b = TraceBuilder::new("matrix mul", 0x5EED_0002);
    b.communication([CommEvent {
        direction: TransferDirection::HostToDevice,
        bytes: input,
        kind: CommKind::InitialInput,
        addr: layout::CPU_BASE,
    }]);
    b.parallel(
        cpu_par,
        cpu_mix,
        AddressPattern::RowColumn {
            base: layout::CPU_BASE,
            len: input,
            row_bytes: ROW_BYTES,
            elem: 4,
        },
        gpu_par,
        gpu_mix,
        AddressPattern::RowColumn {
            base: layout::GPU_BASE,
            len: input,
            row_bytes: ROW_BYTES,
            elem: 32,
        },
    );
    b.communication([CommEvent {
        direction: TransferDirection::DeviceToHost,
        bytes: result,
        kind: CommKind::ResultReturn,
        addr: layout::GPU_BASE,
    }]);
    b.sequential(
        serial,
        InstMix::serial(),
        AddressPattern::Stream {
            base: layout::CPU_BASE,
            len: result.max(64),
            stride: 8,
        },
    );
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::Kernel;
    use crate::Phase;

    #[test]
    fn matches_paper_characteristics() {
        let t = generate(&KernelParams::full());
        assert_eq!(
            t.characteristics(),
            Kernel::MatrixMul.paper_characteristics()
        );
    }

    #[test]
    fn no_communication_between_parallel_segments() {
        // "fully parallel, no comm during computation": exactly one parallel
        // segment bracketed by the two transfers.
        let t = generate(&KernelParams::scaled(1024));
        let phases: Vec<_> = t.segments().iter().map(|s| s.phase()).collect();
        assert_eq!(
            phases,
            vec![
                Phase::Communication,
                Phase::Parallel,
                Phase::Communication,
                Phase::Sequential
            ]
        );
    }
}
