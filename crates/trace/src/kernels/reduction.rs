//! Tree reduction: `parallel → merge → sequential`.
//!
//! Each PU sums its half of the input with a streaming access pattern; the
//! GPU's partial result returns to the host, which finishes sequentially.
//! Table III: CPU 70006, GPU 70001, serial 99996, 2 communications, initial
//! transfer 320512 B.

use super::{layout, KernelParams};
use crate::builder::{AddressPattern, InstMix, TraceBuilder};
use crate::inst::{CommEvent, CommKind, TransferDirection};
use crate::phase::PhasedTrace;

/// Bytes of the GPU's input half at full scale (Table III).
const INITIAL_BYTES: u64 = 320_512;
/// Bytes of the GPU's partial-sum result returned to the host.
const RESULT_BYTES: u64 = 64;

pub(super) fn generate(params: &KernelParams) -> PhasedTrace {
    let (cpu_par, gpu_par) = params.partition(70_006, 70_001);
    let serial = params.count(99_996);
    let input = params.bytes(INITIAL_BYTES);

    // Reduction of 4-byte integers: two loads feed one add; the loop-back
    // branch is highly biased.
    let cpu_mix = InstMix {
        loads: 2,
        int_ops: 2,
        fp_ops: 0,
        stores: 0,
        branches: 1,
        simd: false,
        access_bytes: 4,
        branch_taken_pct: 95,
    };
    let gpu_mix = InstMix {
        loads: 2,
        int_ops: 1,
        fp_ops: 2, // SIMD partial sums
        stores: 0,
        branches: 1,
        simd: true,
        access_bytes: 32,
        branch_taken_pct: 97,
    };

    let mut b = TraceBuilder::new("reduction", 0x5EED_0001);
    b.communication([CommEvent {
        direction: TransferDirection::HostToDevice,
        bytes: input,
        kind: CommKind::InitialInput,
        addr: layout::CPU_BASE,
    }]);
    b.parallel(
        cpu_par,
        cpu_mix,
        AddressPattern::Stream {
            base: layout::CPU_BASE,
            len: input,
            stride: 4,
        },
        gpu_par,
        gpu_mix,
        AddressPattern::Stream {
            base: layout::GPU_BASE,
            len: input,
            stride: 32,
        },
    );
    b.communication([CommEvent {
        direction: TransferDirection::DeviceToHost,
        bytes: RESULT_BYTES,
        kind: CommKind::ResultReturn,
        addr: layout::GPU_BASE,
    }]);
    b.sequential(
        serial,
        InstMix::serial(),
        AddressPattern::Stream {
            base: layout::CPU_BASE,
            len: input,
            stride: 8,
        },
    );
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::Kernel;
    use crate::{InstClass, Phase, PuKind};

    #[test]
    fn matches_paper_characteristics() {
        let t = generate(&KernelParams::full());
        assert_eq!(
            t.characteristics(),
            Kernel::Reduction.paper_characteristics()
        );
    }

    #[test]
    fn shape_is_comm_par_comm_seq() {
        let t = generate(&KernelParams::scaled(16));
        let phases: Vec<_> = t.segments().iter().map(|s| s.phase()).collect();
        assert_eq!(
            phases,
            vec![
                Phase::Communication,
                Phase::Parallel,
                Phase::Communication,
                Phase::Sequential
            ]
        );
    }

    #[test]
    fn reduction_has_no_parallel_stores() {
        // A pure reduction never writes the input array.
        let t = generate(&KernelParams::scaled(16));
        let par = &t.segments()[1];
        assert_eq!(par.stream(PuKind::Cpu).class_count(InstClass::Store), 0);
        assert_eq!(par.stream(PuKind::Gpu).class_count(InstClass::Store), 0);
    }
}
