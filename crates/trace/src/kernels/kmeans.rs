//! K-means clustering: `(parallel → merge → sequential)` repeated for three
//! iterations, with the most communication events of any kernel.
//!
//! Per iteration each PU computes distances for its half of the points, the
//! GPU returns partial sums, the host updates centroids sequentially, and —
//! except after the final iteration — broadcasts the new centroids back to
//! the GPU. Communication events: 1 initial + 3 partial returns + 2
//! broadcasts = 6 (Table III). CPU 1847765, GPU 1844981, serial 36784,
//! initial transfer 136192 B.

use super::{layout, split, KernelParams};
use crate::builder::{AddressPattern, InstMix, TraceBuilder};
use crate::inst::{CommEvent, CommKind, TransferDirection};
use crate::phase::PhasedTrace;

/// Number of k-means iterations in the paper's run.
const ITERATIONS: usize = 3;
/// Bytes of the GPU's point set at full scale (Table III).
const INITIAL_BYTES: u64 = 136_192;
/// Bytes of per-iteration partial sums returned by the GPU.
const PARTIAL_BYTES: u64 = 4_096;
/// Bytes of the centroid broadcast sent back to the GPU.
const CENTROID_BYTES: u64 = 2_048;

pub(super) fn generate(params: &KernelParams) -> PhasedTrace {
    let (cpu_par, gpu_par) = params.partition(1_847_765, 1_844_981);
    let cpu_iters = split(cpu_par, ITERATIONS);
    let gpu_iters = split(gpu_par, ITERATIONS);
    let serial_iters = split(params.count(36_784), ITERATIONS);
    let input = params.bytes(INITIAL_BYTES);

    // Distance computation: point loads are clustered (irregular within the
    // assigned cluster's working set), FP-heavy.
    let cpu_mix = InstMix {
        loads: 2,
        int_ops: 1,
        fp_ops: 3,
        stores: 0,
        branches: 1,
        simd: false,
        access_bytes: 4,
        branch_taken_pct: 92,
    };
    let gpu_mix = InstMix {
        loads: 2,
        int_ops: 1,
        fp_ops: 4,
        stores: 0,
        branches: 1,
        simd: true,
        access_bytes: 32,
        branch_taken_pct: 95,
    };

    let mut b = TraceBuilder::new("k-mean", 0x5EED_0006);
    b.communication([CommEvent {
        direction: TransferDirection::HostToDevice,
        bytes: input,
        kind: CommKind::InitialInput,
        addr: layout::CPU_BASE,
    }]);
    for iter in 0..ITERATIONS {
        b.parallel(
            cpu_iters[iter],
            cpu_mix,
            AddressPattern::Irregular {
                base: layout::CPU_BASE,
                len: input,
                elem: 4,
                seed: 0xC1D0 + iter as u64,
            },
            gpu_iters[iter],
            gpu_mix,
            AddressPattern::Irregular {
                base: layout::GPU_BASE,
                len: input,
                elem: 4,
                seed: 0xD1E0 + iter as u64,
            },
        );
        // The GPU returns its partial cluster sums...
        let kind = if iter + 1 == ITERATIONS {
            CommKind::ResultReturn
        } else {
            CommKind::Intermediate
        };
        b.communication([CommEvent {
            direction: TransferDirection::DeviceToHost,
            bytes: params.bytes(PARTIAL_BYTES),
            kind,
            addr: layout::GPU_BASE,
        }]);
        // ...the host merges them and updates centroids sequentially...
        b.sequential(
            serial_iters[iter],
            InstMix::serial(),
            AddressPattern::Stream {
                base: layout::CPU_BASE,
                len: params.bytes(CENTROID_BYTES) * 2,
                stride: 8,
            },
        );
        // ...and broadcasts the new centroids unless this was the last pass.
        if iter + 1 != ITERATIONS {
            b.communication([CommEvent {
                direction: TransferDirection::HostToDevice,
                bytes: params.bytes(CENTROID_BYTES),
                kind: CommKind::Intermediate,
                addr: layout::CPU_BASE,
            }]);
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::Kernel;
    use crate::Phase;

    #[test]
    fn matches_paper_characteristics() {
        let t = generate(&KernelParams::full());
        assert_eq!(t.characteristics(), Kernel::KMeans.paper_characteristics());
    }

    #[test]
    fn has_six_communications_in_iterated_shape() {
        let t = generate(&KernelParams::scaled(32));
        assert_eq!(t.comm_count(), 6);
        let parallels = t
            .segments()
            .iter()
            .filter(|s| s.phase() == Phase::Parallel)
            .count();
        let sequentials = t
            .segments()
            .iter()
            .filter(|s| s.phase() == Phase::Sequential)
            .count();
        assert_eq!(parallels, ITERATIONS);
        assert_eq!(sequentials, ITERATIONS);
    }

    #[test]
    fn iteration_splits_sum_to_totals() {
        let t = generate(&KernelParams::full());
        let c = t.characteristics();
        assert_eq!(c.cpu_instructions, 1_847_765);
        assert_eq!(c.gpu_instructions, 1_844_981);
        assert_eq!(c.serial_instructions, 36_784);
    }
}
