//! Synthetic generators for the paper's six evaluation kernels.
//!
//! Each generator reproduces the kernel's Table III characteristics exactly
//! at scale 1: parallel-phase CPU/GPU instruction counts, serial instruction
//! count, number of communications, and initial transfer size. Address
//! streams follow each kernel's documented access pattern (streaming for
//! reduction, row/column for matrix multiply, sliding window for
//! convolution, butterfly for DCT, data-dependent for merge sort and
//! k-means) so the cache hierarchy sees plausible locality.
//!
//! The paper's methodology (§IV-B) divides the computational work evenly
//! between CPU and GPU, allocates input on the CPU, and transfers results
//! back after GPU kernels finish; the generators encode exactly that
//! structure as phase segments.

mod convolution;
mod dct;
mod kmeans;
mod matmul;
mod mergesort;
mod reduction;

use crate::characteristics::Characteristics;
use crate::phase::PhasedTrace;

/// Logical base addresses of the modelled data regions.
///
/// Parallel-phase CPU work touches the CPU region, GPU work the GPU region;
/// the shared region is used by design points that place data in a (partially)
/// shared space.
pub mod layout {
    use crate::inst::Addr;

    /// Base of the CPU-private data region.
    pub const CPU_BASE: Addr = 0x1000_0000;
    /// Base of the GPU-private data region.
    pub const GPU_BASE: Addr = 0x2000_0000;
    /// Base of the shared data region.
    pub const SHARED_BASE: Addr = 0x3000_0000;
}

/// The six kernels evaluated in the paper (Table III).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Kernel {
    /// Parallel → merge → sequential tree reduction.
    Reduction,
    /// Fully parallel dense matrix multiplication.
    MatrixMul,
    /// Parallel → merge → parallel separable convolution.
    Convolution,
    /// Fully parallel discrete cosine transform.
    Dct,
    /// Parallel → merge → sequential merge sort.
    MergeSort,
    /// Repeated parallel → merge → sequential k-means clustering.
    KMeans,
}

impl Kernel {
    /// All kernels, in the paper's Table III order.
    pub const ALL: [Kernel; 6] = [
        Kernel::Reduction,
        Kernel::MatrixMul,
        Kernel::Convolution,
        Kernel::Dct,
        Kernel::MergeSort,
        Kernel::KMeans,
    ];

    /// The kernel's name as used in the paper's tables and figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Reduction => "reduction",
            Kernel::MatrixMul => "matrix mul",
            Kernel::Convolution => "convolution",
            Kernel::Dct => "dct",
            Kernel::MergeSort => "merge sort",
            Kernel::KMeans => "k-mean",
        }
    }

    /// The compute pattern as described in Table III.
    #[must_use]
    pub fn compute_pattern(self) -> &'static str {
        match self {
            Kernel::Reduction => "parallel -> merge -> sequential",
            Kernel::MatrixMul => "fully parallel, no comm during computation",
            Kernel::Convolution => "parallel -> merge -> parallel",
            Kernel::Dct => "fully parallel, no comm. during computation",
            Kernel::MergeSort => "parallel -> merge -> sequential",
            Kernel::KMeans => "parallel -> merge -> sequential (repeated)",
        }
    }

    /// The characteristics the paper reports for this kernel in Table III.
    ///
    /// Note: the paper prints 262244 B for the dct initial transfer, almost
    /// certainly a typo for 262144 (= 256 KiB); we reproduce the printed
    /// value so that regenerated tables match the paper byte-for-byte.
    #[must_use]
    pub fn paper_characteristics(self) -> Characteristics {
        let (cpu, gpu, serial, comms, initial) = match self {
            Kernel::Reduction => (70_006, 70_001, 99_996, 2, 320_512),
            Kernel::MatrixMul => (8_585_229, 8_585_228, 16_384, 2, 524_288),
            Kernel::Convolution => (448_260, 448_259, 65_536, 3, 65_536),
            Kernel::Dct => (2_359_298, 2_359_298, 262_144, 2, 262_244),
            Kernel::MergeSort => (161_233, 157_233, 97_668, 2, 39_936),
            Kernel::KMeans => (1_847_765, 1_844_981, 36_784, 6, 136_192),
        };
        Characteristics {
            name: self.name().to_owned(),
            cpu_instructions: cpu,
            gpu_instructions: gpu,
            serial_instructions: serial,
            communications: comms,
            initial_transfer_bytes: initial,
        }
    }

    /// Generates the kernel's phase-structured trace.
    ///
    /// At [`KernelParams::full`] the trace's [`Characteristics`] equal
    /// [`Kernel::paper_characteristics`] exactly; larger scales divide the
    /// instruction counts and transfer sizes proportionally while keeping
    /// the phase structure and communication count intact.
    #[must_use]
    pub fn generate(self, params: &KernelParams) -> PhasedTrace {
        match self {
            Kernel::Reduction => reduction::generate(params),
            Kernel::MatrixMul => matmul::generate(params),
            Kernel::Convolution => convolution::generate(params),
            Kernel::Dct => dct::generate(params),
            Kernel::MergeSort => mergesort::generate(params),
            Kernel::KMeans => kmeans::generate(params),
        }
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing a kernel name fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseKernelError {
    input: String,
}

impl std::fmt::Display for ParseKernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown kernel name: {:?}", self.input)
    }
}

impl std::error::Error for ParseKernelError {}

impl std::str::FromStr for Kernel {
    type Err = ParseKernelError;

    /// Accepts the paper's names plus common aliases
    /// (`matmul`, `mergesort`, `kmeans`, …), case-insensitively.
    fn from_str(s: &str) -> Result<Kernel, ParseKernelError> {
        let k = s.to_ascii_lowercase().replace([' ', '-', '_'], "");
        match k.as_str() {
            "reduction" | "reduce" => Ok(Kernel::Reduction),
            "matrixmul" | "matmul" | "mm" => Ok(Kernel::MatrixMul),
            "convolution" | "conv" => Ok(Kernel::Convolution),
            "dct" => Ok(Kernel::Dct),
            "mergesort" | "msort" => Ok(Kernel::MergeSort),
            "kmean" | "kmeans" => Ok(Kernel::KMeans),
            _ => Err(ParseKernelError {
                input: s.to_owned(),
            }),
        }
    }
}

/// Generation parameters for kernel traces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelParams {
    /// Divides all instruction counts and transfer sizes. `1` reproduces the
    /// paper's full-size traces; larger values generate proportionally
    /// smaller traces for fast tests and micro-benchmarks.
    pub scale: u32,
    /// Optional work-partitioning override: the percentage of the parallel
    /// work assigned to the GPU (1–99). `None` keeps the paper's even
    /// division with its exact Table III instruction counts. The paper
    /// explicitly leaves optimal partitioning to Qilin-style systems
    /// (§IV-B); this knob enables that sweep as an extension.
    pub gpu_share_pct: Option<u32>,
}

impl KernelParams {
    /// Full-size generation (`scale == 1`), matching Table III exactly.
    #[must_use]
    pub fn full() -> KernelParams {
        KernelParams {
            scale: 1,
            gpu_share_pct: None,
        }
    }

    /// Down-scaled generation.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is zero.
    #[must_use]
    pub fn scaled(scale: u32) -> KernelParams {
        assert!(scale > 0, "scale must be non-zero");
        KernelParams {
            scale,
            gpu_share_pct: None,
        }
    }

    /// Sets the GPU's share of the parallel work.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= pct <= 99`.
    #[must_use]
    pub fn with_gpu_share(mut self, pct: u32) -> KernelParams {
        assert!(
            (1..=99).contains(&pct),
            "gpu share must be within 1..=99, got {pct}"
        );
        self.gpu_share_pct = Some(pct);
        self
    }

    /// Applies the scale to an instruction count (keeps at least one
    /// instruction so phase structure survives aggressive scaling).
    #[must_use]
    pub(crate) fn count(&self, full: usize) -> usize {
        (full / self.scale as usize).max(1)
    }

    /// Scales and partitions the parallel-phase instruction counts. With no
    /// partitioning override the paper's own per-PU counts are preserved
    /// exactly; with one, the combined work is re-divided.
    pub(crate) fn partition(&self, cpu_full: usize, gpu_full: usize) -> (usize, usize) {
        match self.gpu_share_pct {
            None => (self.count(cpu_full), self.count(gpu_full)),
            Some(pct) => {
                let total = self.count(cpu_full) + self.count(gpu_full);
                let gpu = (total * pct as usize / 100).max(1);
                (total.saturating_sub(gpu).max(1), gpu)
            }
        }
    }

    /// Applies the scale to a byte size (keeps at least one 64-byte line).
    #[must_use]
    pub(crate) fn bytes(&self, full: u64) -> u64 {
        (full / u64::from(self.scale)).max(64)
    }
}

impl Default for KernelParams {
    fn default() -> KernelParams {
        KernelParams::full()
    }
}

/// Splits `total` into `parts` near-equal pieces that sum exactly to `total`.
pub(crate) fn split(total: usize, parts: usize) -> Vec<usize> {
    assert!(parts > 0);
    let base = total / parts;
    let rem = total % parts;
    (0..parts).map(|i| base + usize::from(i < rem)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PuKind;

    #[test]
    fn all_kernels_match_table_iii_at_full_scale() {
        for k in Kernel::ALL {
            let trace = k.generate(&KernelParams::full());
            let got = trace.characteristics();
            let want = k.paper_characteristics();
            assert_eq!(got, want, "kernel {k}");
        }
    }

    #[test]
    fn all_traces_are_well_formed() {
        for k in Kernel::ALL {
            let trace = k.generate(&KernelParams::scaled(64));
            assert_eq!(trace.validate(), Ok(()), "kernel {k}");
        }
    }

    #[test]
    fn scaling_divides_instruction_counts() {
        for k in Kernel::ALL {
            let full = k.generate(&KernelParams::scaled(16));
            let half = k.generate(&KernelParams::scaled(32));
            let f = full.pu_len(PuKind::Cpu) + full.pu_len(PuKind::Gpu);
            let h = half.pu_len(PuKind::Cpu) + half.pu_len(PuKind::Gpu);
            // Halving the size should roughly halve the instruction count.
            assert!(
                h * 2 <= f + 16 && f <= h * 2 + f / 4,
                "kernel {k}: {f} vs {h}"
            );
        }
    }

    #[test]
    fn scaling_preserves_comm_count() {
        for k in Kernel::ALL {
            let want = k.paper_characteristics().communications;
            for s in [1u32, 8, 64, 1024] {
                // Full-scale generation is slow for matmul; skip scale 1 here
                // (covered by all_kernels_match_table_iii_at_full_scale).
                if s == 1 && k == Kernel::MatrixMul {
                    continue;
                }
                let got = k.generate(&KernelParams::scaled(s)).comm_count();
                assert_eq!(got, want, "kernel {k} scale {s}");
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for k in Kernel::ALL {
            let a = k.generate(&KernelParams::scaled(128));
            let b = k.generate(&KernelParams::scaled(128));
            assert_eq!(a, b, "kernel {k}");
        }
    }

    #[test]
    fn partitioning_moves_work_between_pus() {
        for k in Kernel::ALL {
            let base = KernelParams::scaled(64);
            let even = k.generate(&base).characteristics();
            let gpu_heavy = k.generate(&base.with_gpu_share(90)).characteristics();
            let cpu_heavy = k.generate(&base.with_gpu_share(10)).characteristics();
            let total = even.cpu_instructions + even.gpu_instructions;
            // Total parallel work is preserved (±rounding across loop splits).
            let gh_total = gpu_heavy.cpu_instructions + gpu_heavy.gpu_instructions;
            assert!(gh_total.abs_diff(total) <= 4, "{k}: {gh_total} vs {total}");
            assert!(
                gpu_heavy.gpu_instructions > 3 * gpu_heavy.cpu_instructions,
                "{k}"
            );
            assert!(
                cpu_heavy.cpu_instructions > 3 * cpu_heavy.gpu_instructions,
                "{k}"
            );
            // Phase structure and communication are unaffected.
            assert_eq!(gpu_heavy.communications, even.communications, "{k}");
        }
    }

    #[test]
    #[should_panic(expected = "gpu share must be within")]
    fn zero_gpu_share_rejected() {
        let _ = KernelParams::full().with_gpu_share(0);
    }

    #[test]
    fn kernel_names_round_trip_through_fromstr() {
        for k in Kernel::ALL {
            let parsed: Kernel = k.name().parse().expect("paper name parses");
            assert_eq!(parsed, k);
        }
        assert!("frobnicate".parse::<Kernel>().is_err());
    }

    #[test]
    fn split_sums_and_balances() {
        assert_eq!(split(10, 3), vec![4, 3, 3]);
        assert_eq!(split(9, 3), vec![3, 3, 3]);
        assert_eq!(split(0, 2), vec![0, 0]);
        for (t, p) in [(12345usize, 7usize), (1, 3), (100, 1)] {
            let v = split(t, p);
            assert_eq!(v.iter().sum::<usize>(), t);
            assert!(v.iter().max().unwrap() - v.iter().min().unwrap() <= 1);
        }
    }
}
