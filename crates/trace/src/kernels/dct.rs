//! Discrete cosine transform: fully parallel, butterfly access pattern.
//!
//! Table III: CPU 2359298, GPU 2359298, serial 262144, 2 communications,
//! initial transfer 262244 B (as printed in the paper; almost certainly a
//! typo for 262144 — we reproduce the printed value).

use super::{layout, KernelParams};
use crate::builder::{AddressPattern, InstMix, TraceBuilder};
use crate::inst::{CommEvent, CommKind, TransferDirection};
use crate::phase::PhasedTrace;

/// Bytes of the GPU's input half at full scale (Table III, as printed).
const INITIAL_BYTES: u64 = 262_244;
/// Bytes of the GPU's transformed half returned to the host.
const RESULT_BYTES: u64 = 131_072;
/// log2 of the butterfly span in elements (256 Ki f32 / 4 = 64 Ki elements).
const LOG2_N: u32 = 16;

pub(super) fn generate(params: &KernelParams) -> PhasedTrace {
    let (cpu_par, gpu_par) = params.partition(2_359_298, 2_359_298);
    let serial = params.count(262_144);
    let input = params.bytes(INITIAL_BYTES);
    // Butterfly spans shrink with the scale so addresses stay in the region.
    let log2_n = LOG2_N.saturating_sub(params.scale.ilog2().min(LOG2_N - 4));

    // FP-heavy butterfly: two loads, four FP ops (twiddle multiply-add),
    // two stores.
    let cpu_mix = InstMix {
        loads: 2,
        int_ops: 1,
        fp_ops: 4,
        stores: 2,
        branches: 1,
        simd: false,
        access_bytes: 4,
        branch_taken_pct: 96,
    };
    let gpu_mix = InstMix {
        loads: 2,
        int_ops: 1,
        fp_ops: 4,
        stores: 2,
        branches: 1,
        simd: true,
        access_bytes: 32,
        branch_taken_pct: 98,
    };

    let mut b = TraceBuilder::new("dct", 0x5EED_0004);
    b.communication([CommEvent {
        direction: TransferDirection::HostToDevice,
        bytes: input,
        kind: CommKind::InitialInput,
        addr: layout::CPU_BASE,
    }]);
    b.parallel(
        cpu_par,
        cpu_mix,
        AddressPattern::Butterfly {
            base: layout::CPU_BASE,
            log2_n,
            elem: 4,
        },
        gpu_par,
        gpu_mix,
        AddressPattern::Butterfly {
            base: layout::GPU_BASE,
            log2_n,
            elem: 4,
        },
    );
    b.communication([CommEvent {
        direction: TransferDirection::DeviceToHost,
        bytes: params.bytes(RESULT_BYTES),
        kind: CommKind::ResultReturn,
        addr: layout::GPU_BASE,
    }]);
    b.sequential(
        serial,
        InstMix::serial(),
        AddressPattern::Stream {
            base: layout::CPU_BASE,
            len: input,
            stride: 8,
        },
    );
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::Kernel;

    #[test]
    fn matches_paper_characteristics() {
        let t = generate(&KernelParams::full());
        assert_eq!(t.characteristics(), Kernel::Dct.paper_characteristics());
    }

    #[test]
    fn cpu_and_gpu_do_equal_work() {
        // The paper's dct splits exactly evenly.
        let t = generate(&KernelParams::scaled(8));
        let c = t.characteristics();
        assert_eq!(c.cpu_instructions, c.gpu_instructions);
    }
}
