//! Merge sort: `parallel → merge → sequential`, with data-dependent
//! branching and irregular accesses during merges.
//!
//! Table III: CPU 161233, GPU 157233, serial 97668, 2 communications,
//! initial transfer 39936 B.

use super::{layout, KernelParams};
use crate::builder::{AddressPattern, InstMix, TraceBuilder};
use crate::inst::{CommEvent, CommKind, TransferDirection};
use crate::phase::PhasedTrace;

/// Bytes of the GPU's input half at full scale (Table III).
const INITIAL_BYTES: u64 = 39_936;
/// Bytes of the GPU's sorted half returned to the host.
const RESULT_BYTES: u64 = 39_936;

pub(super) fn generate(params: &KernelParams) -> PhasedTrace {
    let (cpu_par, gpu_par) = params.partition(161_233, 157_233);
    let serial = params.count(97_668);
    let input = params.bytes(INITIAL_BYTES);

    // Compare-and-move loops: branches are data-dependent (~55 % taken), so
    // the CPU's gshare predictor suffers and the GPU serializes on them.
    let cpu_mix = InstMix {
        loads: 2,
        int_ops: 2,
        fp_ops: 0,
        stores: 1,
        branches: 2,
        simd: false,
        access_bytes: 4,
        branch_taken_pct: 55,
    };
    let gpu_mix = InstMix {
        loads: 2,
        int_ops: 3,
        fp_ops: 0,
        stores: 1,
        branches: 2,
        simd: true,
        access_bytes: 32,
        branch_taken_pct: 55,
    };
    // The final sequential merge streams two sorted runs but writes with
    // data-dependent interleaving.
    let serial_mix = InstMix {
        loads: 2,
        int_ops: 2,
        fp_ops: 0,
        stores: 1,
        branches: 2,
        simd: false,
        access_bytes: 4,
        branch_taken_pct: 55,
    };

    let mut b = TraceBuilder::new("merge sort", 0x5EED_0005);
    b.communication([CommEvent {
        direction: TransferDirection::HostToDevice,
        bytes: input,
        kind: CommKind::InitialInput,
        addr: layout::CPU_BASE,
    }]);
    b.parallel(
        cpu_par,
        cpu_mix,
        AddressPattern::Irregular {
            base: layout::CPU_BASE,
            len: input,
            elem: 4,
            seed: 0xA11CE,
        },
        gpu_par,
        gpu_mix,
        AddressPattern::Irregular {
            base: layout::GPU_BASE,
            len: input,
            elem: 4,
            seed: 0xB0B,
        },
    );
    b.communication([CommEvent {
        direction: TransferDirection::DeviceToHost,
        bytes: params.bytes(RESULT_BYTES),
        kind: CommKind::ResultReturn,
        addr: layout::GPU_BASE,
    }]);
    b.sequential(
        serial,
        serial_mix,
        AddressPattern::Stream {
            base: layout::CPU_BASE,
            len: input * 2,
            stride: 4,
        },
    );
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::Kernel;
    use crate::{Inst, PuKind};

    #[test]
    fn matches_paper_characteristics() {
        let t = generate(&KernelParams::full());
        assert_eq!(
            t.characteristics(),
            Kernel::MergeSort.paper_characteristics()
        );
    }

    #[test]
    fn branches_are_data_dependent() {
        // Roughly half the branches should be taken — far from the >90 %
        // bias of the loop-dominated kernels.
        let t = generate(&KernelParams::scaled(4));
        let (mut taken, mut total) = (0usize, 0usize);
        for i in t.pu_insts(PuKind::Cpu) {
            if let Inst::Branch { taken: tk } = i {
                total += 1;
                taken += usize::from(*tk);
            }
        }
        assert!(total > 100);
        let pct = taken * 100 / total;
        assert!((45..=65).contains(&pct), "taken {pct}%");
    }
}
