//! Separable convolution: `parallel → merge → parallel`.
//!
//! The row pass runs in parallel on both PUs, a host-side merge exchanges
//! the halo/intermediate data, then the column pass runs in parallel again.
//! Table III: CPU 448260, GPU 448259, serial 65536, 3 communications,
//! initial transfer 65536 B.

use super::{layout, split, KernelParams};
use crate::builder::{AddressPattern, InstMix, TraceBuilder};
use crate::inst::{CommEvent, CommKind, TransferDirection};
use crate::phase::PhasedTrace;

/// Bytes of the GPU's input half at full scale (Table III).
const INITIAL_BYTES: u64 = 65_536;
/// Bytes exchanged at the mid-computation merge (halo rows).
const EXCHANGE_BYTES: u64 = 32_768;
/// Bytes of the GPU's result half returned to the host.
const RESULT_BYTES: u64 = 32_768;
/// Convolution window width in elements.
const WINDOW: u64 = 5;

pub(super) fn generate(params: &KernelParams) -> PhasedTrace {
    let (cpu_par, gpu_par) = params.partition(448_260, 448_259);
    let cpu_halves = split(cpu_par, 2);
    let gpu_halves = split(gpu_par, 2);
    let serial = params.count(65_536);
    let input = params.bytes(INITIAL_BYTES);

    // 5-tap window: reads dominate, one store per output element.
    let cpu_mix = InstMix {
        loads: 3,
        int_ops: 1,
        fp_ops: 2,
        stores: 1,
        branches: 1,
        simd: false,
        access_bytes: 4,
        branch_taken_pct: 95,
    };
    let gpu_mix = InstMix {
        loads: 3,
        int_ops: 1,
        fp_ops: 3,
        stores: 1,
        branches: 1,
        simd: true,
        access_bytes: 32,
        branch_taken_pct: 97,
    };
    let cpu_pat = AddressPattern::Window {
        base: layout::CPU_BASE,
        len: input,
        width: WINDOW,
        elem: 4,
    };
    let gpu_pat = AddressPattern::Window {
        base: layout::GPU_BASE,
        len: input,
        width: WINDOW,
        elem: 32,
    };

    let mut b = TraceBuilder::new("convolution", 0x5EED_0003);
    b.communication([CommEvent {
        direction: TransferDirection::HostToDevice,
        bytes: input,
        kind: CommKind::InitialInput,
        addr: layout::CPU_BASE,
    }]);
    // Row pass.
    b.parallel(
        cpu_halves[0],
        cpu_mix,
        cpu_pat.clone(),
        gpu_halves[0],
        gpu_mix,
        gpu_pat.clone(),
    );
    // Mid-computation halo exchange.
    b.communication([CommEvent {
        direction: TransferDirection::DeviceToHost,
        bytes: params.bytes(EXCHANGE_BYTES),
        kind: CommKind::Intermediate,
        addr: layout::GPU_BASE,
    }]);
    // Host-side merge of the intermediate image.
    b.sequential(
        serial,
        InstMix::serial(),
        AddressPattern::Stream {
            base: layout::CPU_BASE,
            len: input,
            stride: 8,
        },
    );
    // Column pass.
    b.parallel(
        cpu_halves[1],
        cpu_mix,
        cpu_pat,
        gpu_halves[1],
        gpu_mix,
        gpu_pat,
    );
    b.communication([CommEvent {
        direction: TransferDirection::DeviceToHost,
        bytes: params.bytes(RESULT_BYTES),
        kind: CommKind::ResultReturn,
        addr: layout::GPU_BASE,
    }]);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::Kernel;
    use crate::Phase;

    #[test]
    fn matches_paper_characteristics() {
        let t = generate(&KernelParams::full());
        assert_eq!(
            t.characteristics(),
            Kernel::Convolution.paper_characteristics()
        );
    }

    #[test]
    fn shape_has_two_parallel_passes_and_three_comms() {
        let t = generate(&KernelParams::scaled(64));
        let phases: Vec<_> = t.segments().iter().map(|s| s.phase()).collect();
        assert_eq!(
            phases,
            vec![
                Phase::Communication,
                Phase::Parallel,
                Phase::Communication,
                Phase::Sequential,
                Phase::Parallel,
                Phase::Communication,
            ]
        );
        assert_eq!(t.comm_count(), 3);
    }
}
