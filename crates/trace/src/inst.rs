//! The architecture-neutral instruction representation.
//!
//! Instructions are deliberately compact (the full-size matrix-multiply trace
//! holds ~17 M of them) and carry only what the cycle-level simulator needs:
//! an operation class, memory addresses for loads/stores, and semantic
//! payloads for the communication / programming-model operations whose cost
//! depends on the memory-model design point under evaluation.

/// A virtual memory address in the modelled system.
pub type Addr = u64;

/// Which level of the cache hierarchy an explicit `push` targets.
///
/// The paper's locality-management discussion (§II-B) uses `push` statements
/// that place data into a chosen level of the storage hierarchy (Figure 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CacheLevel {
    /// The PU's private first-level cache (`CPU.P` / `GPU.P` in the paper).
    PrivateL1,
    /// The PU-private second-level cache (CPU only in the baseline).
    PrivateL2,
    /// The shared second-level/last-level cache (`S` in the paper).
    SharedLlc,
    /// The GPU's software-managed scratchpad (16 KB in the baseline).
    Scratchpad,
}

impl std::fmt::Display for CacheLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheLevel::PrivateL1 => f.write_str("private-L1"),
            CacheLevel::PrivateL2 => f.write_str("private-L2"),
            CacheLevel::SharedLlc => f.write_str("shared-LLC"),
            CacheLevel::Scratchpad => f.write_str("scratchpad"),
        }
    }
}

/// Which logical memory space an allocation or access belongs to.
///
/// Address-space *kinds* (unified / disjoint / partially shared / ADSM) are a
/// property of the design point (see `hetmem-core`); a trace only records
/// which logical region a datum was placed in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemSpace {
    /// CPU-private memory.
    CpuPrivate,
    /// GPU-private memory.
    GpuPrivate,
    /// The (partially) shared region visible to both PUs.
    Shared,
}

impl std::fmt::Display for MemSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemSpace::CpuPrivate => f.write_str("cpu-private"),
            MemSpace::GpuPrivate => f.write_str("gpu-private"),
            MemSpace::Shared => f.write_str("shared"),
        }
    }
}

/// Direction of a bulk data transfer between the two PUs' memories.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TransferDirection {
    /// Host (CPU) memory to device (GPU) memory.
    HostToDevice,
    /// Device (GPU) memory to host (CPU) memory.
    DeviceToHost,
}

impl TransferDirection {
    /// The opposite direction.
    #[must_use]
    pub fn reverse(self) -> TransferDirection {
        match self {
            TransferDirection::HostToDevice => TransferDirection::DeviceToHost,
            TransferDirection::DeviceToHost => TransferDirection::HostToDevice,
        }
    }
}

impl std::fmt::Display for TransferDirection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransferDirection::HostToDevice => f.write_str("H2D"),
            TransferDirection::DeviceToHost => f.write_str("D2H"),
        }
    }
}

/// Why a communication event exists in the benchmark's structure.
///
/// Table III reports the *number of communications* per kernel; the kind lets
/// design points treat them differently (e.g. ADSM does not need the final
/// result transfer, GMAC overlaps input transfers asynchronously).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CommKind {
    /// The initial distribution of input data to the accelerator.
    InitialInput,
    /// Returning results from the accelerator to the host.
    ResultReturn,
    /// An intermediate exchange during computation (e.g. between the two
    /// convolution passes, or k-means centroid broadcasts).
    Intermediate,
}

impl std::fmt::Display for CommKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommKind::InitialInput => f.write_str("initial-input"),
            CommKind::ResultReturn => f.write_str("result-return"),
            CommKind::Intermediate => f.write_str("intermediate"),
        }
    }
}

/// A semantic communication event between the two PUs.
///
/// A `CommEvent` says *what* the benchmark needs moved, not *how*; the design
/// point under evaluation (PCI-E memcpy, PCI-aperture transfer, memory
/// controller copy, shared cache…) decides the mechanism and therefore the
/// cost. This is what lets one kernel trace be replayed under every memory
/// model, exactly as the paper varies its special-instruction latencies
/// (Table IV).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CommEvent {
    /// Direction of the transfer.
    pub direction: TransferDirection,
    /// Number of bytes moved.
    pub bytes: u64,
    /// Role of this transfer in the benchmark structure.
    pub kind: CommKind,
    /// Base source address of the data being moved.
    pub addr: Addr,
}

/// Programming-model operations inserted by a memory model's lowering pass.
///
/// These correspond to the paper's special instructions (Table IV): ownership
/// acquire/release (`api-acq`), shared-space data transfers (`api-tr`), page
/// faults on first touch of shared pages (`lib-pf`), and the explicit
/// locality `push` of §II-B. Their latency is assigned by the simulator
/// according to the active design point.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpecialOp {
    /// Acquire ownership of a shared-space object (LRB model, `api-acq`).
    Acquire {
        /// Base address of the owned object.
        addr: Addr,
        /// Size of the owned object in bytes.
        bytes: u64,
    },
    /// Release ownership of a shared-space object (LRB model, `api-acq`).
    Release {
        /// Base address of the owned object.
        addr: Addr,
        /// Size of the owned object in bytes.
        bytes: u64,
    },
    /// A page fault taken on first access to a shared page (`lib-pf`).
    PageFault {
        /// Faulting address.
        addr: Addr,
    },
    /// Explicitly place data into a level of the cache hierarchy (`push`).
    Push {
        /// Target level.
        level: CacheLevel,
        /// Base address of the pushed region.
        addr: Addr,
        /// Size of the pushed region in bytes.
        bytes: u64,
    },
    /// Launch a kernel on the peer PU.
    KernelLaunch,
    /// Synchronize with the peer PU (kernel-completion wait / barrier).
    Sync,
    /// Allocate a region in a logical memory space
    /// (`malloc` / `sharedmalloc` / `adsmAlloc` in the paper's examples).
    Alloc {
        /// Logical memory space the region is placed in.
        space: MemSpace,
        /// Base address chosen for the region.
        addr: Addr,
        /// Region size in bytes.
        bytes: u64,
    },
    /// Free a previously allocated region.
    Free {
        /// Base address of the region.
        addr: Addr,
    },
}

/// A single dynamic instruction in a trace.
///
/// The compute variants model the instruction mix coarsely (integer, floating
/// point, SIMD, branch); loads and stores carry virtual addresses so the
/// cache hierarchy and MMU can be exercised; [`Inst::Comm`] and
/// [`Inst::Special`] carry the semantic operations whose cost depends on the
/// memory-model design point.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Inst {
    /// Integer ALU operation (1-cycle class).
    IntAlu,
    /// Integer multiply (3-cycle class).
    Mul,
    /// Scalar floating-point operation (4-cycle class).
    FpAlu,
    /// SIMD operation across `lanes` lanes (GPU: 8-wide).
    SimdAlu {
        /// Number of active SIMD lanes.
        lanes: u8,
    },
    /// Memory load.
    Load {
        /// Virtual address accessed.
        addr: Addr,
        /// Access size in bytes.
        bytes: u8,
    },
    /// Memory store.
    Store {
        /// Virtual address accessed.
        addr: Addr,
        /// Access size in bytes.
        bytes: u8,
    },
    /// Conditional branch.
    Branch {
        /// Whether the branch was taken in this dynamic instance.
        taken: bool,
    },
    /// Semantic inter-PU communication event.
    Comm(CommEvent),
    /// Programming-model special operation.
    Special(SpecialOp),
}

/// Coarse classification of instructions, used by statistics and the cores'
/// issue logic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InstClass {
    /// Integer / multiply ALU work.
    IntOp,
    /// Scalar or SIMD floating-point work.
    FpOp,
    /// Load from memory.
    Load,
    /// Store to memory.
    Store,
    /// Conditional branch.
    Branch,
    /// Inter-PU communication event.
    Comm,
    /// Programming-model special operation.
    Special,
}

impl Inst {
    /// Coarse class of this instruction.
    #[must_use]
    pub fn class(&self) -> InstClass {
        match self {
            Inst::IntAlu | Inst::Mul => InstClass::IntOp,
            Inst::FpAlu | Inst::SimdAlu { .. } => InstClass::FpOp,
            Inst::Load { .. } => InstClass::Load,
            Inst::Store { .. } => InstClass::Store,
            Inst::Branch { .. } => InstClass::Branch,
            Inst::Comm(_) => InstClass::Comm,
            Inst::Special(_) => InstClass::Special,
        }
    }

    /// The memory address touched by this instruction, if it is a load or a
    /// store.
    #[must_use]
    pub fn mem_addr(&self) -> Option<Addr> {
        match self {
            Inst::Load { addr, .. } | Inst::Store { addr, .. } => Some(*addr),
            _ => None,
        }
    }

    /// Whether this instruction accesses memory through the cache hierarchy.
    #[must_use]
    pub fn is_mem(&self) -> bool {
        matches!(self, Inst::Load { .. } | Inst::Store { .. })
    }

    /// Whether this is a conditional branch.
    #[must_use]
    pub fn is_branch(&self) -> bool {
        matches!(self, Inst::Branch { .. })
    }

    /// The communication event carried by this instruction, if any.
    #[must_use]
    pub fn comm_event(&self) -> Option<&CommEvent> {
        match self {
            Inst::Comm(ev) => Some(ev),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inst_is_compact() {
        // The full matrix-multiply trace materializes ~17M instructions; keep
        // the representation within 32 bytes so that stays in the hundreds of
        // megabytes, not gigabytes.
        assert!(
            std::mem::size_of::<Inst>() <= 32,
            "{}",
            std::mem::size_of::<Inst>()
        );
    }

    #[test]
    fn class_covers_all_variants() {
        assert_eq!(Inst::IntAlu.class(), InstClass::IntOp);
        assert_eq!(Inst::Mul.class(), InstClass::IntOp);
        assert_eq!(Inst::FpAlu.class(), InstClass::FpOp);
        assert_eq!(Inst::SimdAlu { lanes: 8 }.class(), InstClass::FpOp);
        assert_eq!(Inst::Load { addr: 0, bytes: 4 }.class(), InstClass::Load);
        assert_eq!(Inst::Store { addr: 0, bytes: 4 }.class(), InstClass::Store);
        assert_eq!(Inst::Branch { taken: true }.class(), InstClass::Branch);
        let ev = CommEvent {
            direction: TransferDirection::HostToDevice,
            bytes: 64,
            kind: CommKind::InitialInput,
            addr: 0,
        };
        assert_eq!(Inst::Comm(ev).class(), InstClass::Comm);
        assert_eq!(Inst::Special(SpecialOp::Sync).class(), InstClass::Special);
    }

    #[test]
    fn mem_addr_only_for_memory_ops() {
        assert_eq!(
            Inst::Load {
                addr: 0x40,
                bytes: 8
            }
            .mem_addr(),
            Some(0x40)
        );
        assert_eq!(
            Inst::Store {
                addr: 0x80,
                bytes: 4
            }
            .mem_addr(),
            Some(0x80)
        );
        assert_eq!(Inst::IntAlu.mem_addr(), None);
        assert_eq!(Inst::Branch { taken: false }.mem_addr(), None);
    }

    #[test]
    fn direction_reverse_is_involution() {
        for d in [
            TransferDirection::HostToDevice,
            TransferDirection::DeviceToHost,
        ] {
            assert_eq!(d.reverse().reverse(), d);
            assert_ne!(d.reverse(), d);
        }
    }

    #[test]
    fn display_strings_are_stable() {
        assert_eq!(TransferDirection::HostToDevice.to_string(), "H2D");
        assert_eq!(CacheLevel::SharedLlc.to_string(), "shared-LLC");
        assert_eq!(MemSpace::Shared.to_string(), "shared");
        assert_eq!(CommKind::InitialInput.to_string(), "initial-input");
    }
}
