//! A sequence of dynamic instructions executed by one processing unit.

use crate::inst::{Inst, InstClass};

/// An ordered sequence of dynamic instructions for a single PU.
///
/// Streams are the unit the simulator's cores consume. They are plain data:
/// building them is the job of [`crate::TraceBuilder`] and the kernel
/// generators.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceStream {
    insts: Vec<Inst>,
}

impl TraceStream {
    /// Creates an empty stream.
    #[must_use]
    pub fn new() -> TraceStream {
        TraceStream::default()
    }

    /// Creates an empty stream with room for `cap` instructions.
    #[must_use]
    pub fn with_capacity(cap: usize) -> TraceStream {
        TraceStream {
            insts: Vec::with_capacity(cap),
        }
    }

    /// Number of dynamic instructions in the stream.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the stream contains no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Appends one instruction.
    pub fn push(&mut self, inst: Inst) {
        self.insts.push(inst);
    }

    /// Borrowing iterator over the instructions.
    pub fn iter(&self) -> std::slice::Iter<'_, Inst> {
        self.insts.iter()
    }

    /// The instructions as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[Inst] {
        &self.insts
    }

    /// Counts instructions in each coarse class.
    ///
    /// ```
    /// use hetmem_trace::{Inst, InstClass, TraceStream};
    /// let s: TraceStream = [Inst::IntAlu, Inst::Branch { taken: true }].into_iter().collect();
    /// assert_eq!(s.class_count(InstClass::Branch), 1);
    /// ```
    #[must_use]
    pub fn class_count(&self, class: InstClass) -> usize {
        self.insts.iter().filter(|i| i.class() == class).count()
    }

    /// Total bytes moved by the communication events in this stream.
    #[must_use]
    pub fn comm_bytes(&self) -> u64 {
        self.insts
            .iter()
            .filter_map(Inst::comm_event)
            .map(|ev| ev.bytes)
            .sum()
    }

    /// Number of communication events in this stream.
    #[must_use]
    pub fn comm_count(&self) -> usize {
        self.class_count(InstClass::Comm)
    }
}

impl FromIterator<Inst> for TraceStream {
    fn from_iter<T: IntoIterator<Item = Inst>>(iter: T) -> TraceStream {
        TraceStream {
            insts: iter.into_iter().collect(),
        }
    }
}

impl Extend<Inst> for TraceStream {
    fn extend<T: IntoIterator<Item = Inst>>(&mut self, iter: T) {
        self.insts.extend(iter);
    }
}

impl<'a> IntoIterator for &'a TraceStream {
    type Item = &'a Inst;
    type IntoIter = std::slice::Iter<'a, Inst>;

    fn into_iter(self) -> Self::IntoIter {
        self.insts.iter()
    }
}

impl IntoIterator for TraceStream {
    type Item = Inst;
    type IntoIter = std::vec::IntoIter<Inst>;

    fn into_iter(self) -> Self::IntoIter {
        self.insts.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{CommEvent, CommKind, TransferDirection};

    #[test]
    fn push_and_len() {
        let mut s = TraceStream::new();
        assert!(s.is_empty());
        s.push(Inst::IntAlu);
        s.push(Inst::FpAlu);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn collect_and_extend() {
        let mut s: TraceStream = std::iter::repeat_n(Inst::IntAlu, 3).collect();
        s.extend([Inst::Branch { taken: false }]);
        assert_eq!(s.len(), 4);
        assert_eq!(s.class_count(InstClass::IntOp), 3);
        assert_eq!(s.class_count(InstClass::Branch), 1);
    }

    #[test]
    fn comm_accounting() {
        let ev = |bytes| {
            Inst::Comm(CommEvent {
                direction: TransferDirection::HostToDevice,
                bytes,
                kind: CommKind::InitialInput,
                addr: 0x1000,
            })
        };
        let s: TraceStream = [ev(100), Inst::IntAlu, ev(28)].into_iter().collect();
        assert_eq!(s.comm_count(), 2);
        assert_eq!(s.comm_bytes(), 128);
    }
}
