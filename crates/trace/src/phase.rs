//! Phase-structured traces.
//!
//! The paper divides execution time into three categories — *sequential*,
//! *parallel*, and *communication* (§V-A, Figure 5) — and its benchmarks are
//! described by compute patterns such as `parallel → merge → sequential`
//! (Table III). A [`PhasedTrace`] preserves that structure so the simulator
//! can attribute cycles to the right category and so design points can decide
//! how communication phases overlap with computation (e.g. GMAC's
//! asynchronous copies).

use crate::inst::{Inst, InstClass};
use crate::stream::TraceStream;
use crate::PuKind;

/// Execution-time category of a trace segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Phase {
    /// Single-threaded work on the CPU (initialization, merges, final steps).
    #[default]
    Sequential,
    /// Both PUs compute concurrently on their halves of the work.
    Parallel,
    /// Inter-PU data movement mandated by the benchmark structure.
    Communication,
}

impl Phase {
    /// All phases, in the paper's reporting order.
    pub const ALL: [Phase; 3] = [Phase::Sequential, Phase::Parallel, Phase::Communication];
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Phase::Sequential => f.write_str("sequential"),
            Phase::Parallel => f.write_str("parallel"),
            Phase::Communication => f.write_str("communication"),
        }
    }
}

/// One contiguous segment of a trace, executed in a single phase.
///
/// * `Sequential` segments hold CPU instructions only.
/// * `Parallel` segments hold a CPU stream and a GPU stream that execute
///   concurrently; the segment ends when both finish.
/// * `Communication` segments hold the host-side stream containing the
///   [`Inst::Comm`] events (plus any special operations the programming
///   model inserted around them).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseSegment {
    phase: Phase,
    cpu: TraceStream,
    gpu: TraceStream,
}

impl PhaseSegment {
    /// Creates a segment in `phase` with the given per-PU streams.
    #[must_use]
    pub fn new(phase: Phase, cpu: TraceStream, gpu: TraceStream) -> PhaseSegment {
        PhaseSegment { phase, cpu, gpu }
    }

    /// The segment's phase.
    #[must_use]
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// The stream executed by `pu` in this segment.
    #[must_use]
    pub fn stream(&self, pu: PuKind) -> &TraceStream {
        match pu {
            PuKind::Cpu => &self.cpu,
            PuKind::Gpu => &self.gpu,
        }
    }

    /// Mutable access to the stream executed by `pu`.
    pub fn stream_mut(&mut self, pu: PuKind) -> &mut TraceStream {
        match pu {
            PuKind::Cpu => &mut self.cpu,
            PuKind::Gpu => &mut self.gpu,
        }
    }

    /// Total instructions across both PUs in this segment.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cpu.len() + self.gpu.len()
    }

    /// Whether both streams are empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cpu.is_empty() && self.gpu.is_empty()
    }
}

/// A complete, phase-structured kernel trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhasedTrace {
    name: String,
    segments: Vec<PhaseSegment>,
}

impl PhasedTrace {
    /// Creates an empty trace for a kernel called `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> PhasedTrace {
        PhasedTrace {
            name: name.into(),
            segments: Vec::new(),
        }
    }

    /// The kernel name this trace was generated from.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The trace's segments, in program order.
    #[must_use]
    pub fn segments(&self) -> &[PhaseSegment] {
        &self.segments
    }

    /// Mutable access to the segments (used by lowering passes that rewrite
    /// communication events into model-specific operations).
    pub fn segments_mut(&mut self) -> &mut [PhaseSegment] {
        &mut self.segments
    }

    /// Appends a segment.
    pub fn push_segment(&mut self, segment: PhaseSegment) {
        self.segments.push(segment);
    }

    /// Total dynamic instructions executed by `pu` across all segments.
    #[must_use]
    pub fn pu_len(&self, pu: PuKind) -> usize {
        self.segments.iter().map(|s| s.stream(pu).len()).sum()
    }

    /// Total dynamic instructions executed by `pu` in segments of `phase`.
    #[must_use]
    pub fn pu_phase_len(&self, pu: PuKind, phase: Phase) -> usize {
        self.segments
            .iter()
            .filter(|s| s.phase() == phase)
            .map(|s| s.stream(pu).len())
            .sum()
    }

    /// Number of communication events in the whole trace.
    #[must_use]
    pub fn comm_count(&self) -> usize {
        self.segments
            .iter()
            .map(|s| s.stream(PuKind::Cpu).comm_count() + s.stream(PuKind::Gpu).comm_count())
            .sum()
    }

    /// Total bytes moved by all communication events.
    #[must_use]
    pub fn comm_bytes(&self) -> u64 {
        self.segments
            .iter()
            .map(|s| s.stream(PuKind::Cpu).comm_bytes() + s.stream(PuKind::Gpu).comm_bytes())
            .sum()
    }

    /// Total bytes moved by communication events in one direction.
    #[must_use]
    pub fn comm_bytes_in(&self, direction: crate::TransferDirection) -> u64 {
        self.segments
            .iter()
            .flat_map(|s| {
                s.stream(PuKind::Cpu)
                    .iter()
                    .chain(s.stream(PuKind::Gpu).iter())
            })
            .filter_map(Inst::comm_event)
            .filter(|ev| ev.direction == direction)
            .map(|ev| ev.bytes)
            .sum()
    }

    /// The Table III statistics of this trace.
    #[must_use]
    pub fn characteristics(&self) -> crate::Characteristics {
        crate::Characteristics::of(self)
    }

    /// Checks the structural invariants of a phase-structured trace.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant:
    ///
    /// * sequential segments must not contain GPU instructions;
    /// * communication events may only appear in communication segments;
    /// * communication segments must contain at least one communication
    ///   event and no plain compute/memory instructions.
    pub fn validate(&self) -> Result<(), TraceShapeError> {
        for (idx, seg) in self.segments.iter().enumerate() {
            match seg.phase() {
                Phase::Sequential => {
                    if !seg.stream(PuKind::Gpu).is_empty() {
                        return Err(TraceShapeError::GpuWorkInSequential { segment: idx });
                    }
                }
                Phase::Parallel => {}
                Phase::Communication => {
                    let host = seg.stream(PuKind::Cpu);
                    // Ownership-only segments (e.g. the partially shared
                    // space's acquire/release with no bulk transfer) are
                    // legal: at least one comm event *or* special operation.
                    if host.comm_count() == 0 && host.class_count(InstClass::Special) == 0 {
                        return Err(TraceShapeError::EmptyCommunication { segment: idx });
                    }
                    let plain = host
                        .iter()
                        .chain(seg.stream(PuKind::Gpu).iter())
                        .filter(|i| !matches!(i.class(), InstClass::Comm | InstClass::Special))
                        .count();
                    if plain != 0 {
                        return Err(TraceShapeError::ComputeInCommunication { segment: idx });
                    }
                }
            }
            if seg.phase() != Phase::Communication {
                let comm_here =
                    seg.stream(PuKind::Cpu).comm_count() + seg.stream(PuKind::Gpu).comm_count();
                if comm_here != 0 {
                    return Err(TraceShapeError::CommOutsideCommunication { segment: idx });
                }
            }
        }
        Ok(())
    }

    /// Iterator over all instructions of `pu` in program order, disregarding
    /// phase boundaries.
    pub fn pu_insts(&self, pu: PuKind) -> impl Iterator<Item = &Inst> + '_ {
        self.segments.iter().flat_map(move |s| s.stream(pu).iter())
    }
}

/// A structural violation of the phased-trace shape invariants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceShapeError {
    /// A sequential segment contained GPU instructions.
    GpuWorkInSequential {
        /// Index of the offending segment.
        segment: usize,
    },
    /// A communication segment contained neither a communication event nor
    /// a special operation.
    EmptyCommunication {
        /// Index of the offending segment.
        segment: usize,
    },
    /// A communication segment contained plain compute/memory instructions.
    ComputeInCommunication {
        /// Index of the offending segment.
        segment: usize,
    },
    /// A communication event appeared outside a communication segment.
    CommOutsideCommunication {
        /// Index of the offending segment.
        segment: usize,
    },
}

impl std::fmt::Display for TraceShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceShapeError::GpuWorkInSequential { segment } => {
                write!(
                    f,
                    "segment {segment}: sequential segment contains GPU instructions"
                )
            }
            TraceShapeError::EmptyCommunication { segment } => {
                write!(
                    f,
                    "segment {segment}: communication segment has no communication event"
                )
            }
            TraceShapeError::ComputeInCommunication { segment } => {
                write!(
                    f,
                    "segment {segment}: communication segment contains compute instructions"
                )
            }
            TraceShapeError::CommOutsideCommunication { segment } => {
                write!(
                    f,
                    "segment {segment}: communication event outside a communication segment"
                )
            }
        }
    }
}

impl std::error::Error for TraceShapeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{CommEvent, CommKind, TransferDirection};

    fn comm_inst(bytes: u64) -> Inst {
        Inst::Comm(CommEvent {
            direction: TransferDirection::HostToDevice,
            bytes,
            kind: CommKind::InitialInput,
            addr: 0,
        })
    }

    #[test]
    fn phase_lengths_are_attributed() {
        let mut t = PhasedTrace::new("demo");
        t.push_segment(PhaseSegment::new(
            Phase::Sequential,
            [Inst::IntAlu; 3].into_iter().collect(),
            TraceStream::new(),
        ));
        t.push_segment(PhaseSegment::new(
            Phase::Parallel,
            [Inst::FpAlu; 2].into_iter().collect(),
            [Inst::SimdAlu { lanes: 8 }; 5].into_iter().collect(),
        ));
        assert_eq!(t.pu_len(PuKind::Cpu), 5);
        assert_eq!(t.pu_len(PuKind::Gpu), 5);
        assert_eq!(t.pu_phase_len(PuKind::Cpu, Phase::Sequential), 3);
        assert_eq!(t.pu_phase_len(PuKind::Gpu, Phase::Parallel), 5);
        assert_eq!(t.pu_phase_len(PuKind::Gpu, Phase::Sequential), 0);
    }

    #[test]
    fn validate_accepts_well_formed_trace() {
        let mut t = PhasedTrace::new("ok");
        t.push_segment(PhaseSegment::new(
            Phase::Communication,
            [comm_inst(64)].into_iter().collect(),
            TraceStream::new(),
        ));
        t.push_segment(PhaseSegment::new(
            Phase::Parallel,
            [Inst::IntAlu].into_iter().collect(),
            [Inst::IntAlu].into_iter().collect(),
        ));
        assert_eq!(t.validate(), Ok(()));
        assert_eq!(t.comm_count(), 1);
        assert_eq!(t.comm_bytes(), 64);
    }

    #[test]
    fn validate_rejects_gpu_work_in_sequential() {
        let mut t = PhasedTrace::new("bad");
        t.push_segment(PhaseSegment::new(
            Phase::Sequential,
            TraceStream::new(),
            [Inst::IntAlu].into_iter().collect(),
        ));
        assert_eq!(
            t.validate(),
            Err(TraceShapeError::GpuWorkInSequential { segment: 0 })
        );
    }

    #[test]
    fn validate_rejects_comm_outside_communication() {
        let mut t = PhasedTrace::new("bad");
        t.push_segment(PhaseSegment::new(
            Phase::Parallel,
            [comm_inst(8)].into_iter().collect(),
            TraceStream::new(),
        ));
        assert_eq!(
            t.validate(),
            Err(TraceShapeError::CommOutsideCommunication { segment: 0 })
        );
    }

    #[test]
    fn validate_rejects_empty_or_compute_communication() {
        let mut t = PhasedTrace::new("bad");
        t.push_segment(PhaseSegment::new(
            Phase::Communication,
            TraceStream::new(),
            TraceStream::new(),
        ));
        assert_eq!(
            t.validate(),
            Err(TraceShapeError::EmptyCommunication { segment: 0 })
        );

        let mut t = PhasedTrace::new("bad2");
        t.push_segment(PhaseSegment::new(
            Phase::Communication,
            [comm_inst(8), Inst::IntAlu].into_iter().collect(),
            TraceStream::new(),
        ));
        assert_eq!(
            t.validate(),
            Err(TraceShapeError::ComputeInCommunication { segment: 0 })
        );
    }
}
