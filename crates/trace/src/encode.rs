//! A line-oriented text encoding for phased traces (`.hmt`).
//!
//! Traces are exchanged with external tooling (or archived for exact
//! replay) in a simple, diffable format — one instruction per line:
//!
//! ```text
//! hmt 1
//! trace "reduction"
//! segment communication
//! pu cpu
//! C h2d initial 320512 0x10000000
//! segment parallel
//! pu cpu
//! L 4 0x10000000
//! I
//! B t
//! pu gpu
//! V 8
//! end
//! ```
//!
//! Opcodes: `I` int-alu, `M` mul, `F` fp-alu, `V <lanes>` simd,
//! `L <bytes> <addr>` load, `S <bytes> <addr>` store, `B t|n` branch,
//! `C <h2d|d2h> <initial|result|mid> <bytes> <addr>` communication event,
//! and the specials `acq`/`rel <addr> <bytes>`, `pf <addr>`,
//! `push <l1|l2|llc|smem> <addr> <bytes>`, `launch`, `sync`,
//! `alloc <cpu|gpu|shared> <addr> <bytes>`, `free <addr>`. Addresses are
//! hexadecimal with an `0x` prefix; `#` starts a comment line.
//!
//! [`parse_trace`] accepts exactly what [`write_trace`] emits (round-trip
//! tested, including property tests over random traces) and reports errors
//! with line numbers.

use crate::inst::{CacheLevel, CommEvent, CommKind, Inst, MemSpace, SpecialOp, TransferDirection};
use crate::phase::{Phase, PhaseSegment, PhasedTrace};
use crate::stream::TraceStream;
use crate::PuKind;
use std::fmt::Write as _;

/// Error produced when decoding a trace fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number of the offending line.
    pub line: u32,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for TraceParseError {}

fn phase_name(phase: Phase) -> &'static str {
    match phase {
        Phase::Sequential => "sequential",
        Phase::Parallel => "parallel",
        Phase::Communication => "communication",
    }
}

fn level_name(level: CacheLevel) -> &'static str {
    match level {
        CacheLevel::PrivateL1 => "l1",
        CacheLevel::PrivateL2 => "l2",
        CacheLevel::SharedLlc => "llc",
        CacheLevel::Scratchpad => "smem",
    }
}

fn space_name(space: MemSpace) -> &'static str {
    match space {
        MemSpace::CpuPrivate => "cpu",
        MemSpace::GpuPrivate => "gpu",
        MemSpace::Shared => "shared",
    }
}

fn kind_name(kind: CommKind) -> &'static str {
    match kind {
        CommKind::InitialInput => "initial",
        CommKind::ResultReturn => "result",
        CommKind::Intermediate => "mid",
    }
}

fn encode_inst(out: &mut String, inst: &Inst) {
    match inst {
        Inst::IntAlu => out.push('I'),
        Inst::Mul => out.push('M'),
        Inst::FpAlu => out.push('F'),
        Inst::SimdAlu { lanes } => {
            let _ = write!(out, "V {lanes}");
        }
        Inst::Load { addr, bytes } => {
            let _ = write!(out, "L {bytes} {addr:#x}");
        }
        Inst::Store { addr, bytes } => {
            let _ = write!(out, "S {bytes} {addr:#x}");
        }
        Inst::Branch { taken } => {
            let _ = write!(out, "B {}", if *taken { 't' } else { 'n' });
        }
        Inst::Comm(ev) => {
            let dir = match ev.direction {
                TransferDirection::HostToDevice => "h2d",
                TransferDirection::DeviceToHost => "d2h",
            };
            let _ = write!(
                out,
                "C {dir} {} {} {:#x}",
                kind_name(ev.kind),
                ev.bytes,
                ev.addr
            );
        }
        Inst::Special(op) => match op {
            SpecialOp::Acquire { addr, bytes } => {
                let _ = write!(out, "acq {addr:#x} {bytes}");
            }
            SpecialOp::Release { addr, bytes } => {
                let _ = write!(out, "rel {addr:#x} {bytes}");
            }
            SpecialOp::PageFault { addr } => {
                let _ = write!(out, "pf {addr:#x}");
            }
            SpecialOp::Push { level, addr, bytes } => {
                let _ = write!(out, "push {} {addr:#x} {bytes}", level_name(*level));
            }
            SpecialOp::KernelLaunch => out.push_str("launch"),
            SpecialOp::Sync => out.push_str("sync"),
            SpecialOp::Alloc { space, addr, bytes } => {
                let _ = write!(out, "alloc {} {addr:#x} {bytes}", space_name(*space));
            }
            SpecialOp::Free { addr } => {
                let _ = write!(out, "free {addr:#x}");
            }
        },
    }
    out.push('\n');
}

/// Encodes `trace` into the `.hmt` text format.
#[must_use]
pub fn write_trace(trace: &PhasedTrace) -> String {
    let mut out = String::new();
    out.push_str("hmt 1\n");
    let _ = writeln!(out, "trace \"{}\"", trace.name());
    for segment in trace.segments() {
        let _ = writeln!(out, "segment {}", phase_name(segment.phase()));
        for pu in PuKind::ALL {
            let stream = segment.stream(pu);
            if stream.is_empty() {
                continue;
            }
            let _ = writeln!(out, "pu {}", if pu == PuKind::Cpu { "cpu" } else { "gpu" });
            for inst in stream {
                encode_inst(&mut out, inst);
            }
        }
    }
    out.push_str("end\n");
    out
}

struct Decoder<'s> {
    lines: std::iter::Enumerate<std::str::Lines<'s>>,
}

type Fields<'a> = Vec<&'a str>;

impl<'s> Decoder<'s> {
    fn err<T>(line: u32, message: impl Into<String>) -> Result<T, TraceParseError> {
        Err(TraceParseError {
            line,
            message: message.into(),
        })
    }

    /// Next meaningful line: (1-based number, raw trimmed text, fields).
    fn next_line(&mut self) -> Option<(u32, &'s str, Fields<'s>)> {
        loop {
            let (idx, raw) = self.lines.next()?;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            return Some((
                idx as u32 + 1,
                trimmed,
                trimmed.split_whitespace().collect(),
            ));
        }
    }
}

fn parse_u64(line: u32, s: &str) -> Result<u64, TraceParseError> {
    let parsed = if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse::<u64>()
    };
    parsed.map_err(|_| TraceParseError {
        line,
        message: format!("bad number {s:?}"),
    })
}

fn parse_u8(line: u32, s: &str) -> Result<u8, TraceParseError> {
    let n = parse_u64(line, s)?;
    u8::try_from(n).map_err(|_| TraceParseError {
        line,
        message: format!("{n} does not fit in u8"),
    })
}

fn decode_inst(line: u32, fields: &Fields<'_>) -> Result<Inst, TraceParseError> {
    let want = |n: usize| -> Result<(), TraceParseError> {
        if fields.len() == n {
            Ok(())
        } else {
            Decoder::err(
                line,
                format!(
                    "opcode {:?} expects {} fields, found {}",
                    fields[0],
                    n,
                    fields.len()
                ),
            )
        }
    };
    match fields[0] {
        "I" => {
            want(1)?;
            Ok(Inst::IntAlu)
        }
        "M" => {
            want(1)?;
            Ok(Inst::Mul)
        }
        "F" => {
            want(1)?;
            Ok(Inst::FpAlu)
        }
        "V" => {
            want(2)?;
            Ok(Inst::SimdAlu {
                lanes: parse_u8(line, fields[1])?,
            })
        }
        "L" => {
            want(3)?;
            Ok(Inst::Load {
                bytes: parse_u8(line, fields[1])?,
                addr: parse_u64(line, fields[2])?,
            })
        }
        "S" => {
            want(3)?;
            Ok(Inst::Store {
                bytes: parse_u8(line, fields[1])?,
                addr: parse_u64(line, fields[2])?,
            })
        }
        "B" => {
            want(2)?;
            match fields[1] {
                "t" => Ok(Inst::Branch { taken: true }),
                "n" => Ok(Inst::Branch { taken: false }),
                other => Decoder::err(
                    line,
                    format!("branch outcome must be t or n, got {other:?}"),
                ),
            }
        }
        "C" => {
            want(5)?;
            let direction = match fields[1] {
                "h2d" => TransferDirection::HostToDevice,
                "d2h" => TransferDirection::DeviceToHost,
                other => return Decoder::err(line, format!("bad direction {other:?}")),
            };
            let kind = match fields[2] {
                "initial" => CommKind::InitialInput,
                "result" => CommKind::ResultReturn,
                "mid" => CommKind::Intermediate,
                other => return Decoder::err(line, format!("bad comm kind {other:?}")),
            };
            Ok(Inst::Comm(CommEvent {
                direction,
                kind,
                bytes: parse_u64(line, fields[3])?,
                addr: parse_u64(line, fields[4])?,
            }))
        }
        "acq" | "rel" => {
            want(3)?;
            let addr = parse_u64(line, fields[1])?;
            let bytes = parse_u64(line, fields[2])?;
            Ok(Inst::Special(if fields[0] == "acq" {
                SpecialOp::Acquire { addr, bytes }
            } else {
                SpecialOp::Release { addr, bytes }
            }))
        }
        "pf" => {
            want(2)?;
            Ok(Inst::Special(SpecialOp::PageFault {
                addr: parse_u64(line, fields[1])?,
            }))
        }
        "push" => {
            want(4)?;
            let level = match fields[1] {
                "l1" => CacheLevel::PrivateL1,
                "l2" => CacheLevel::PrivateL2,
                "llc" => CacheLevel::SharedLlc,
                "smem" => CacheLevel::Scratchpad,
                other => return Decoder::err(line, format!("bad cache level {other:?}")),
            };
            Ok(Inst::Special(SpecialOp::Push {
                level,
                addr: parse_u64(line, fields[2])?,
                bytes: parse_u64(line, fields[3])?,
            }))
        }
        "launch" => {
            want(1)?;
            Ok(Inst::Special(SpecialOp::KernelLaunch))
        }
        "sync" => {
            want(1)?;
            Ok(Inst::Special(SpecialOp::Sync))
        }
        "alloc" => {
            want(4)?;
            let space = match fields[1] {
                "cpu" => MemSpace::CpuPrivate,
                "gpu" => MemSpace::GpuPrivate,
                "shared" => MemSpace::Shared,
                other => return Decoder::err(line, format!("bad memory space {other:?}")),
            };
            Ok(Inst::Special(SpecialOp::Alloc {
                space,
                addr: parse_u64(line, fields[2])?,
                bytes: parse_u64(line, fields[3])?,
            }))
        }
        "free" => {
            want(2)?;
            Ok(Inst::Special(SpecialOp::Free {
                addr: parse_u64(line, fields[1])?,
            }))
        }
        other => Decoder::err(line, format!("unknown opcode {other:?}")),
    }
}

/// Decodes a `.hmt` trace.
///
/// # Errors
///
/// Returns a [`TraceParseError`] with a line number on any malformed input,
/// including traces that violate the phased-trace shape invariants.
pub fn parse_trace(src: &str) -> Result<PhasedTrace, TraceParseError> {
    let mut d = Decoder {
        lines: src.lines().enumerate(),
    };

    let Some((line, _, header)) = d.next_line() else {
        return Decoder::err(0, "empty input");
    };
    if header != ["hmt", "1"] {
        return Decoder::err(line, "expected header `hmt 1`");
    }

    let Some((line, raw, name_fields)) = d.next_line() else {
        return Decoder::err(line, "missing `trace` line");
    };
    if name_fields.first() != Some(&"trace") {
        return Decoder::err(line, "expected `trace \"<name>\"`");
    }
    // Take the name from the raw line so interior whitespace survives.
    let name = raw
        .strip_prefix("trace")
        .map(str::trim_start)
        .and_then(|s| s.strip_prefix('"'))
        .and_then(|s| s.strip_suffix('"'))
        .ok_or(())
        .or_else(|()| Decoder::err::<&str>(line, "trace name must be double-quoted"))?
        .to_owned();

    let mut trace = PhasedTrace::new(name);
    let mut phase: Option<Phase> = None;
    let mut cpu = TraceStream::new();
    let mut gpu = TraceStream::new();
    let mut current_pu = PuKind::Cpu;
    let mut ended = false;

    let flush = |trace: &mut PhasedTrace,
                 phase: &mut Option<Phase>,
                 cpu: &mut TraceStream,
                 gpu: &mut TraceStream| {
        if let Some(p) = phase.take() {
            trace.push_segment(PhaseSegment::new(
                p,
                std::mem::take(cpu),
                std::mem::take(gpu),
            ));
        }
    };

    while let Some((line, _, fields)) = d.next_line() {
        match fields[0] {
            "segment" => {
                if fields.len() != 2 {
                    return Decoder::err(line, "segment needs a phase name");
                }
                flush(&mut trace, &mut phase, &mut cpu, &mut gpu);
                phase = Some(match fields[1] {
                    "sequential" => Phase::Sequential,
                    "parallel" => Phase::Parallel,
                    "communication" => Phase::Communication,
                    other => return Decoder::err(line, format!("unknown phase {other:?}")),
                });
                current_pu = PuKind::Cpu;
            }
            "pu" => {
                if phase.is_none() {
                    return Decoder::err(line, "`pu` outside a segment");
                }
                current_pu = match fields.get(1) {
                    Some(&"cpu") => PuKind::Cpu,
                    Some(&"gpu") => PuKind::Gpu,
                    other => return Decoder::err(line, format!("bad pu {other:?}")),
                };
            }
            "end" => {
                flush(&mut trace, &mut phase, &mut cpu, &mut gpu);
                ended = true;
                break;
            }
            _ => {
                if phase.is_none() {
                    return Decoder::err(line, "instruction outside a segment");
                }
                let inst = decode_inst(line, &fields)?;
                match current_pu {
                    PuKind::Cpu => cpu.push(inst),
                    PuKind::Gpu => gpu.push(inst),
                }
            }
        }
    }
    if !ended {
        return Decoder::err(0, "missing `end` line");
    }
    if let Err(e) = trace.validate() {
        return Decoder::err(0, format!("decoded trace is malformed: {e}"));
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{Kernel, KernelParams};

    #[test]
    fn all_kernels_round_trip() {
        for kernel in Kernel::ALL {
            let original = kernel.generate(&KernelParams::scaled(64));
            let text = write_trace(&original);
            let decoded = parse_trace(&text).unwrap_or_else(|e| panic!("{kernel}: {e}"));
            assert_eq!(decoded, original, "{kernel}");
        }
    }

    #[test]
    fn format_is_line_oriented_and_commented() {
        let trace = Kernel::Reduction.generate(&KernelParams::scaled(512));
        let mut text = write_trace(&trace);
        // Comments and blank lines are ignored.
        text = text.replace("segment parallel", "# breakdown\n\nsegment parallel");
        assert_eq!(parse_trace(&text).expect("still valid"), trace);
    }

    #[test]
    fn header_and_structure_errors_are_reported() {
        assert!(parse_trace("").is_err());
        let e = parse_trace("not a trace").expect_err("bad header");
        assert!(e.message.contains("hmt 1"), "{e}");
        let e = parse_trace("hmt 1\ntrace noquotes\nend\n").expect_err("unquoted");
        assert!(e.message.contains("double-quoted"), "{e}");
        let e = parse_trace("hmt 1\ntrace \"t\"\nI\nend\n").expect_err("stray inst");
        assert!(e.message.contains("outside a segment"), "{e}");
        let e = parse_trace("hmt 1\ntrace \"t\"\nsegment parallel\n").expect_err("no end");
        assert!(e.message.contains("missing `end`"), "{e}");
    }

    #[test]
    fn bad_instruction_lines_carry_line_numbers() {
        let src = "hmt 1\ntrace \"t\"\nsegment parallel\npu cpu\nQ\nend\n";
        let e = parse_trace(src).expect_err("unknown opcode");
        assert_eq!(e.line, 5);
        assert!(e.message.contains("unknown opcode"), "{e}");

        let src = "hmt 1\ntrace \"t\"\nsegment parallel\npu cpu\nL 8\nend\n";
        let e = parse_trace(src).expect_err("missing field");
        assert!(e.message.contains("expects 3 fields"), "{e}");

        let src = "hmt 1\ntrace \"t\"\nsegment parallel\npu cpu\nL 999 0x0\nend\n";
        let e = parse_trace(src).expect_err("u8 overflow");
        assert!(e.message.contains("fit in u8"), "{e}");
    }

    #[test]
    fn malformed_shape_is_rejected_after_decode() {
        // GPU work in a sequential segment decodes token-wise but violates
        // the trace invariants.
        let src = "hmt 1\ntrace \"t\"\nsegment sequential\npu gpu\nI\nend\n";
        let e = parse_trace(src).expect_err("invalid shape");
        assert!(e.message.contains("malformed"), "{e}");
    }

    #[test]
    fn encoding_is_idempotent() {
        let trace = Kernel::KMeans.generate(&KernelParams::scaled(128));
        let once = write_trace(&trace);
        let twice = write_trace(&parse_trace(&once).expect("valid"));
        assert_eq!(once, twice);
    }

    #[test]
    fn names_with_spaces_round_trip() {
        let trace = Kernel::MatrixMul.generate(&KernelParams::scaled(4096));
        assert_eq!(trace.name(), "matrix mul");
        let decoded = parse_trace(&write_trace(&trace)).expect("round trip");
        assert_eq!(decoded.name(), "matrix mul");
    }
}
