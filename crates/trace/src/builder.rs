//! Helpers for composing phase-structured traces.
//!
//! Kernel generators (and the DSL code generator) describe work as *counts*
//! of instructions with a per-kernel [`InstMix`] and an [`AddressPattern`];
//! the [`TraceBuilder`] expands those into concrete instruction streams with
//! exactly the requested dynamic instruction counts, which is what lets the
//! generators reproduce Table III of the paper to the instruction.

use crate::inst::{Addr, CommEvent, Inst};
use crate::phase::{Phase, PhaseSegment, PhasedTrace};
use crate::stream::TraceStream;
use crate::PuKind;

/// A tiny deterministic PRNG (SplitMix64) used for branch outcomes and
/// irregular address streams.
///
/// Kernel traces must be bit-for-bit reproducible across platforms and
/// releases, so the generator is pinned here rather than delegated to an
/// external crate whose stream might change.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, 100)`, used for percentage draws.
    pub(crate) fn percent(&mut self) -> u8 {
        (self.next_u64() % 100) as u8
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    pub(crate) fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Relative instruction-class weights of a kernel's inner loop.
///
/// One "body" of the loop contains `loads` loads, then `int_ops` integer and
/// `fp_ops` floating-point operations, then `stores` stores, and finally
/// `branches` conditional branches (the loop-back branch last) — the classic
/// shape of a counted loop. The builder repeats the body as many times as
/// needed and truncates to hit an exact dynamic instruction count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InstMix {
    /// Loads per loop body.
    pub loads: u32,
    /// Integer ALU operations per loop body.
    pub int_ops: u32,
    /// Floating-point (or SIMD) operations per loop body.
    pub fp_ops: u32,
    /// Stores per loop body.
    pub stores: u32,
    /// Conditional branches per loop body.
    pub branches: u32,
    /// Emit SIMD operations instead of scalar FP (set for GPU streams).
    pub simd: bool,
    /// Width of each load/store in bytes.
    pub access_bytes: u8,
    /// Probability (percent) that a branch is taken.
    pub branch_taken_pct: u8,
}

impl InstMix {
    /// A scalar CPU mix typical of compute loops: 2 loads, 1 int op, 2 FP
    /// ops, 1 store, 1 branch, 8-byte accesses, 90 % taken branches.
    #[must_use]
    pub fn cpu_compute() -> InstMix {
        InstMix {
            loads: 2,
            int_ops: 1,
            fp_ops: 2,
            stores: 1,
            branches: 1,
            simd: false,
            access_bytes: 8,
            branch_taken_pct: 90,
        }
    }

    /// A GPU SIMD mix: wide accesses and vector FP operations.
    #[must_use]
    pub fn gpu_compute() -> InstMix {
        InstMix {
            loads: 2,
            int_ops: 1,
            fp_ops: 3,
            stores: 1,
            branches: 1,
            simd: true,
            access_bytes: 32,
            branch_taken_pct: 95,
        }
    }

    /// An integer-dominated serial mix (initialization / merge code).
    #[must_use]
    pub fn serial() -> InstMix {
        InstMix {
            loads: 2,
            int_ops: 3,
            fp_ops: 0,
            stores: 1,
            branches: 1,
            simd: false,
            access_bytes: 8,
            branch_taken_pct: 85,
        }
    }

    /// Total instructions in one loop body. A mix with all weights zero is
    /// rejected when the builder emits instructions.
    #[must_use]
    pub fn body_len(&self) -> u32 {
        self.loads + self.int_ops + self.fp_ops + self.stores + self.branches
    }
}

/// A deterministic generator of memory addresses shaped like a kernel's
/// access pattern.
#[derive(Clone, Debug)]
pub enum AddressPattern {
    /// Sequential streaming through `[base, base + len)` with `stride`-byte
    /// steps, wrapping around (reduction, streaming kernels).
    Stream {
        /// Region base address.
        base: Addr,
        /// Region length in bytes.
        len: u64,
        /// Step between consecutive accesses.
        stride: u64,
    },
    /// Row-stream alternating with column-stride accesses over a square
    /// matrix region (matrix multiply: A row-major, B column-major).
    RowColumn {
        /// Region base address.
        base: Addr,
        /// Region length in bytes.
        len: u64,
        /// Matrix row length in bytes (column stride).
        row_bytes: u64,
        /// Element size in bytes.
        elem: u64,
    },
    /// A sliding window: each step reads `width` consecutive elements before
    /// advancing by `stride` (convolution).
    Window {
        /// Region base address.
        base: Addr,
        /// Region length in bytes.
        len: u64,
        /// Window width in elements.
        width: u64,
        /// Element size in bytes.
        elem: u64,
    },
    /// Bit-reversal butterfly access over a power-of-two region (DCT / FFT
    /// style).
    Butterfly {
        /// Region base address.
        base: Addr,
        /// log2 of the number of elements (region is `elem << log2_n` bytes).
        log2_n: u32,
        /// Element size in bytes.
        elem: u64,
    },
    /// Pseudo-random accesses within the region (merge sort's data-dependent
    /// merges, k-means' cluster membership).
    Irregular {
        /// Region base address.
        base: Addr,
        /// Region length in bytes.
        len: u64,
        /// Element size in bytes.
        elem: u64,
        /// PRNG seed (deterministic per stream).
        seed: u64,
    },
}

impl AddressPattern {
    /// Turns the pattern description into a concrete address generator.
    #[must_use]
    pub fn into_gen(self) -> AddressGen {
        let rng = match &self {
            AddressPattern::Irregular { seed, .. } => SplitMix64::new(*seed),
            _ => SplitMix64::new(0),
        };
        AddressGen {
            pattern: self,
            step: 0,
            rng,
        }
    }
}

/// Iterator state for an [`AddressPattern`].
#[derive(Clone, Debug)]
pub struct AddressGen {
    pattern: AddressPattern,
    step: u64,
    rng: SplitMix64,
}

impl AddressGen {
    /// Next address in the pattern. Infinite; never fails.
    pub fn next_addr(&mut self) -> Addr {
        let step = self.step;
        self.step = self.step.wrapping_add(1);
        match &self.pattern {
            AddressPattern::Stream { base, len, stride } => {
                let len = (*len).max(*stride);
                base + (step * stride) % len
            }
            AddressPattern::RowColumn {
                base,
                len,
                row_bytes,
                elem,
            } => {
                let len = (*len).max(*elem);
                if step.is_multiple_of(2) {
                    // Row-major stream through A.
                    base + (step / 2 * elem) % len
                } else {
                    // Column walk through B: stride of one row per access.
                    base + (step / 2 * row_bytes + (step / (2 * 64)) * elem) % len
                }
            }
            AddressPattern::Window {
                base,
                len,
                width,
                elem,
            } => {
                let len = (*len).max(*elem);
                let width = (*width).max(1);
                let pos = step / width; // window index
                let off = step % width; // element within window
                base + ((pos * elem) + off * elem) % len
            }
            AddressPattern::Butterfly { base, log2_n, elem } => {
                let n = 1u64 << log2_n;
                let idx = step % n;
                let rev = idx.reverse_bits() >> (64 - log2_n);
                base + rev * elem
            }
            AddressPattern::Irregular {
                base, len, elem, ..
            } => {
                let slots = ((*len).max(*elem)) / (*elem).max(1);
                base + self.rng.below(slots.max(1)) * elem
            }
        }
    }
}

/// Incrementally builds a [`PhasedTrace`].
///
/// ```
/// use hetmem_trace::{AddressPattern, InstMix, Phase, PuKind, TraceBuilder};
///
/// let mut b = TraceBuilder::new("demo", 42);
/// b.sequential(100, InstMix::serial(), AddressPattern::Stream {
///     base: 0x1000, len: 4096, stride: 8,
/// });
/// let trace = b.finish();
/// assert_eq!(trace.pu_phase_len(PuKind::Cpu, Phase::Sequential), 100);
/// ```
#[derive(Debug)]
pub struct TraceBuilder {
    trace: PhasedTrace,
    rng: SplitMix64,
}

impl TraceBuilder {
    /// Creates a builder for a kernel called `name`, with a deterministic
    /// seed for branch outcomes.
    #[must_use]
    pub fn new(name: impl Into<String>, seed: u64) -> TraceBuilder {
        TraceBuilder {
            trace: PhasedTrace::new(name),
            rng: SplitMix64::new(seed),
        }
    }

    /// Emits exactly `count` instructions following `mix` into a stream.
    fn emit(&mut self, count: usize, mix: InstMix, pattern: AddressPattern) -> TraceStream {
        assert!(
            mix.body_len() > 0,
            "instruction mix must have at least one class"
        );
        let mut stream = TraceStream::with_capacity(count);
        let mut addrs = pattern.into_gen();
        let mut emitted = 0usize;
        'outer: loop {
            // One loop body: loads, int ops, fp ops, stores, branches.
            for _ in 0..mix.loads {
                if emitted == count {
                    break 'outer;
                }
                stream.push(Inst::Load {
                    addr: addrs.next_addr(),
                    bytes: mix.access_bytes,
                });
                emitted += 1;
            }
            for _ in 0..mix.int_ops {
                if emitted == count {
                    break 'outer;
                }
                stream.push(Inst::IntAlu);
                emitted += 1;
            }
            for _ in 0..mix.fp_ops {
                if emitted == count {
                    break 'outer;
                }
                stream.push(if mix.simd {
                    Inst::SimdAlu { lanes: 8 }
                } else {
                    Inst::FpAlu
                });
                emitted += 1;
            }
            for _ in 0..mix.stores {
                if emitted == count {
                    break 'outer;
                }
                stream.push(Inst::Store {
                    addr: addrs.next_addr(),
                    bytes: mix.access_bytes,
                });
                emitted += 1;
            }
            for _ in 0..mix.branches {
                if emitted == count {
                    break 'outer;
                }
                let taken = self.rng.percent() < mix.branch_taken_pct;
                stream.push(Inst::Branch { taken });
                emitted += 1;
            }
        }
        debug_assert_eq!(stream.len(), count);
        stream
    }

    /// Appends a sequential (CPU-only) segment of exactly `count`
    /// instructions.
    pub fn sequential(&mut self, count: usize, mix: InstMix, pattern: AddressPattern) {
        let cpu = self.emit(count, mix, pattern);
        self.trace.push_segment(PhaseSegment::new(
            Phase::Sequential,
            cpu,
            TraceStream::new(),
        ));
    }

    /// Appends a parallel segment with exactly `cpu_count` CPU instructions
    /// and `gpu_count` GPU instructions.
    #[allow(clippy::too_many_arguments)]
    pub fn parallel(
        &mut self,
        cpu_count: usize,
        cpu_mix: InstMix,
        cpu_pattern: AddressPattern,
        gpu_count: usize,
        gpu_mix: InstMix,
        gpu_pattern: AddressPattern,
    ) {
        let cpu = self.emit(cpu_count, cpu_mix, cpu_pattern);
        let gpu = self.emit(gpu_count, gpu_mix, gpu_pattern);
        self.trace
            .push_segment(PhaseSegment::new(Phase::Parallel, cpu, gpu));
    }

    /// Appends a communication segment containing the given events (host
    /// side, in order).
    pub fn communication(&mut self, events: impl IntoIterator<Item = CommEvent>) {
        let cpu: TraceStream = events.into_iter().map(Inst::Comm).collect();
        assert!(
            cpu.comm_count() > 0,
            "communication segment needs at least one event"
        );
        self.trace.push_segment(PhaseSegment::new(
            Phase::Communication,
            cpu,
            TraceStream::new(),
        ));
    }

    /// Appends an already-built segment (used by the DSL code generator for
    /// segments mixing special operations with communication events).
    pub fn segment(&mut self, segment: PhaseSegment) {
        self.trace.push_segment(segment);
    }

    /// Finishes the build and returns the trace.
    ///
    /// # Panics
    ///
    /// Panics if the built trace violates the phased-trace shape invariants
    /// — that indicates a bug in the generator, never in user input.
    #[must_use]
    pub fn finish(self) -> PhasedTrace {
        if let Err(e) = self.trace.validate() {
            panic!("generator produced a malformed trace: {e}");
        }
        self.trace
    }

    /// Total instructions per PU accumulated so far.
    #[must_use]
    pub fn built_len(&self, pu: PuKind) -> usize {
        self.trace.pu_len(pu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{CommKind, InstClass, TransferDirection};

    #[test]
    fn emit_hits_exact_count_for_any_remainder() {
        for count in [0usize, 1, 2, 6, 7, 13, 100, 101] {
            let mut b = TraceBuilder::new("t", 1);
            let s = b.emit(
                count,
                InstMix::cpu_compute(),
                AddressPattern::Stream {
                    base: 0,
                    len: 1024,
                    stride: 8,
                },
            );
            assert_eq!(s.len(), count);
        }
    }

    #[test]
    fn emit_follows_mix_ratios() {
        let mut b = TraceBuilder::new("t", 1);
        let mix = InstMix::cpu_compute(); // body = 7: 2 loads, 1 int, 2 fp, 1 store, 1 branch
        let s = b.emit(
            700,
            mix,
            AddressPattern::Stream {
                base: 0,
                len: 4096,
                stride: 8,
            },
        );
        assert_eq!(s.class_count(InstClass::Load), 200);
        assert_eq!(s.class_count(InstClass::IntOp), 100);
        assert_eq!(s.class_count(InstClass::FpOp), 200);
        assert_eq!(s.class_count(InstClass::Store), 100);
        assert_eq!(s.class_count(InstClass::Branch), 100);
    }

    #[test]
    fn emit_is_deterministic() {
        let make = || {
            let mut b = TraceBuilder::new("t", 99);
            b.emit(
                500,
                InstMix::gpu_compute(),
                AddressPattern::Irregular {
                    base: 0x100,
                    len: 8192,
                    elem: 4,
                    seed: 7,
                },
            )
        };
        assert_eq!(make(), make());
    }

    #[test]
    fn stream_pattern_wraps_in_region() {
        let mut g = AddressPattern::Stream {
            base: 0x1000,
            len: 64,
            stride: 8,
        }
        .into_gen();
        let addrs: Vec<_> = (0..10).map(|_| g.next_addr()).collect();
        assert_eq!(addrs[0], 0x1000);
        assert_eq!(addrs[7], 0x1038);
        assert_eq!(addrs[8], 0x1000); // wrapped
        for a in addrs {
            assert!((0x1000..0x1040).contains(&a));
        }
    }

    #[test]
    fn butterfly_pattern_stays_in_region() {
        let mut g = AddressPattern::Butterfly {
            base: 0,
            log2_n: 4,
            elem: 8,
        }
        .into_gen();
        for _ in 0..64 {
            let a = g.next_addr();
            assert!(a < 16 * 8);
        }
    }

    #[test]
    fn irregular_pattern_is_aligned_and_bounded() {
        let mut g = AddressPattern::Irregular {
            base: 0x2000,
            len: 4096,
            elem: 4,
            seed: 3,
        }
        .into_gen();
        for _ in 0..1000 {
            let a = g.next_addr();
            assert!((0x2000..0x3000).contains(&a));
            assert_eq!((a - 0x2000) % 4, 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one event")]
    fn empty_communication_segment_panics() {
        let mut b = TraceBuilder::new("t", 0);
        b.communication(std::iter::empty::<CommEvent>());
    }

    #[test]
    fn builder_composes_phases() {
        let mut b = TraceBuilder::new("k", 5);
        b.communication([CommEvent {
            direction: TransferDirection::HostToDevice,
            bytes: 256,
            kind: CommKind::InitialInput,
            addr: 0x1000,
        }]);
        b.parallel(
            10,
            InstMix::cpu_compute(),
            AddressPattern::Stream {
                base: 0x1000,
                len: 256,
                stride: 8,
            },
            20,
            InstMix::gpu_compute(),
            AddressPattern::Stream {
                base: 0x2000,
                len: 256,
                stride: 32,
            },
        );
        b.sequential(
            5,
            InstMix::serial(),
            AddressPattern::Stream {
                base: 0x1000,
                len: 256,
                stride: 8,
            },
        );
        let t = b.finish();
        assert_eq!(t.segments().len(), 3);
        assert_eq!(t.comm_bytes(), 256);
        // 10 parallel + 5 sequential + the Comm instruction itself.
        assert_eq!(t.pu_len(crate::PuKind::Cpu), 16);
        assert_eq!(t.pu_len(crate::PuKind::Gpu), 20);
    }
}
