//! Benchmark characteristics — the statistics of Table III in the paper.

use crate::inst::CommKind;
use crate::phase::{Phase, PhasedTrace};
use crate::PuKind;

/// The per-kernel statistics the paper reports in Table III: dynamic
/// instruction counts (parallel-phase CPU, parallel-phase GPU, serial),
/// number of communications, and the initial transfer size.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Characteristics {
    /// Kernel name.
    pub name: String,
    /// CPU instructions executed in parallel segments ("CPU" column).
    pub cpu_instructions: usize,
    /// GPU instructions executed in parallel segments ("GPU" column).
    pub gpu_instructions: usize,
    /// CPU instructions executed in sequential segments ("serial" column).
    pub serial_instructions: usize,
    /// Number of communication events ("# of communications" column).
    pub communications: usize,
    /// Bytes of the initial input distribution ("initial transfer data
    /// size" column).
    pub initial_transfer_bytes: u64,
}

impl Characteristics {
    /// Computes the characteristics of `trace`.
    #[must_use]
    pub fn of(trace: &PhasedTrace) -> Characteristics {
        let initial: u64 = trace
            .segments()
            .iter()
            .flat_map(|s| {
                s.stream(PuKind::Cpu)
                    .iter()
                    .chain(s.stream(PuKind::Gpu).iter())
            })
            .filter_map(|i| i.comm_event())
            .filter(|ev| ev.kind == CommKind::InitialInput)
            .map(|ev| ev.bytes)
            .sum();
        Characteristics {
            name: trace.name().to_owned(),
            cpu_instructions: trace.pu_phase_len(PuKind::Cpu, Phase::Parallel),
            gpu_instructions: trace.pu_phase_len(PuKind::Gpu, Phase::Parallel),
            serial_instructions: trace.pu_phase_len(PuKind::Cpu, Phase::Sequential),
            communications: trace.comm_count(),
            initial_transfer_bytes: initial,
        }
    }

    /// Total dynamic instructions across both PUs and all phases.
    #[must_use]
    pub fn total_instructions(&self) -> usize {
        self.cpu_instructions + self.gpu_instructions + self.serial_instructions
    }
}

impl std::fmt::Display for Characteristics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: cpu={} gpu={} serial={} comms={} initial={}B",
            self.name,
            self.cpu_instructions,
            self.gpu_instructions,
            self.serial_instructions,
            self.communications,
            self.initial_transfer_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{AddressPattern, InstMix, TraceBuilder};
    use crate::inst::{CommEvent, TransferDirection};

    #[test]
    fn characteristics_attribute_phases_correctly() {
        let mut b = TraceBuilder::new("k", 1);
        b.communication([CommEvent {
            direction: TransferDirection::HostToDevice,
            bytes: 512,
            kind: CommKind::InitialInput,
            addr: 0,
        }]);
        b.parallel(
            30,
            InstMix::cpu_compute(),
            AddressPattern::Stream {
                base: 0,
                len: 512,
                stride: 8,
            },
            40,
            InstMix::gpu_compute(),
            AddressPattern::Stream {
                base: 0x1000,
                len: 512,
                stride: 32,
            },
        );
        b.communication([CommEvent {
            direction: TransferDirection::DeviceToHost,
            bytes: 64,
            kind: CommKind::ResultReturn,
            addr: 0x1000,
        }]);
        b.sequential(
            20,
            InstMix::serial(),
            AddressPattern::Stream {
                base: 0,
                len: 512,
                stride: 8,
            },
        );
        let c = b.finish().characteristics();
        assert_eq!(c.cpu_instructions, 30);
        assert_eq!(c.gpu_instructions, 40);
        assert_eq!(c.serial_instructions, 20);
        assert_eq!(c.communications, 2);
        // Only the InitialInput event counts toward the initial transfer.
        assert_eq!(c.initial_transfer_bytes, 512);
        assert_eq!(c.total_instructions(), 90);
    }
}
