//! # hetmem-trace
//!
//! Instruction set, trace streams, and synthetic kernel generators for the
//! `hetmem` heterogeneous-memory design-space explorer.
//!
//! The original paper drove its evaluation with a cycle-level, trace-driven
//! simulator (MacSim) fed by x86/PTX traces of six kernels. This crate is the
//! trace half of that substrate, rebuilt from scratch:
//!
//! * [`Inst`] — a compact, architecture-neutral instruction representation
//!   with explicit *communication events* ([`CommEvent`]) and *programming
//!   model* operations ([`SpecialOp`]) so the same kernel trace can be
//!   replayed under any memory-model design point.
//! * [`PhasedTrace`] — a trace structured into the paper's three execution
//!   phases (sequential, parallel, communication).
//! * [`kernels`] — deterministic generators for the paper's six kernels
//!   (reduction, matrix multiply, convolution, DCT, merge sort, k-means)
//!   whose instruction counts, communication counts, and initial transfer
//!   sizes reproduce Table III of the paper exactly at scale 1.
//! * [`Characteristics`] — the Table III statistics computed from any trace.
//!
//! ## Example
//!
//! ```
//! use hetmem_trace::kernels::{Kernel, KernelParams};
//!
//! // Generate a down-scaled reduction trace and inspect its characteristics.
//! let trace = Kernel::Reduction.generate(&KernelParams::scaled(16));
//! let stats = trace.characteristics();
//! assert_eq!(stats.communications, 2); // comm events are scale-invariant
//! assert!(stats.cpu_instructions > 0 && stats.gpu_instructions > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod characteristics;
mod encode;
mod inst;
pub mod kernels;
mod phase;
mod stream;

pub use builder::{AddressPattern, InstMix, TraceBuilder};
pub use characteristics::Characteristics;
pub use encode::{parse_trace, write_trace, TraceParseError};
pub use inst::{
    Addr, CacheLevel, CommEvent, CommKind, Inst, InstClass, MemSpace, SpecialOp, TransferDirection,
};
pub use phase::{Phase, PhaseSegment, PhasedTrace};
pub use stream::TraceStream;

/// The two classes of processing unit in the modelled heterogeneous system.
///
/// The paper uses the term *processing unit (PU)* for either; the baseline
/// system has one CPU (out-of-order, 3.5 GHz) and one GPU (in-order 8-wide
/// SIMD, 1.5 GHz).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PuKind {
    /// General-purpose out-of-order core.
    Cpu,
    /// Throughput-oriented in-order SIMD accelerator core.
    Gpu,
}

impl PuKind {
    /// All processing-unit kinds, in a stable order.
    pub const ALL: [PuKind; 2] = [PuKind::Cpu, PuKind::Gpu];

    /// The other kind of processing unit.
    ///
    /// ```
    /// use hetmem_trace::PuKind;
    /// assert_eq!(PuKind::Cpu.peer(), PuKind::Gpu);
    /// ```
    #[must_use]
    pub fn peer(self) -> PuKind {
        match self {
            PuKind::Cpu => PuKind::Gpu,
            PuKind::Gpu => PuKind::Cpu,
        }
    }
}

impl std::fmt::Display for PuKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PuKind::Cpu => f.write_str("CPU"),
            PuKind::Gpu => f.write_str("GPU"),
        }
    }
}
