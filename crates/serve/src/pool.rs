//! The sharded worker pool: bounded per-shard queues, admission control,
//! coalescing of identical in-flight jobs, per-job deadlines, and a
//! graceful drain that finishes every accepted job.
//!
//! The pool is generic over the job's result type and executes plain
//! closures, which keeps it independently testable: the concurrency
//! tests gate closures on [`std::sync::Barrier`]s instead of sleeping,
//! so queue-full, coalescing, deadline, and drain behaviour are asserted
//! deterministically.
//!
//! Sharding mirrors the design the rest of the workspace uses for
//! content addressing: a job's shard is `fnv1a(key) % workers`, so
//! identical jobs always land on the same queue and the in-flight map
//! can coalesce them without a global queue lock. Lock order is
//! *in-flight map, then shard queue*; workers only ever take one of the
//! two at a time.

use crate::metrics::Metrics;
use hetmem_core::hash::fnv1a;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// How a finished job ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome<R> {
    /// The job executed and produced a result.
    Done(R),
    /// The job's deadline expired while it waited in the queue; it was
    /// never executed.
    DeadlineExceeded {
        /// Milliseconds the job waited before expiry was discovered.
        waited_ms: u64,
    },
}

/// Why a submission was refused at admission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Rejected {
    /// The target shard's queue is at its configured depth.
    QueueFull {
        /// The configured per-shard depth the queue is at.
        depth: usize,
    },
    /// The pool is draining and accepts no new work.
    Draining,
}

/// One job's result slot, shared by every coalesced waiter.
#[derive(Debug)]
struct Slot<R> {
    state: Mutex<Option<Outcome<R>>>,
    ready: Condvar,
}

impl<R> Slot<R> {
    fn new() -> Slot<R> {
        Slot {
            state: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn fulfill(&self, outcome: Outcome<R>) {
        let mut state = self.state.lock().expect("slot lock");
        *state = Some(outcome);
        self.ready.notify_all();
    }
}

/// A claim on a submitted job's eventual outcome.
#[derive(Debug)]
pub struct Ticket<R> {
    slot: Arc<Slot<R>>,
    /// Whether this submission piggybacked on an identical in-flight job
    /// instead of enqueueing a new execution.
    pub coalesced: bool,
}

impl<R: Clone> Ticket<R> {
    /// Blocks until the job finishes (or its deadline expiry is
    /// discovered) and returns the outcome.
    ///
    /// # Panics
    ///
    /// Panics if the slot mutex is poisoned (a worker panicked).
    #[must_use]
    pub fn wait(&self) -> Outcome<R> {
        let mut state = self.slot.state.lock().expect("slot lock");
        loop {
            if let Some(outcome) = state.clone() {
                return outcome;
            }
            state = self.slot.ready.wait(state).expect("slot lock");
        }
    }
}

type Work<R> = Box<dyn FnOnce() -> R + Send>;

struct Queued<R> {
    key: String,
    slot: Arc<Slot<R>>,
    work: Work<R>,
    deadline: Option<Instant>,
    enqueued: Instant,
}

struct Shard<R> {
    queue: Mutex<VecDeque<Queued<R>>>,
    available: Condvar,
}

struct Inner<R> {
    shards: Vec<Shard<R>>,
    inflight: Mutex<HashMap<String, Arc<Slot<R>>>>,
    draining: AtomicBool,
    queued: AtomicU64,
    busy: AtomicU64,
    queue_depth: usize,
    metrics: Arc<Metrics>,
}

impl<R> Inner<R> {
    fn shard_of(&self, key: &str) -> &Shard<R> {
        let index = usize::try_from(fnv1a(key.as_bytes()) % self.shards.len() as u64)
            .expect("shard index fits");
        &self.shards[index]
    }

    fn forget(&self, key: &str) {
        self.inflight.lock().expect("inflight lock").remove(key);
    }
}

/// A fixed-size pool of worker threads, one per shard.
pub struct ShardedPool<R> {
    inner: Arc<Inner<R>>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl<R: Clone + Send + 'static> ShardedPool<R> {
    /// Starts `workers` threads, each owning one shard with a queue
    /// bounded at `queue_depth`.
    ///
    /// # Panics
    ///
    /// Panics if `workers` or `queue_depth` is zero.
    #[must_use]
    pub fn start(workers: usize, queue_depth: usize, metrics: Arc<Metrics>) -> ShardedPool<R> {
        assert!(workers > 0, "pool needs at least one worker");
        assert!(queue_depth > 0, "queue depth must be positive");
        let inner = Arc::new(Inner {
            shards: (0..workers)
                .map(|_| Shard {
                    queue: Mutex::new(VecDeque::new()),
                    available: Condvar::new(),
                })
                .collect(),
            inflight: Mutex::new(HashMap::new()),
            draining: AtomicBool::new(false),
            queued: AtomicU64::new(0),
            busy: AtomicU64::new(0),
            queue_depth,
            metrics,
        });
        let handles = (0..workers)
            .map(|index| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("hetmem-serve-worker-{index}"))
                    .spawn(move || worker_loop(&inner, index))
                    .expect("spawn worker")
            })
            .collect();
        ShardedPool {
            inner,
            workers: Mutex::new(handles),
        }
    }

    /// Submits a job. An identical in-flight `key` coalesces onto the
    /// existing execution; otherwise the job is enqueued on its shard,
    /// subject to the queue-depth admission bound.
    ///
    /// # Errors
    ///
    /// Returns [`Rejected`] when the shard queue is full or the pool is
    /// draining.
    ///
    /// # Panics
    ///
    /// Panics if an internal lock is poisoned (a worker panicked).
    pub fn submit(
        &self,
        key: &str,
        deadline: Option<Instant>,
        work: impl FnOnce() -> R + Send + 'static,
    ) -> Result<Ticket<R>, Rejected> {
        let inner = &self.inner;
        if inner.draining.load(Ordering::SeqCst) {
            return Err(Rejected::Draining);
        }
        // Hold the in-flight lock across admission so two identical
        // concurrent submissions cannot both enqueue (lock order:
        // inflight, then shard queue).
        let mut inflight = inner.inflight.lock().expect("inflight lock");
        if let Some(slot) = inflight.get(key) {
            inner.metrics.bump(&inner.metrics.coalesced_jobs);
            return Ok(Ticket {
                slot: Arc::clone(slot),
                coalesced: true,
            });
        }
        let shard = inner.shard_of(key);
        let mut queue = shard.queue.lock().expect("shard lock");
        if queue.len() >= inner.queue_depth {
            return Err(Rejected::QueueFull {
                depth: inner.queue_depth,
            });
        }
        let slot = Arc::new(Slot::new());
        inflight.insert(key.to_owned(), Arc::clone(&slot));
        queue.push_back(Queued {
            key: key.to_owned(),
            slot: Arc::clone(&slot),
            work: Box::new(work),
            deadline,
            enqueued: Instant::now(),
        });
        inner.queued.fetch_add(1, Ordering::Relaxed);
        shard.available.notify_one();
        Ok(Ticket {
            slot,
            coalesced: false,
        })
    }

    /// Jobs currently waiting in queues (excludes the one per worker
    /// that may be executing).
    #[must_use]
    pub fn queued(&self) -> u64 {
        self.inner.queued.load(Ordering::Relaxed)
    }

    /// Workers currently executing a job.
    #[must_use]
    pub fn busy(&self) -> u64 {
        self.inner.busy.load(Ordering::Relaxed)
    }

    /// The number of worker threads (== shards).
    #[must_use]
    pub fn workers(&self) -> u64 {
        self.inner.shards.len() as u64
    }

    /// Whether the pool has begun draining.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.inner.draining.load(Ordering::SeqCst)
    }

    /// Stops admission, lets every already-accepted job run to
    /// completion, and joins the workers. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked.
    pub fn drain(&self) {
        self.inner.draining.store(true, Ordering::SeqCst);
        for shard in &self.inner.shards {
            // Take the lock so the wake-up cannot slip between a
            // worker's empty-queue check and its wait.
            let _guard = shard.queue.lock().expect("shard lock");
            shard.available.notify_all();
        }
        let handles = std::mem::take(&mut *self.workers.lock().expect("workers lock"));
        for handle in handles {
            handle.join().expect("worker thread");
        }
    }
}

fn worker_loop<R: Clone>(inner: &Inner<R>, index: usize) {
    let shard = &inner.shards[index];
    loop {
        let job = {
            let mut queue = shard.queue.lock().expect("shard lock");
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if inner.draining.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shard.available.wait(queue).expect("shard lock");
            }
        };
        let Some(job) = job else { break };
        inner.queued.fetch_sub(1, Ordering::Relaxed);
        // Monotonic clocks make `now >= deadline` deterministic for a
        // deadline set to the submission instant (deadline_ms = 0).
        if job.deadline.is_some_and(|d| Instant::now() >= d) {
            let waited = u64::try_from(job.enqueued.elapsed().as_millis()).unwrap_or(u64::MAX);
            inner.metrics.bump(&inner.metrics.deadline_timeouts);
            inner.forget(&job.key);
            job.slot
                .fulfill(Outcome::DeadlineExceeded { waited_ms: waited });
            continue;
        }
        inner.busy.fetch_add(1, Ordering::Relaxed);
        let result = (job.work)();
        inner.busy.fetch_sub(1, Ordering::Relaxed);
        inner.metrics.bump(&inner.metrics.jobs_completed);
        // Remove the key before publishing the result: a submission that
        // misses the in-flight map starts a fresh (deterministic)
        // execution rather than waiting on a completed slot.
        inner.forget(&job.key);
        job.slot.fulfill(Outcome::Done(result));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;
    use std::time::Duration;

    fn pool(workers: usize, depth: usize) -> (ShardedPool<u32>, Arc<Metrics>) {
        let metrics = Arc::new(Metrics::default());
        (
            ShardedPool::start(workers, depth, Arc::clone(&metrics)),
            metrics,
        )
    }

    /// A job that signals `started` once a worker picks it up and then
    /// blocks until `release` is passed — the deterministic replacement
    /// for sleeping.
    fn gated(
        started: &Arc<Barrier>,
        release: &Arc<Barrier>,
        value: u32,
    ) -> impl FnOnce() -> u32 + Send + 'static {
        let started = Arc::clone(started);
        let release = Arc::clone(release);
        move || {
            started.wait();
            release.wait();
            value
        }
    }

    #[test]
    fn queue_full_submissions_are_rejected_not_queued() {
        let (pool, metrics) = pool(1, 1);
        let started = Arc::new(Barrier::new(2));
        let release = Arc::new(Barrier::new(2));
        let a = pool
            .submit("job-a", None, gated(&started, &release, 1))
            .expect("a admitted");
        started.wait(); // the single worker is now busy with A
        let b = pool.submit("job-b", None, || 2).expect("b fills the queue");
        let c = pool.submit("job-c", None, || 3);
        assert_eq!(c.unwrap_err(), Rejected::QueueFull { depth: 1 });
        assert_eq!(pool.queued(), 1);
        release.wait();
        assert_eq!(a.wait(), Outcome::Done(1));
        assert_eq!(b.wait(), Outcome::Done(2));
        assert_eq!(metrics.jobs_completed.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn identical_inflight_jobs_coalesce_into_one_execution() {
        let (pool, metrics) = pool(1, 4);
        let started = Arc::new(Barrier::new(2));
        let release = Arc::new(Barrier::new(2));
        let executions = Arc::new(AtomicU64::new(0));
        let make = |v| {
            let started = Arc::clone(&started);
            let release = Arc::clone(&release);
            let executions = Arc::clone(&executions);
            move || {
                executions.fetch_add(1, Ordering::SeqCst);
                started.wait();
                release.wait();
                v
            }
        };
        let first = pool.submit("same-key", None, make(7)).expect("admitted");
        started.wait(); // the execution is live, key still in flight
        let second = pool.submit("same-key", None, make(8)).expect("coalesced");
        assert!(!first.coalesced);
        assert!(second.coalesced);
        release.wait();
        // Both tickets observe the single execution's result.
        assert_eq!(first.wait(), Outcome::Done(7));
        assert_eq!(second.wait(), Outcome::Done(7));
        assert_eq!(executions.load(Ordering::SeqCst), 1);
        assert_eq!(metrics.coalesced_jobs.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn expired_deadline_returns_timeout_without_executing() {
        let (pool, metrics) = pool(1, 4);
        let started = Arc::new(Barrier::new(2));
        let release = Arc::new(Barrier::new(2));
        let a = pool
            .submit("hold", None, gated(&started, &release, 1))
            .expect("admitted");
        started.wait();
        // Deadline == submission instant: guaranteed expired by the time
        // the worker pops it, however fast that is.
        let b = pool
            .submit("late", Some(Instant::now()), || {
                unreachable!("must not run")
            })
            .expect("admitted");
        release.wait();
        assert_eq!(a.wait(), Outcome::Done(1));
        assert!(matches!(b.wait(), Outcome::DeadlineExceeded { .. }));
        assert_eq!(metrics.deadline_timeouts.load(Ordering::Relaxed), 1);
        // A live deadline is honoured, not refused.
        let ok = pool
            .submit(
                "fresh",
                Some(Instant::now() + Duration::from_secs(3600)),
                || 9,
            )
            .expect("admitted");
        assert_eq!(ok.wait(), Outcome::Done(9));
    }

    #[test]
    fn drain_completes_every_accepted_job_then_refuses_new_ones() {
        let (pool, _) = pool(2, 8);
        let started = Arc::new(Barrier::new(2));
        let release = Arc::new(Barrier::new(2));
        let held = pool
            .submit("held", None, gated(&started, &release, 1))
            .expect("admitted");
        started.wait();
        // Queue more work behind the busy worker and on the idle one.
        let tickets: Vec<_> = (0..4)
            .map(|i| {
                pool.submit(&format!("queued-{i}"), None, move || 10 + i)
                    .expect("admitted")
            })
            .collect();
        let drainer = {
            let release = Arc::clone(&release);
            std::thread::spawn(move || {
                release.wait(); // un-gate the held job, then drain
            })
        };
        pool.drain();
        drainer.join().expect("drainer");
        assert_eq!(held.wait(), Outcome::Done(1));
        for (i, t) in tickets.iter().enumerate() {
            assert_eq!(
                t.wait(),
                Outcome::Done(10 + u32::try_from(i).expect("small"))
            );
        }
        assert_eq!(
            pool.submit("after-drain", None, || 0).unwrap_err(),
            Rejected::Draining
        );
        assert!(pool.is_draining());
        // Idempotent.
        pool.drain();
    }

    #[test]
    fn results_do_not_leak_across_distinct_keys() {
        let (pool, _) = pool(4, 16);
        let tickets: Vec<_> = (0..32u32)
            .map(|i| {
                pool.submit(&format!("key-{i}"), None, move || i * i)
                    .expect("admitted")
            })
            .collect();
        for (i, t) in tickets.iter().enumerate() {
            let i = u32::try_from(i).expect("small");
            assert_eq!(t.wait(), Outcome::Done(i * i));
        }
        pool.drain();
        assert_eq!(pool.busy(), 0);
        assert_eq!(pool.queued(), 0);
    }
}
