//! # hetmem-serve
//!
//! A batched simulation service over the hetmem design-space explorer:
//! a std-only HTTP/1.1 JSON API that accepts `sim`, `sweep`, and
//! `check` jobs, validates them into the same deterministic job
//! representations [`hetmem_xplore`] executes, and runs them on a
//! sharded worker pool with:
//!
//! * **content-addressed result reuse** — `/v1/sim` shares the
//!   [`hetmem_xplore::DiskCache`] with `hetmem sweep --cache-dir`, so a
//!   repeated request (or one a sweep already covered) is answered
//!   without simulating;
//! * **request coalescing** — identical in-flight jobs share one
//!   execution;
//! * **bounded-queue admission control** — a burst past the configured
//!   queue depth is answered `429` with `Retry-After` instead of
//!   growing memory;
//! * **per-request deadlines** — a job whose `deadline_ms` expires
//!   before a worker starts it is answered `504` with the typed
//!   [`hetmem_sim::SimError::DeadlineExceeded`] message;
//! * **graceful drain** — `POST /v1/shutdown` stops admission,
//!   completes every accepted job, and then stops the workers;
//! * **live metrics** — `GET /metrics` reports queue depth, worker
//!   utilization, cache hit rate, latency histograms, and the aggregate
//!   [`hetmem_sim::EventCounts`] folded in from live runs;
//! * **clustering** — with `--advertise` / `--join`, several servers
//!   form a fleet over [`hetmem_cluster`]: the content-key space is
//!   sharded across a consistent-hash ring, requests are forwarded to
//!   their owning node (and coalesced there), hot cache entries are
//!   replicated to the ring successor, and `/metrics?cluster=1` merges
//!   every member's counters.
//!
//! ## Endpoints
//!
//! | Method | Path            | Behaviour                                     |
//! |--------|-----------------|-----------------------------------------------|
//! | POST   | `/v1/sim`       | One kernel × system cell; body is byte-identical to `hetmem sim --format json` |
//! | POST   | `/v1/sweep`     | Async grid; answers `202` with a poll URL      |
//! | POST   | `/v1/search`    | Async guided multi-objective search; the poll URL reports the Pareto frontier-so-far |
//! | POST   | `/v1/check`     | Static verifier; answers the checker's JSONL   |
//! | GET    | `/v1/jobs/<id>` | Async job status / result (running searches include a `progress` object) |
//! | GET    | `/healthz`      | Liveness (`ok` / `draining`)                   |
//! | GET    | `/v1/health`    | Liveness + readiness; `503` with `Retry-After` while draining |
//! | GET    | `/metrics`      | The metric registry as JSON (`?cluster=1` merges the whole fleet) |
//! | POST   | `/v1/shutdown`  | Graceful drain (std-only binaries cannot trap signals) |
//!
//! ## Example
//!
//! ```
//! use hetmem_serve::{ServeOptions, Server};
//! use std::io::{Read as _, Write as _};
//!
//! let server = Server::start(&ServeOptions {
//!     addr: "127.0.0.1:0".to_owned(),
//!     workers: 1,
//!     ..ServeOptions::default()
//! })
//! .expect("start");
//! let mut conn = std::net::TcpStream::connect(server.local_addr()).expect("connect");
//! conn.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").expect("write");
//! let mut reply = String::new();
//! conn.read_to_string(&mut reply).expect("read");
//! assert!(reply.contains("\"status\":\"ok\""));
//! server.shutdown();
//! server.wait();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod jobs;
pub mod metrics;
pub mod pool;
pub mod server;

pub use http::{query_flag, Request, Response};
pub use jobs::{
    parse_check_request, parse_fix_request, parse_search_request, parse_sim_request,
    parse_sweep_request, run_check_request, run_fix_request, run_search_request, run_sim,
    run_sweep_request, search_progress_json, CheckRequest, JobState, Registry, SearchRequest,
    SimRequest, SweepRequest, DEFAULT_SCALE,
};
pub use metrics::{merge_metrics, LatencyHistogram, Metrics};
pub use pool::{Outcome, Rejected, ShardedPool, Ticket};
pub use server::{JobResult, ServeOptions, Server};
