//! A minimal HTTP/1.1 layer over `std::net` — exactly the subset the
//! service needs: one request per connection, `Content-Length` bodies,
//! and deterministic response rendering.
//!
//! The build environment has no registry access (the constraint PR 1
//! established for JSON), so there is no hyper/axum here; the parser
//! accepts the request line, a bounded header block, and an optional
//! body, and rejects anything else with a typed [`HttpError`] the server
//! maps to a 4xx response.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on header block size; larger requests are rejected.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// Upper bound on request body size; larger requests are rejected.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request: method, path, lower-cased headers, UTF-8 body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// The HTTP method, upper-cased (`GET`, `POST`, ...).
    pub method: String,
    /// The request path, without query string.
    pub path: String,
    /// The query string after `?`, if any (kept verbatim).
    pub query: Option<String>,
    /// Headers as `(lowercase-name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: String,
}

impl Request {
    /// The first value of `name` (lower-case), if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Whether a query string enables the boolean parameter `name`.
///
/// `?name`, `?name=1`, and `?name=true` all enable it; `?name=0` and
/// `?name=false` (or its absence) do not. Values are matched verbatim —
/// the query grammar the service accepts has no percent-encoding.
#[must_use]
pub fn query_flag(query: Option<&str>, name: &str) -> bool {
    query.is_some_and(|query| {
        query.split('&').any(|pair| {
            let (key, value) = pair.split_once('=').unwrap_or((pair, "1"));
            key == name && matches!(value, "1" | "true")
        })
    })
}

/// Why a request could not be parsed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HttpError {
    /// The socket closed or failed mid-request.
    Io(String),
    /// The request line or header block is malformed or oversized.
    BadRequest(String),
    /// The declared body exceeds [`MAX_BODY_BYTES`].
    TooLarge(usize),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(msg) => write!(f, "i/o: {msg}"),
            HttpError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            HttpError::TooLarge(n) => write!(f, "body of {n} bytes exceeds limit"),
        }
    }
}

/// Reads and parses one HTTP/1.1 request from `stream`.
///
/// # Errors
///
/// Returns [`HttpError`] on socket failure, a malformed request line or
/// header, or an oversized header block / body.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| HttpError::Io(e.to_string()))?;
    if line.is_empty() {
        return Err(HttpError::Io("connection closed before request".into()));
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("request line has no path".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("request line has no version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "unsupported version {version:?}"
        )));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), Some(q.to_owned())),
        None => (target.to_owned(), None),
    };

    let mut headers = Vec::new();
    let mut header_bytes = 0;
    loop {
        let mut h = String::new();
        reader
            .read_line(&mut h)
            .map_err(|e| HttpError::Io(e.to_string()))?;
        header_bytes += h.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(HttpError::BadRequest("header block too large".into()));
        }
        let h = h.trim_end_matches(['\r', '\n']);
        if h.is_empty() {
            break;
        }
        let (name, value) = h
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("malformed header {h:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::BadRequest(format!("bad content-length {v:?}")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge(content_length));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| HttpError::Io(e.to_string()))?;
    let body = String::from_utf8(body)
        .map_err(|_| HttpError::BadRequest("body is not valid UTF-8".into()))?;

    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

/// A response under construction.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers beyond the standard set.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: String,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
}

impl Response {
    /// A JSON response with the given status.
    #[must_use]
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body,
            content_type: "application/json",
        }
    }

    /// Adds a header.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_owned(), value.to_owned()));
        self
    }

    /// The status line's reason phrase.
    #[must_use]
    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "",
        }
    }

    /// Serializes the response (status line, headers, blank line, body).
    #[must_use]
    pub fn render(&self) -> Vec<u8> {
        let mut out = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n",
            self.status,
            Response::reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            out.push_str(name);
            out.push_str(": ");
            out.push_str(value);
            out.push_str("\r\n");
        }
        out.push_str("\r\n");
        let mut bytes = out.into_bytes();
        bytes.extend_from_slice(self.body.as_bytes());
        bytes
    }

    /// Writes the response to `stream`. Write failures are swallowed —
    /// the client is gone and the server has nothing left to tell it.
    pub fn send(&self, stream: &mut TcpStream) {
        let _ = stream.write_all(&self.render());
        let _ = stream.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn round_trip(raw: &str) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let raw = raw.to_owned();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(raw.as_bytes()).expect("write");
        });
        let (mut conn, _) = listener.accept().expect("accept");
        let req = read_request(&mut conn);
        client.join().expect("client");
        req
    }

    #[test]
    fn parses_post_with_body() {
        let req = round_trip(
            "POST /v1/sim?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 7\r\n\r\n{\"a\":1}",
        )
        .expect("parses");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/sim");
        assert_eq!(req.query.as_deref(), Some("x=1"));
        assert_eq!(req.header("host"), Some("h"));
        assert_eq!(req.body, "{\"a\":1}");
    }

    #[test]
    fn parses_get_without_body() {
        let req = round_trip("GET /healthz HTTP/1.1\r\n\r\n").expect("parses");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(matches!(
            round_trip("NONSENSE\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            round_trip("GET / SPDY/3\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            round_trip("POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n"),
            Err(HttpError::TooLarge(_))
        ));
    }

    #[test]
    fn query_flags_parse() {
        assert!(query_flag(Some("cluster=1"), "cluster"));
        assert!(query_flag(Some("a=2&cluster=true"), "cluster"));
        assert!(query_flag(Some("cluster"), "cluster"));
        assert!(!query_flag(Some("cluster=0"), "cluster"));
        assert!(!query_flag(Some("clusters=1"), "cluster"));
        assert!(!query_flag(None, "cluster"));
    }

    #[test]
    fn response_renders_status_headers_and_body() {
        let bytes = Response::json(429, "{\"error\":\"full\"}".into())
            .with_header("retry-after", "1")
            .render();
        let text = String::from_utf8(bytes).expect("utf8");
        assert!(
            text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{text}"
        );
        assert!(text.contains("retry-after: 1\r\n"), "{text}");
        assert!(text.contains("content-length: 16\r\n"), "{text}");
        assert!(text.ends_with("{\"error\":\"full\"}"), "{text}");
    }
}
