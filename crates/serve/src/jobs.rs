//! Request payloads, their validation into the deterministic job
//! representations `hetmem-xplore` executes, and the async job registry
//! behind `GET /v1/jobs/<id>`.
//!
//! Every endpoint's body is parsed with the workspace's own JSON module
//! and validated with the same `parse_kernel` / `parse_system` /
//! `parse_space` vocabulary the CLI uses, so a request that works on the
//! command line works over HTTP with the same spelling — and produces
//! the same bytes.

use crate::metrics::Metrics;
use hetmem_cluster::ClusterNode;
use hetmem_core::experiment::ExperimentConfig;
use hetmem_core::AddressSpace;
use hetmem_search::{
    run_search, Objective, ProgressHook, SearchConfig, SearchOptions, SearchProgress, SearchSpace,
    Strategy,
};
use hetmem_sim::{EventTrace, ExecMode};
use hetmem_xplore::dispatch::{decode_part, render_part_records};
use hetmem_xplore::{
    check_reports_to_jsonl, content_key_with, execute_job_observed, fix_reports_to_jsonl,
    parse_kernel, parse_space, parse_system, report_to_json, run_jobs, DiskCache, Job,
    JobDispatcher, JobKind, Json, SweepOptions, SweepSpec,
};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Trace scale used when a request omits `"scale"` — small enough for an
/// interactive round-trip, large enough to exercise every phase.
pub const DEFAULT_SCALE: u32 = 64;

fn parse_body(body: &str) -> Result<Json, String> {
    hetmem_xplore::json::parse(body).map_err(|e| format!("malformed JSON body: {e}"))
}

fn opt_u64(v: &Json, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None => Ok(None),
        Some(field) => field
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("field {key:?} must be a non-negative integer")),
    }
}

/// Parses the shared optional `"mode"` field (`"accurate"`,
/// `"event-driven"`, `"sampled"`, or `"sampled:WARM:DETAIL"`), defaulting
/// to accurate — the same vocabulary as the CLI's `--mode` flag.
fn opt_mode(v: &Json) -> Result<ExecMode, String> {
    match v.get("mode") {
        None => Ok(ExecMode::Accurate),
        Some(field) => ExecMode::parse(
            field
                .as_str()
                .ok_or_else(|| "field \"mode\" must be a string".to_owned())?,
        ),
    }
}

fn req_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("field {key:?} is required and must be a string"))
}

fn opt_str_list(v: &Json, key: &str) -> Result<Option<Vec<String>>, String> {
    match v.get(key) {
        None => Ok(None),
        Some(Json::Arr(items)) => items
            .iter()
            .map(|item| {
                item.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| format!("field {key:?} must contain only strings"))
            })
            .collect::<Result<Vec<_>, _>>()
            .map(Some),
        Some(_) => Err(format!("field {key:?} must be an array of strings")),
    }
}

/// `POST /v1/sim`: one kernel on one evaluated system.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimRequest {
    /// The kernel to trace (Table III name or alias).
    pub kernel: hetmem_trace::kernels::Kernel,
    /// The evaluated system to run it on (Figure 5/6 label or alias).
    pub system: hetmem_core::EvaluatedSystem,
    /// Trace scale divisor.
    pub scale: u32,
    /// Execution mode (accurate by default).
    pub mode: ExecMode,
    /// Optional deadline: the job must *start* within this budget or the
    /// service answers 504 instead of running it.
    pub deadline_ms: Option<u64>,
}

/// Parses and validates a `/v1/sim` body:
/// `{"kernel": "...", "system": "...", "scale"?: N, "mode"?: "...",
///   "deadline_ms"?: N}`.
///
/// # Errors
///
/// Returns a one-line message (rendered as a 400) on malformed JSON,
/// missing fields, or unknown kernel/system names.
pub fn parse_sim_request(body: &str) -> Result<SimRequest, String> {
    let v = parse_body(body)?;
    let kernel = parse_kernel(req_str(&v, "kernel")?)?;
    let system = parse_system(req_str(&v, "system")?)?;
    let scale = match opt_u64(&v, "scale")? {
        None => DEFAULT_SCALE,
        Some(0) => return Err("field \"scale\" must be positive".to_owned()),
        Some(n) => u32::try_from(n).map_err(|_| "field \"scale\" is out of range".to_owned())?,
    };
    Ok(SimRequest {
        kernel,
        system,
        scale,
        mode: opt_mode(&v)?,
        deadline_ms: opt_u64(&v, "deadline_ms")?,
    })
}

impl SimRequest {
    /// The xplore job and configuration this request denotes. The
    /// configuration is the CLI's default (Table II baseline, Table IV
    /// costs), so the response body is byte-identical to
    /// `hetmem sim <trace> <system> --format json` at the same scale.
    #[must_use]
    pub fn job(&self) -> (Job, ExperimentConfig) {
        (
            Job {
                id: 0,
                kernel: self.kernel,
                kind: JobKind::CaseStudy {
                    system: self.system,
                },
                scale: self.scale,
            },
            ExperimentConfig::scaled(self.scale),
        )
    }

    /// The content key addressing this request in the shared result
    /// cache — the same key a sweep over the same cell (in the same
    /// execution mode) would use.
    #[must_use]
    pub fn content_key(&self) -> String {
        let (job, config) = self.job();
        content_key_with(&job, &config, None, self.mode)
    }
}

/// Executes one sim request: answered from `cache` when the content key
/// is present, from a replica a cluster predecessor pushed here
/// otherwise, and simulated live (with event counts folded into
/// `metrics`) as the last resort. When the node owns the key on the
/// cluster ring, the access is counted toward hot-entry replication.
/// Returns the response body — the CLI's JSON object plus trailing
/// newline.
///
/// # Errors
///
/// Returns a one-line message (rendered as a 500) when the simulation
/// fails.
pub fn run_sim(
    req: &SimRequest,
    cache: Option<&DiskCache>,
    cluster: Option<&ClusterNode>,
    metrics: &Metrics,
) -> Result<String, String> {
    let (job, config) = req.job();
    let key = req.content_key();
    let record = match cache.and_then(|c| c.get(&key)) {
        Some(record) => {
            metrics.bump(&metrics.cache_hits);
            record
        }
        None => match cluster.and_then(|node| node.replica_take(&key)) {
            Some(record) => {
                // A predecessor replicated this entry here before dying
                // (or before the ring rehashed the key to this node).
                // Promote it into the local disk cache so the next
                // lookup is an ordinary hit.
                metrics.bump(&metrics.cache_hits);
                if let Some(c) = cache {
                    if let Err(e) = c.put(&key, &record) {
                        eprintln!("warning: cache write failed: {e}");
                    }
                }
                record
            }
            None => {
                metrics.bump(&metrics.cache_misses);
                let trace = hetmem_xplore::job_trace(&job);
                // A single-slot ring: the exact totals survive eviction,
                // and the service only keeps the totals.
                let (record, events) = execute_job_observed(
                    &job,
                    &config,
                    &trace,
                    EventTrace::with_capacity(1),
                    req.mode,
                )
                .map_err(|e| e.to_string())?;
                metrics.absorb_events(events.counts());
                if let Some(c) = cache {
                    if let Err(e) = c.put(&key, &record) {
                        eprintln!("warning: cache write failed: {e}");
                    }
                }
                record
            }
        },
    };
    if let Some(node) = cluster {
        node.note_access(&key, &record);
    }
    let value = Json::obj(vec![
        ("system", Json::Str(record.target.clone())),
        ("total_ticks", Json::UInt(record.report.total_ticks())),
        ("report", report_to_json(&record.report)),
    ]);
    Ok(format!("{}\n", value.render()))
}

/// `POST /v1/sweep`: a declarative grid, executed asynchronously.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepRequest {
    /// The axes to cover; omitted axes default to the paper's full set.
    pub spec: SweepSpec,
    /// Execution mode for every job (accurate by default).
    pub mode: ExecMode,
    /// Optional start deadline, as for [`SimRequest::deadline_ms`].
    pub deadline_ms: Option<u64>,
}

/// Parses and validates a `/v1/sweep` body:
/// `{"kernels"?: [...], "systems"?: [...], "spaces"?: [...],
///   "scales"?: [N, ...], "mode"?: "...", "deadline_ms"?: N}`.
/// Omitted axes cover the full paper grid at [`DEFAULT_SCALE`]; an
/// explicitly empty `"systems"` or `"spaces"` array skips that family.
///
/// # Errors
///
/// Returns a one-line message (rendered as a 400) on malformed JSON,
/// unknown names, or an empty expansion.
pub fn parse_sweep_request(body: &str) -> Result<SweepRequest, String> {
    let v = parse_body(body)?;
    let spec = parse_axes(&v)?;
    if spec.expand().is_empty() {
        return Err("the requested sweep expands to zero jobs".to_owned());
    }
    Ok(SweepRequest {
        spec,
        mode: opt_mode(&v)?,
        deadline_ms: opt_u64(&v, "deadline_ms")?,
    })
}

/// Parses the shared `kernels`/`systems`/`spaces`/`scales` axes used by
/// both `/v1/sweep` and `/v1/search` bodies.
fn parse_axes(v: &Json) -> Result<SweepSpec, String> {
    let full = SweepSpec::full(DEFAULT_SCALE);
    let kernels = match opt_str_list(v, "kernels")? {
        None => full.kernels,
        Some(names) => names
            .iter()
            .map(|n| parse_kernel(n))
            .collect::<Result<_, _>>()?,
    };
    let systems = match opt_str_list(v, "systems")? {
        None => full.systems,
        Some(names) => names
            .iter()
            .map(|n| parse_system(n))
            .collect::<Result<_, _>>()?,
    };
    let spaces = match opt_str_list(v, "spaces")? {
        None => full.spaces,
        Some(names) => names
            .iter()
            .map(|n| parse_space(n))
            .collect::<Result<_, _>>()?,
    };
    let scales = match v.get("scales") {
        None => vec![DEFAULT_SCALE],
        Some(Json::Arr(items)) => items
            .iter()
            .map(|item| match item.as_u64() {
                Some(n) if n > 0 => u32::try_from(n).map_err(|_| "scale out of range".to_owned()),
                _ => Err("field \"scales\" must contain positive integers".to_owned()),
            })
            .collect::<Result<_, _>>()?,
        Some(_) => return Err("field \"scales\" must be an array of integers".to_owned()),
    };
    Ok(SweepSpec {
        kernels,
        systems,
        spaces,
        scales,
    })
}

impl SweepRequest {
    /// The coalescing key: two requests with the same expansion under
    /// the same configuration share one execution.
    #[must_use]
    pub fn coalesce_key(&self) -> String {
        // Job identities pin the expansion; the scale list pins the
        // configuration (ExperimentConfig::scaled per scale); the mode pins
        // the execution semantics. Per-job hardware fingerprints live in
        // the per-job cache keys.
        let ids: Vec<String> = self.spec.expand().iter().map(Job::identity).collect();
        format!("sweep|{}|{}", self.mode.label(), ids.join(","))
    }
}

/// Executes a sweep request on one engine worker, with per-job results
/// flowing through the shared disk cache. Returns the response body:
/// `{"records": [...], "stats": {...}}`.
///
/// The single inner worker is deliberate: the service's parallelism is
/// the pool's shard count, and one shard must not oversubscribe the
/// host by spawning its own pool.
///
/// # Errors
///
/// Returns a one-line message (rendered as a 500, or a cancellation
/// notice during shutdown) when the sweep fails.
pub fn run_sweep_request(
    req: &SweepRequest,
    cache_dir: Option<PathBuf>,
    cancel: Arc<AtomicBool>,
    metrics: &Metrics,
    dispatcher: Option<Arc<dyn JobDispatcher>>,
) -> Result<String, String> {
    // The CLI `sweep` configuration: per-job scales come from the spec,
    // the hardware/cost point is the paper baseline.
    let config = ExperimentConfig::paper();
    let opts = SweepOptions::builder()
        .workers(1)
        .cache_dir(cache_dir)
        .cancel(Some(cancel))
        .mode(req.mode)
        .dispatcher(dispatcher)
        .build();
    let out = run_jobs(&req.spec.expand(), &config, &opts).map_err(|e| e.to_string())?;
    for _ in 0..out.stats.cache_hits {
        metrics.bump(&metrics.cache_hits);
    }
    for _ in 0..out.stats.cache_misses {
        metrics.bump(&metrics.cache_misses);
    }
    let body = Json::obj(vec![
        (
            "records",
            Json::Arr(out.records.iter().map(|r| r.to_json()).collect()),
        ),
        (
            "stats",
            Json::obj(vec![
                ("jobs", Json::UInt(out.stats.jobs as u64)),
                ("cache_hits", Json::UInt(out.stats.cache_hits)),
                ("cache_misses", Json::UInt(out.stats.cache_misses)),
                (
                    "wall_ms",
                    Json::UInt(u64::try_from(out.stats.wall.as_millis()).unwrap_or(u64::MAX)),
                ),
            ]),
        ),
    ]);
    Ok(body.render())
}

/// Executes one scattered sweep partition — the owner side of a
/// distributed sweep. The part's jobs run on this node's engine with
/// `workers` threads, through the shared disk cache, and the records
/// come back framed by the exact-round-trip part serialization.
///
/// Unlike every HTTP job this does **not** run on the request pool: a
/// part arrives while the entry node's own pool worker is already held
/// by the sweep that scattered it, so routing parts through the pool
/// could deadlock two entry nodes scattering at each other. The caller
/// ([`execute_remote`](crate::server)) bounds concurrent parts instead.
///
/// # Errors
///
/// Returns a one-line message on a malformed part body or a failed job.
pub fn run_sweep_part(
    body: &str,
    cache_dir: Option<PathBuf>,
    workers: usize,
    metrics: &Metrics,
) -> Result<String, String> {
    let part = decode_part(&parse_body(body)?)?;
    let opts = SweepOptions::builder()
        .workers(workers.max(1))
        .cache_dir(cache_dir)
        .timeline_interval(part.timeline_interval)
        .mode(part.mode)
        .build();
    let out = run_jobs(&part.jobs, &part.config, &opts).map_err(|e| e.to_string())?;
    metrics
        .cache_hits
        .fetch_add(out.stats.cache_hits, Ordering::Relaxed);
    metrics
        .cache_misses
        .fetch_add(out.stats.cache_misses, Ordering::Relaxed);
    Ok(render_part_records(&out.records))
}

/// `POST /v1/search`: a guided multi-objective search over the design
/// space, executed asynchronously with frontier-so-far progress.
#[derive(Debug)]
pub struct SearchRequest {
    /// The full search configuration (space, objectives, strategy,
    /// budget, seed).
    pub config: SearchConfig,
    /// Optional start deadline, as for [`SimRequest::deadline_ms`].
    pub deadline_ms: Option<u64>,
}

/// Parses and validates a `/v1/search` body:
/// `{"kernels"?: [...], "systems"?: [...], "spaces"?: [...],
///   "scales"?: [N, ...], "budget"?: N, "seed"?: N,
///   "objectives"?: [...], "strategy"?: "...", "mode"?: "...",
///   "deadline_ms"?: N}`.
/// Axes default as for `/v1/sweep`; the budget defaults to a quarter of
/// the exhaustive sweep, the strategy to successive halving, and the
/// seed to 0.
///
/// # Errors
///
/// Returns a one-line message (rendered as a 400) on malformed JSON,
/// unknown names, duplicate objectives, a zero budget, or an empty
/// space.
pub fn parse_search_request(body: &str) -> Result<SearchRequest, String> {
    let v = parse_body(body)?;
    let space = SearchSpace::from_spec(&parse_axes(&v)?);
    if space.is_empty() || space.kernels.is_empty() {
        return Err("the requested search space is empty".to_owned());
    }
    let objectives = match opt_str_list(&v, "objectives")? {
        None => Objective::ALL.to_vec(),
        Some(names) => {
            let mut objectives = Vec::with_capacity(names.len());
            for name in &names {
                let objective = Objective::parse(name)?;
                if objectives.contains(&objective) {
                    return Err(format!("duplicate objective {:?}", objective.name()));
                }
                objectives.push(objective);
            }
            objectives
        }
    };
    let strategy = match v.get("strategy") {
        None => Strategy::Halving,
        Some(field) => Strategy::parse(
            field
                .as_str()
                .ok_or_else(|| "field \"strategy\" must be a string".to_owned())?,
        )?,
    };
    let budget = match opt_u64(&v, "budget")? {
        None => (space.exhaustive_jobs() / 4).max(space.jobs_per_candidate()),
        Some(0) => return Err("field \"budget\" must be positive".to_owned()),
        Some(n) => usize::try_from(n).map_err(|_| "field \"budget\" is out of range".to_owned())?,
    };
    Ok(SearchRequest {
        config: SearchConfig {
            space,
            objectives,
            strategy,
            budget,
            seed: opt_u64(&v, "seed")?.unwrap_or(0),
            mode: opt_mode(&v)?,
        },
        deadline_ms: opt_u64(&v, "deadline_ms")?,
    })
}

impl SearchRequest {
    /// The coalescing key: identical concurrent searches (same space,
    /// objectives, strategy, budget, and seed) share one execution —
    /// their trajectories are byte-identical by construction.
    #[must_use]
    pub fn coalesce_key(&self) -> String {
        let c = &self.config;
        let kernels: Vec<&str> = c.space.kernels.iter().map(|k| k.name()).collect();
        let targets: Vec<&str> = c.space.targets.iter().map(|t| t.name()).collect();
        let scales: Vec<String> = c.space.scales.iter().map(u32::to_string).collect();
        let objectives: Vec<&str> = c.objectives.iter().map(|o| o.name()).collect();
        format!(
            "search|{}|{}|{}|{}|{}|{}|{}|{}",
            c.strategy.name(),
            c.mode.label(),
            c.seed,
            c.budget,
            objectives.join(","),
            kernels.join(","),
            targets.join(","),
            scales.join(","),
        )
    }
}

/// Renders one [`SearchProgress`] snapshot as the `progress` object the
/// registry splices into a running job's status body.
#[must_use]
pub fn search_progress_json(progress: &SearchProgress) -> Json {
    Json::obj(vec![
        ("round", Json::UInt(progress.round as u64)),
        ("evaluations", Json::UInt(progress.evaluations as u64)),
        ("jobs_submitted", Json::UInt(progress.jobs_submitted as u64)),
        (
            "frontier",
            Json::Arr(
                progress
                    .frontier
                    .iter()
                    .map(|label| Json::Str(label.clone()))
                    .collect(),
            ),
        ),
    ])
}

/// Executes a search request on one engine worker, sharing the sweep's
/// disk cache. Returns the response body: the deterministic
/// [`hetmem_search::SearchResult::to_json`] report.
///
/// The execution counters flow into `metrics` (cache traffic plus the
/// search-specific frontier counters), never into the body — the body is
/// pinned byte-identical across cache states.
///
/// # Errors
///
/// Returns a one-line message (rendered as a 500, or a cancellation
/// notice during shutdown) when the search fails.
pub fn run_search_request(
    req: &SearchRequest,
    cache_dir: Option<PathBuf>,
    cancel: Arc<AtomicBool>,
    metrics: &Metrics,
    on_round: Option<ProgressHook>,
    dispatcher: Option<Arc<dyn JobDispatcher>>,
) -> Result<String, String> {
    let opts = SearchOptions {
        workers: 1,
        cache_dir,
        cancel: Some(cancel),
        on_round,
        dispatcher,
    };
    let result = run_search(&req.config, opts).map_err(|e| e.to_string())?;
    metrics
        .cache_hits
        .fetch_add(result.stats.cache_hits, Ordering::Relaxed);
    metrics
        .cache_misses
        .fetch_add(result.stats.live_executions, Ordering::Relaxed);
    metrics.bump(&metrics.searches_completed);
    metrics
        .search_evaluations
        .fetch_add(result.stats.evaluations as u64, Ordering::Relaxed);
    metrics
        .frontier_points
        .fetch_add(result.frontier.len() as u64, Ordering::Relaxed);
    Ok(result.to_json().render())
}

/// `POST /v1/check`: static memory-model verification of built-in
/// kernels under one or more address-space models.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckRequest {
    /// Built-in kernel names to check.
    pub targets: Vec<String>,
    /// Models to check under; defaults to all four.
    pub models: Vec<AddressSpace>,
    /// Optional start deadline.
    pub deadline_ms: Option<u64>,
}

/// Parses and validates a `/v1/check` body:
/// `{"targets": ["..."], "models"?: ["..."], "deadline_ms"?: N}`.
///
/// # Errors
///
/// Returns a one-line message (rendered as a 400) on malformed JSON or
/// unknown model names. Unknown *targets* are reported at execution.
pub fn parse_check_request(body: &str) -> Result<CheckRequest, String> {
    let v = parse_body(body)?;
    let targets = opt_str_list(&v, "targets")?
        .filter(|t| !t.is_empty())
        .ok_or_else(|| "field \"targets\" must be a non-empty array of kernel names".to_owned())?;
    let models = match opt_str_list(&v, "models")? {
        None => AddressSpace::ALL.to_vec(),
        Some(names) => names
            .iter()
            .map(|n| parse_space(n))
            .collect::<Result<_, _>>()?,
    };
    Ok(CheckRequest {
        targets,
        models,
        deadline_ms: opt_u64(&v, "deadline_ms")?,
    })
}

impl CheckRequest {
    /// The coalescing key for identical concurrent check requests.
    #[must_use]
    pub fn coalesce_key(&self) -> String {
        let models: Vec<String> = self.models.iter().map(|m| m.abbrev().to_owned()).collect();
        format!("check|{}|{}", self.targets.join(","), models.join(","))
    }
}

/// Runs the checker over every target × model combination and renders
/// the same JSONL stream as `hetmem check --format json`.
///
/// # Errors
///
/// Returns a one-line message (rendered as a 500) when a target names no
/// built-in kernel.
pub fn run_check_request(req: &CheckRequest) -> Result<String, String> {
    let mut reports = Vec::new();
    for target in &req.targets {
        let program = hetmem_dsl::programs::find(target)
            .ok_or_else(|| format!("unknown kernel {target:?}"))?;
        for &model in &req.models {
            reports.push(hetmem_dsl::check(&program, model));
        }
    }
    Ok(check_reports_to_jsonl(&reports))
}

/// `POST /v1/fix`: checker-driven communication optimization of built-in
/// kernels under one or more address-space models.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FixRequest {
    /// Built-in kernel names to fix.
    pub targets: Vec<String>,
    /// Models to fix under; defaults to all four.
    pub models: Vec<AddressSpace>,
    /// Optional start deadline.
    pub deadline_ms: Option<u64>,
}

/// Parses and validates a `/v1/fix` body:
/// `{"targets": ["..."], "models"?: ["..."], "deadline_ms"?: N}`.
///
/// # Errors
///
/// Returns a one-line message (rendered as a 400) on malformed JSON or
/// unknown model names. Unknown *targets* are reported at execution.
pub fn parse_fix_request(body: &str) -> Result<FixRequest, String> {
    let v = parse_body(body)?;
    let targets = opt_str_list(&v, "targets")?
        .filter(|t| !t.is_empty())
        .ok_or_else(|| "field \"targets\" must be a non-empty array of kernel names".to_owned())?;
    let models = match opt_str_list(&v, "models")? {
        None => AddressSpace::ALL.to_vec(),
        Some(names) => names
            .iter()
            .map(|n| parse_space(n))
            .collect::<Result<_, _>>()?,
    };
    Ok(FixRequest {
        targets,
        models,
        deadline_ms: opt_u64(&v, "deadline_ms")?,
    })
}

impl FixRequest {
    /// The coalescing key for identical concurrent fix requests.
    #[must_use]
    pub fn coalesce_key(&self) -> String {
        let models: Vec<String> = self.models.iter().map(|m| m.abbrev().to_owned()).collect();
        format!("fix|{}|{}", self.targets.join(","), models.join(","))
    }
}

/// Runs the optimizer over every target × model combination, bumps the
/// fix metrics, and renders the same JSONL stream as
/// `hetmem fix --format json`.
///
/// # Errors
///
/// Returns a one-line message (rendered as a 500) when a target names no
/// built-in kernel.
pub fn run_fix_request(req: &FixRequest, metrics: &Metrics) -> Result<String, String> {
    let mut reports = Vec::new();
    for target in &req.targets {
        let program = hetmem_dsl::programs::find(target)
            .ok_or_else(|| format!("unknown kernel {target:?}"))?;
        for &model in &req.models {
            reports.push(hetmem_dsl::fix(&program, model));
        }
    }
    for report in &reports {
        metrics.bump(&metrics.fixes_completed);
        metrics
            .transfers_removed
            .fetch_add(report.removed.len() as u64, Ordering::Relaxed);
        metrics
            .transfers_inserted
            .fetch_add(report.inserted.len() as u64, Ordering::Relaxed);
    }
    Ok(fix_reports_to_jsonl(&reports))
}

/// Lifecycle of an asynchronously submitted job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is executing it. Long-running jobs (searches) publish a
    /// rendered-JSON progress object here so `GET /v1/jobs/<id>` can
    /// answer with the frontier-so-far before the job finishes.
    Running {
        /// Rendered JSON progress object, when the job reports any.
        progress: Option<String>,
    },
    /// Finished; `result` is the rendered JSON result body.
    Done {
        /// The job's rendered JSON result.
        result: String,
    },
    /// Execution failed.
    Failed {
        /// The failure message.
        error: String,
    },
    /// The deadline expired before a worker could start it.
    TimedOut {
        /// Milliseconds the job waited before expiry was discovered.
        waited_ms: u64,
    },
}

impl JobState {
    /// The status word exposed by the API.
    #[must_use]
    pub fn status(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running { .. } => "running",
            JobState::Done { .. } => "done",
            JobState::Failed { .. } => "failed",
            JobState::TimedOut { .. } => "timeout",
        }
    }
}

/// The table behind `GET /v1/jobs/<id>`. Ids are dense and start at 1.
#[derive(Debug, Default)]
pub struct Registry {
    next: AtomicU64,
    jobs: Mutex<HashMap<u64, JobState>>,
}

impl Registry {
    /// Registers a new job in [`JobState::Queued`] and returns its id.
    pub fn create(&self) -> u64 {
        let id = self.next.fetch_add(1, Ordering::Relaxed) + 1;
        self.jobs
            .lock()
            .expect("registry lock")
            .insert(id, JobState::Queued);
        id
    }

    /// Replaces a job's state.
    pub fn set(&self, id: u64, state: JobState) {
        self.jobs.lock().expect("registry lock").insert(id, state);
    }

    /// A snapshot of a job's state.
    #[must_use]
    pub fn get(&self, id: u64) -> Option<JobState> {
        self.jobs.lock().expect("registry lock").get(&id).cloned()
    }

    /// Forgets a job that was rejected before acceptance; its id never
    /// reaches a client.
    pub fn remove(&self, id: u64) {
        self.jobs.lock().expect("registry lock").remove(&id);
    }

    /// The rendered `GET /v1/jobs/<id>` body, or `None` for an unknown
    /// id. `Done` results are spliced in verbatim — they are already
    /// rendered JSON.
    #[must_use]
    pub fn status_body(&self, id: u64) -> Option<String> {
        let state = self.get(id)?;
        let head = format!(
            "{{\"job\":{id},\"status\":{}",
            Json::Str(state.status().to_owned()).render()
        );
        Some(match state {
            JobState::Queued | JobState::Running { progress: None } => format!("{head}}}\n"),
            JobState::Running {
                progress: Some(progress),
            } => format!("{head},\"progress\":{progress}}}\n"),
            JobState::Done { result } => format!("{head},\"result\":{result}}}\n"),
            JobState::Failed { error } => {
                format!("{head},\"error\":{}}}\n", Json::Str(error).render())
            }
            JobState::TimedOut { waited_ms } => {
                format!("{head},\"waited_ms\":{waited_ms}}}\n")
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetmem_core::EvaluatedSystem;
    use hetmem_trace::kernels::Kernel;
    use hetmem_xplore::json::parse;

    #[test]
    fn sim_request_parses_with_defaults_and_aliases() {
        let req =
            parse_sim_request("{\"kernel\":\"reduction\",\"system\":\"fusion\"}").expect("parses");
        assert_eq!(req.kernel, Kernel::Reduction);
        assert_eq!(req.system, EvaluatedSystem::Fusion);
        assert_eq!(req.scale, DEFAULT_SCALE);
        assert_eq!(req.deadline_ms, None);

        let req = parse_sim_request(
            "{\"kernel\":\"dct\",\"system\":\"CUDA\",\"scale\":8,\"deadline_ms\":0}",
        )
        .expect("parses");
        assert_eq!(req.system, EvaluatedSystem::CpuGpuCuda);
        assert_eq!(req.scale, 8);
        assert_eq!(req.deadline_ms, Some(0));
    }

    #[test]
    fn sim_request_rejects_bad_bodies() {
        assert!(parse_sim_request("not json").is_err());
        assert!(parse_sim_request("{}").is_err());
        assert!(parse_sim_request("{\"kernel\":\"reduction\"}").is_err());
        assert!(parse_sim_request("{\"kernel\":\"nope\",\"system\":\"fusion\"}").is_err());
        assert!(
            parse_sim_request("{\"kernel\":\"dct\",\"system\":\"fusion\",\"scale\":0}").is_err()
        );
    }

    #[test]
    fn sim_keys_match_the_sweep_engine() {
        let req =
            parse_sim_request("{\"kernel\":\"reduction\",\"system\":\"fusion\",\"scale\":16}")
                .expect("parses");
        let (job, config) = req.job();
        assert_eq!(req.content_key(), hetmem_xplore::content_key(&job, &config));
        // Identical requests share a key; different systems do not.
        let other =
            parse_sim_request("{\"kernel\":\"reduction\",\"system\":\"gmac\",\"scale\":16}")
                .expect("parses");
        assert_ne!(req.content_key(), other.content_key());
    }

    #[test]
    fn run_sim_renders_the_cli_shape_and_counts_cache_traffic() {
        let req =
            parse_sim_request("{\"kernel\":\"reduction\",\"system\":\"fusion\",\"scale\":512}")
                .expect("parses");
        let metrics = Metrics::default();
        let body = run_sim(&req, None, None, &metrics).expect("runs");
        assert!(body.ends_with('\n'));
        let v = parse(body.trim_end()).expect("valid json");
        assert_eq!(v.get("system").and_then(Json::as_str), Some("Fusion"));
        assert!(v.get("total_ticks").and_then(Json::as_u64).is_some());
        assert!(v.get("report").is_some());
        assert_eq!(metrics.cache_misses.load(Ordering::Relaxed), 1);
        // The live run contributed event counts to the aggregate.
        assert!(metrics.sim_events().phase_starts > 0);

        // Same request through a cache: one miss to fill, one hit, same bytes.
        let dir =
            std::env::temp_dir().join(format!("hetmem-serve-jobs-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = DiskCache::open(&dir).expect("open");
        let metrics = Metrics::default();
        let cold = run_sim(&req, Some(&cache), None, &metrics).expect("runs");
        let warm = run_sim(&req, Some(&cache), None, &metrics).expect("runs");
        assert_eq!(cold, warm);
        assert_eq!(cold, body);
        assert_eq!(metrics.cache_misses.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.cache_hits.load(Ordering::Relaxed), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mode_field_parses_keys_and_rejects_garbage() {
        let plain =
            parse_sim_request("{\"kernel\":\"reduction\",\"system\":\"fusion\"}").expect("parses");
        assert_eq!(plain.mode, ExecMode::Accurate);
        let wheel = parse_sim_request(
            "{\"kernel\":\"reduction\",\"system\":\"fusion\",\"mode\":\"event-driven\"}",
        )
        .expect("parses");
        assert_eq!(wheel.mode, ExecMode::EventDriven);
        // Modes address separate cache entries.
        assert_ne!(plain.content_key(), wheel.content_key());
        assert!(parse_sim_request(
            "{\"kernel\":\"reduction\",\"system\":\"fusion\",\"mode\":\"warp-speed\"}"
        )
        .is_err());
        assert!(
            parse_sim_request("{\"kernel\":\"reduction\",\"system\":\"fusion\",\"mode\":7}")
                .is_err()
        );

        // Sweeps and searches with different modes never coalesce.
        let a = parse_sweep_request("{\"kernels\":[\"dct\"],\"spaces\":[]}").expect("parses");
        let b = parse_sweep_request("{\"kernels\":[\"dct\"],\"spaces\":[],\"mode\":\"sampled\"}")
            .expect("parses");
        assert_ne!(a.coalesce_key(), b.coalesce_key());
        let c = parse_search_request("{\"seed\":1}").expect("parses");
        let d = parse_search_request("{\"seed\":1,\"mode\":\"sampled:1000:100\"}").expect("parses");
        assert_eq!(
            d.config.mode,
            ExecMode::Sampled {
                warm_interval: 1000,
                detail_window: 100,
            }
        );
        assert_ne!(c.coalesce_key(), d.coalesce_key());
    }

    #[test]
    fn event_driven_sim_answers_with_exact_report_bytes() {
        // The serve path inherits the ExecMode accuracy contract: an
        // event-driven run's report differs from accurate only by the
        // informational fast-forward field, which is serialized separately.
        let accurate =
            parse_sim_request("{\"kernel\":\"reduction\",\"system\":\"fusion\",\"scale\":256}")
                .expect("parses");
        let wheel = parse_sim_request(
            "{\"kernel\":\"reduction\",\"system\":\"fusion\",\"scale\":256,\
             \"mode\":\"event-driven\"}",
        )
        .expect("parses");
        let metrics = Metrics::default();
        let a = run_sim(&accurate, None, None, &metrics).expect("runs");
        let w = run_sim(&wheel, None, None, &metrics).expect("runs");
        let av = parse(a.trim_end()).expect("valid json");
        let wv = parse(w.trim_end()).expect("valid json");
        assert_eq!(av.get("total_ticks"), wv.get("total_ticks"));
        assert!(!a.contains("fast_forwarded_ticks"));
        assert!(w.contains("fast_forwarded_ticks"), "{w}");
        // The fast-forward counter reached the service aggregate.
        assert!(metrics.sim_events().fast_forward_ticks > 0);
    }

    #[test]
    fn sweep_request_defaults_cover_the_full_grid() {
        let req = parse_sweep_request("{}").expect("parses");
        assert_eq!(req.spec.expand().len(), 6 * 9);
        let filtered = parse_sweep_request(
            "{\"kernels\":[\"reduction\"],\"systems\":[\"fusion\"],\"spaces\":[],\"scales\":[512]}",
        )
        .expect("parses");
        assert_eq!(filtered.spec.expand().len(), 1);
        assert!(parse_sweep_request(
            "{\"kernels\":[],\"systems\":[],\"spaces\":[],\"scales\":[8]}"
        )
        .is_err());
        assert!(parse_sweep_request("{\"scales\":[0]}").is_err());
        assert!(parse_sweep_request("{\"systems\":[\"not-a-system\"]}").is_err());
    }

    #[test]
    fn sweep_coalesce_keys_track_the_expansion() {
        let a = parse_sweep_request("{\"kernels\":[\"reduction\"],\"spaces\":[],\"scales\":[16]}")
            .expect("parses");
        let b = parse_sweep_request("{\"kernels\":[\"reduction\"],\"spaces\":[],\"scales\":[16]}")
            .expect("parses");
        let c = parse_sweep_request("{\"kernels\":[\"dct\"],\"spaces\":[],\"scales\":[16]}")
            .expect("parses");
        assert_eq!(a.coalesce_key(), b.coalesce_key());
        assert_ne!(a.coalesce_key(), c.coalesce_key());
    }

    #[test]
    fn sweep_execution_returns_records_and_stats() {
        let req = parse_sweep_request(
            "{\"kernels\":[\"reduction\"],\"systems\":[\"fusion\"],\"spaces\":[],\"scales\":[512]}",
        )
        .expect("parses");
        let metrics = Metrics::default();
        let body = run_sweep_request(&req, None, Arc::new(AtomicBool::new(false)), &metrics, None)
            .expect("runs");
        let v = parse(&body).expect("valid json");
        let Some(Json::Arr(records)) = v.get("records").cloned() else {
            panic!("records array");
        };
        assert_eq!(records.len(), 1);
        assert_eq!(
            v.get("stats")
                .and_then(|s| s.get("jobs"))
                .and_then(Json::as_u64),
            Some(1)
        );

        // A pre-set cancel flag aborts with the typed error's message.
        let err = run_sweep_request(&req, None, Arc::new(AtomicBool::new(true)), &metrics, None)
            .expect_err("cancelled");
        assert!(err.contains("cancelled"), "{err}");
    }

    #[test]
    fn search_request_parses_with_defaults_and_rejects_bad_knobs() {
        let req = parse_search_request("{}").expect("parses");
        assert_eq!(req.config.space.len(), 9);
        assert_eq!(req.config.space.exhaustive_jobs(), 54);
        assert_eq!(req.config.budget, 13); // a quarter of the exhaustive sweep
        assert_eq!(req.config.seed, 0);
        assert_eq!(req.config.strategy, Strategy::Halving);
        assert_eq!(req.config.objectives, Objective::ALL.to_vec());

        let req = parse_search_request(
            "{\"kernels\":[\"reduction\"],\"systems\":[\"fusion\",\"cuda\"],\"spaces\":[],\
             \"scales\":[512],\"budget\":2,\"seed\":9,\"objectives\":[\"perf\",\"hw\"],\
             \"strategy\":\"evolve\",\"deadline_ms\":50}",
        )
        .expect("parses");
        assert_eq!(req.config.space.len(), 2);
        assert_eq!(req.config.budget, 2);
        assert_eq!(req.config.seed, 9);
        assert_eq!(req.config.strategy, Strategy::Evolve);
        assert_eq!(
            req.config.objectives,
            vec![Objective::Cycles, Objective::Hw]
        );
        assert_eq!(req.deadline_ms, Some(50));

        assert!(parse_search_request("not json").is_err());
        assert!(parse_search_request("{\"budget\":0}").is_err());
        assert!(parse_search_request("{\"objectives\":[\"hw\",\"hw\"]}").is_err());
        assert!(parse_search_request("{\"objectives\":[\"speed\"]}").is_err());
        assert!(parse_search_request("{\"strategy\":\"bayes\"}").is_err());
        assert!(parse_search_request("{\"systems\":[],\"spaces\":[]}").is_err());
    }

    #[test]
    fn search_coalesce_keys_track_every_knob() {
        let a = parse_search_request("{\"seed\":1}").expect("parses");
        let b = parse_search_request("{\"seed\":1}").expect("parses");
        let c = parse_search_request("{\"seed\":2}").expect("parses");
        let d = parse_search_request("{\"seed\":1,\"strategy\":\"random\"}").expect("parses");
        assert_eq!(a.coalesce_key(), b.coalesce_key());
        assert_ne!(a.coalesce_key(), c.coalesce_key());
        assert_ne!(a.coalesce_key(), d.coalesce_key());
    }

    #[test]
    fn search_execution_reports_progress_and_deterministic_bodies() {
        let body = "{\"kernels\":[\"reduction\"],\"systems\":[\"fusion\",\"cuda\"],\
                    \"spaces\":[],\"scales\":[512],\"budget\":2,\"strategy\":\"random\"}";
        let req = parse_search_request(body).expect("parses");
        let metrics = Metrics::default();
        let rounds = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&rounds);
        let on_round: Box<dyn FnMut(&SearchProgress) + Send> = Box::new(move |p| {
            sink.lock()
                .expect("lock")
                .push(search_progress_json(p).render());
        });
        let cold = run_search_request(
            &req,
            None,
            Arc::new(AtomicBool::new(false)),
            &metrics,
            Some(on_round),
            None,
        )
        .expect("runs");
        let v = parse(&cold).expect("valid json");
        assert!(v.get("frontier").is_some());
        assert!(!cold.contains("cache_hits"), "stats stay out of the body");
        let rounds = rounds.lock().expect("lock");
        assert!(!rounds.is_empty());
        let progress = parse(&rounds[0]).expect("valid progress json");
        assert_eq!(progress.get("round").and_then(Json::as_u64), Some(1));
        assert!(progress.get("frontier").is_some());
        assert_eq!(metrics.searches_completed.load(Ordering::Relaxed), 1);
        assert!(metrics.search_evaluations.load(Ordering::Relaxed) >= 1);
        assert!(metrics.frontier_points.load(Ordering::Relaxed) >= 1);

        // A second run with the same knobs renders the same bytes.
        let req2 = parse_search_request(body).expect("parses");
        let warm = run_search_request(
            &req2,
            None,
            Arc::new(AtomicBool::new(false)),
            &metrics,
            None,
            None,
        )
        .expect("runs");
        assert_eq!(cold, warm);
    }

    #[test]
    fn check_request_parses_runs_and_reports_unknown_targets() {
        let req = parse_check_request("{\"targets\":[\"k-means\"],\"models\":[\"pas\"]}")
            .expect("parses");
        assert_eq!(req.models, vec![AddressSpace::PartiallyShared]);
        let jsonl = run_check_request(&req).expect("runs");
        let last = jsonl.lines().last().expect("summary");
        let v = parse(last).expect("valid json");
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("summary"));
        assert_eq!(v.get("checked").and_then(Json::as_u64), Some(1));

        assert!(parse_check_request("{\"targets\":[]}").is_err());
        assert!(parse_check_request("{}").is_err());
        let bad = parse_check_request("{\"targets\":[\"no-such-kernel\"]}").expect("parses");
        assert!(run_check_request(&bad).is_err());
    }

    #[test]
    fn fix_request_parses_runs_and_bumps_the_fix_metrics() {
        let metrics = Metrics::default();
        let req =
            parse_fix_request("{\"targets\":[\"k-means\"],\"models\":[\"pas\"]}").expect("parses");
        assert_eq!(req.models, vec![AddressSpace::PartiallyShared]);
        assert_eq!(req.coalesce_key(), "fix|k-means|PAS");
        let jsonl = run_fix_request(&req, &metrics).expect("runs");
        let last = jsonl.lines().last().expect("summary");
        let v = parse(last).expect("valid json");
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("summary"));
        assert_eq!(v.get("fixed").and_then(Json::as_u64), Some(1));
        // k-mean under PAS loses four ownership statements, and the
        // metrics see every edit.
        assert_eq!(v.get("transfers_removed").and_then(Json::as_u64), Some(4));
        assert_eq!(metrics.fixes_completed.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.transfers_removed.load(Ordering::Relaxed), 4);
        assert_eq!(metrics.transfers_inserted.load(Ordering::Relaxed), 0);

        assert!(parse_fix_request("{\"targets\":[]}").is_err());
        assert!(parse_fix_request("{}").is_err());
        let bad = parse_fix_request("{\"targets\":[\"no-such-kernel\"]}").expect("parses");
        assert!(run_fix_request(&bad, &metrics).is_err());
    }

    #[test]
    fn registry_tracks_lifecycle_and_renders_valid_json() {
        let reg = Registry::default();
        let id = reg.create();
        assert_eq!(reg.get(id), Some(JobState::Queued));
        assert_eq!(
            reg.status_body(id).expect("body"),
            format!("{{\"job\":{id},\"status\":\"queued\"}}\n")
        );
        reg.set(id, JobState::Running { progress: None });
        assert!(reg.status_body(id).expect("body").contains("running"));
        reg.set(
            id,
            JobState::Running {
                progress: Some("{\"round\":1,\"frontier\":[\"CPU+GPU@512\"]}".to_owned()),
            },
        );
        let v = parse(reg.status_body(id).expect("body").trim_end()).expect("valid");
        assert_eq!(v.get("status").and_then(Json::as_str), Some("running"));
        assert_eq!(
            v.get("progress")
                .and_then(|p| p.get("round"))
                .and_then(Json::as_u64),
            Some(1)
        );
        reg.set(
            id,
            JobState::Done {
                result: "{\"records\":[]}".to_owned(),
            },
        );
        let body = reg.status_body(id).expect("body");
        let v = parse(body.trim_end()).expect("spliced body is valid json");
        assert_eq!(v.get("status").and_then(Json::as_str), Some("done"));
        assert!(v.get("result").is_some());
        reg.set(id, JobState::TimedOut { waited_ms: 3 });
        let v = parse(reg.status_body(id).expect("body").trim_end()).expect("valid");
        assert_eq!(v.get("status").and_then(Json::as_str), Some("timeout"));
        assert_eq!(v.get("waited_ms").and_then(Json::as_u64), Some(3));
        assert_eq!(reg.status_body(id + 999), None);
        // Ids are unique and dense.
        assert_eq!(reg.create(), id + 1);
    }
}
