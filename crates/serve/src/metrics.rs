//! Live service metrics: lock-free counters, a log-scale latency
//! histogram, and the aggregate simulator event counts the service folds
//! in from every live (non-cached) run.
//!
//! Everything here is written on the request path, so the counters are
//! relaxed atomics; `/metrics` renders a consistent-enough snapshot
//! without stalling workers. The simulator counters reuse the
//! [`hetmem_sim::EventCounts`] accumulation the observability layer
//! already defines, so the service reports the same vocabulary as
//! `hetmem sim --events`.

use hetmem_xplore::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Number of power-of-two latency buckets. Bucket `i` counts requests
/// with `latency_us < 2^i`; the last bucket is a catch-all.
pub const LATENCY_BUCKETS: usize = 28;

/// A histogram of request latencies in log2(microsecond) buckets.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    total_us: AtomicU64,
}

impl LatencyHistogram {
    /// Records one observation.
    pub fn record(&self, elapsed: Duration) {
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        let bucket =
            (usize::try_from(us.max(1).ilog2()).expect("small") + 1).min(LATENCY_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Total observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The histogram as `{count, total_us, buckets: [{le_us, n}, ...]}`,
    /// with zero buckets elided so small services render small.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| {
                    Json::obj(vec![("le_us", Json::UInt(1u64 << i)), ("n", Json::UInt(n))])
                })
            })
            .collect();
        Json::obj(vec![
            ("count", Json::UInt(self.count.load(Ordering::Relaxed))),
            (
                "total_us",
                Json::UInt(self.total_us.load(Ordering::Relaxed)),
            ),
            ("buckets", Json::Arr(buckets)),
        ])
    }
}

/// The service-wide metric registry. One instance lives in the server
/// state; every request path and worker writes into it.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests received, by outcome.
    pub requests_total: AtomicU64,
    /// Requests rejected with 400 (malformed).
    pub bad_requests: AtomicU64,
    /// Requests rejected with 429 (queue full).
    pub queue_rejections: AtomicU64,
    /// Requests rejected with 503 (draining).
    pub drain_rejections: AtomicU64,
    /// Jobs whose deadline expired before execution (504).
    pub deadline_timeouts: AtomicU64,
    /// Jobs that piggybacked on an identical in-flight execution.
    pub coalesced_jobs: AtomicU64,
    /// Jobs executed to completion by a worker.
    pub jobs_completed: AtomicU64,
    /// Jobs whose execution returned an error.
    pub jobs_failed: AtomicU64,
    /// Sim answers served straight from the content-addressed cache.
    pub cache_hits: AtomicU64,
    /// Sim answers that required a live simulation.
    pub cache_misses: AtomicU64,
    /// Guided searches run to completion.
    pub searches_completed: AtomicU64,
    /// Candidates evaluated across all completed searches.
    pub search_evaluations: AtomicU64,
    /// Pareto-frontier points reported by completed searches.
    pub frontier_points: AtomicU64,
    /// `/v1/fix` jobs executed to completion.
    pub fixes_completed: AtomicU64,
    /// Communication statements the fix pass inserted, across all
    /// completed fix jobs.
    pub transfers_inserted: AtomicU64,
    /// Communication statements (or group members) the fix pass removed,
    /// across all completed fix jobs.
    pub transfers_removed: AtomicU64,
    /// End-to-end request latency (admission to response).
    pub latency: LatencyHistogram,
    /// Aggregate simulator event counts from live runs.
    sim_events: Mutex<hetmem_sim::EventCounts>,
}

impl Metrics {
    /// Bumps a counter by one.
    pub fn bump(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds one live run's event counts into the aggregate.
    pub fn absorb_events(&self, counts: hetmem_sim::EventCounts) {
        *self.sim_events.lock().expect("metrics lock") += counts;
    }

    /// A copy of the aggregate simulator counts.
    #[must_use]
    pub fn sim_events(&self) -> hetmem_sim::EventCounts {
        *self.sim_events.lock().expect("metrics lock")
    }

    /// Renders the full registry, merging in the pool's live view
    /// (queue depth, busy workers) supplied by the caller.
    #[must_use]
    pub fn to_json(&self, queue_depth: u64, busy_workers: u64, workers: u64) -> Json {
        let load = |c: &AtomicU64| Json::UInt(c.load(Ordering::Relaxed));
        let ev = self.sim_events();
        Json::obj(vec![
            ("requests_total", load(&self.requests_total)),
            ("bad_requests", load(&self.bad_requests)),
            ("queue_rejections", load(&self.queue_rejections)),
            ("drain_rejections", load(&self.drain_rejections)),
            ("deadline_timeouts", load(&self.deadline_timeouts)),
            ("coalesced_jobs", load(&self.coalesced_jobs)),
            ("jobs_completed", load(&self.jobs_completed)),
            ("jobs_failed", load(&self.jobs_failed)),
            ("cache_hits", load(&self.cache_hits)),
            ("cache_misses", load(&self.cache_misses)),
            ("searches_completed", load(&self.searches_completed)),
            ("search_evaluations", load(&self.search_evaluations)),
            ("frontier_points", load(&self.frontier_points)),
            ("fixes_completed", load(&self.fixes_completed)),
            ("transfers_inserted", load(&self.transfers_inserted)),
            ("transfers_removed", load(&self.transfers_removed)),
            ("queue_depth", Json::UInt(queue_depth)),
            ("busy_workers", Json::UInt(busy_workers)),
            ("workers", Json::UInt(workers)),
            ("latency", self.latency.to_json()),
            (
                "sim_events",
                Json::obj(vec![
                    ("phase_starts", Json::UInt(ev.phase_starts)),
                    ("phase_ends", Json::UInt(ev.phase_ends)),
                    ("comm_events", Json::UInt(ev.comm_events)),
                    ("special_ops", Json::UInt(ev.special_ops)),
                    ("miss_bursts", Json::UInt(ev.miss_bursts)),
                    ("shared_accesses", Json::UInt(ev.shared_accesses)),
                    ("dram_requests", Json::UInt(ev.dram_requests)),
                    ("dram_row_misses", Json::UInt(ev.dram_row_misses)),
                    ("interventions", Json::UInt(ev.interventions)),
                    // Ticks crossed inside granted wake windows — labeled
                    // apart from executed cycles so dashboards can tell
                    // fast-forwarded time from simulated work.
                    ("fast_forward_ticks", Json::UInt(ev.fast_forward_ticks)),
                ]),
            ),
        ])
    }
}

/// Merges several nodes' `/metrics` documents into one fleet-wide view
/// (the `merged` section of `GET /metrics?cluster=1`).
///
/// Numeric fields sum; nested objects merge recursively; arrays of
/// latency buckets (`{le_us, n}` pairs) merge by bucket bound; any
/// other value keeps the first node's copy. Keys appear in the order
/// the first document introduces them, so the merged document reads
/// like a single node's.
#[must_use]
pub fn merge_metrics(docs: &[Json]) -> Json {
    let mut keys: Vec<&str> = Vec::new();
    for doc in docs {
        if let Json::Obj(pairs) = doc {
            for (key, _) in pairs {
                if !keys.contains(&key.as_str()) {
                    keys.push(key);
                }
            }
        }
    }
    let pairs = keys
        .into_iter()
        .map(|key| {
            let values: Vec<&Json> = docs.iter().filter_map(|doc| doc.get(key)).collect();
            (key.to_owned(), merge_values(&values))
        })
        .collect();
    Json::Obj(pairs)
}

fn merge_values(values: &[&Json]) -> Json {
    match values {
        [] => Json::Null,
        [only] => (*only).clone(),
        [first, ..] => match first {
            Json::UInt(_) | Json::Int(_) | Json::Float(_) => sum_numeric(values),
            Json::Obj(_) => {
                let docs: Vec<Json> = values.iter().map(|v| (*v).clone()).collect();
                merge_metrics(&docs)
            }
            Json::Arr(_) if is_bucket_array(first) => merge_buckets(values),
            _ => (*first).clone(),
        },
    }
}

fn sum_numeric(values: &[&Json]) -> Json {
    if values.iter().all(|v| matches!(v, Json::UInt(_))) {
        Json::UInt(values.iter().filter_map(|v| v.as_u64()).sum())
    } else {
        Json::Float(values.iter().filter_map(|v| v.as_f64()).sum())
    }
}

fn is_bucket_array(value: &Json) -> bool {
    match value {
        Json::Arr(items) => items
            .iter()
            .all(|item| item.get("le_us").is_some() && item.get("n").is_some()),
        _ => false,
    }
}

fn merge_buckets(values: &[&Json]) -> Json {
    // (le_us, n) pairs, accumulated by bound and re-sorted.
    let mut merged: Vec<(u64, u64)> = Vec::new();
    for value in values {
        let Json::Arr(items) = value else { continue };
        for item in items {
            let (Some(le), Some(n)) = (
                item.get("le_us").and_then(Json::as_u64),
                item.get("n").and_then(Json::as_u64),
            ) else {
                continue;
            };
            match merged.iter_mut().find(|(bound, _)| *bound == le) {
                Some((_, total)) => *total += n,
                None => merged.push((le, n)),
            }
        }
    }
    merged.sort_unstable();
    Json::Arr(
        merged
            .into_iter()
            .map(|(le, n)| Json::obj(vec![("le_us", Json::UInt(le)), ("n", Json::UInt(n))]))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2_microseconds() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_micros(1)); // bucket 1 (le 2)
        h.record(Duration::from_micros(3)); // bucket 2 (le 4)
        h.record(Duration::from_micros(3));
        h.record(Duration::from_secs(40_000)); // clamps to the last bucket
        assert_eq!(h.count(), 4);
        let json = h.to_json();
        let Some(Json::Arr(buckets)) = json.get("buckets").cloned() else {
            panic!("buckets array");
        };
        let pairs: Vec<(u64, u64)> = buckets
            .iter()
            .map(|b| {
                (
                    b.get("le_us").and_then(Json::as_u64).expect("le"),
                    b.get("n").and_then(Json::as_u64).expect("n"),
                )
            })
            .collect();
        assert_eq!(
            pairs,
            vec![(2, 1), (4, 2), (1 << (LATENCY_BUCKETS - 1), 1),]
        );
    }

    #[test]
    fn registry_renders_every_counter() {
        let m = Metrics::default();
        m.bump(&m.requests_total);
        m.bump(&m.cache_hits);
        m.bump(&m.searches_completed);
        m.frontier_points.fetch_add(3, Ordering::Relaxed);
        m.bump(&m.fixes_completed);
        m.transfers_removed.fetch_add(4, Ordering::Relaxed);
        m.transfers_inserted.fetch_add(2, Ordering::Relaxed);
        let ev = hetmem_sim::EventCounts {
            dram_requests: 7,
            fast_forward_ticks: 5,
            ..Default::default()
        };
        m.absorb_events(ev);
        m.absorb_events(ev);
        let json = m.to_json(3, 1, 4);
        assert_eq!(json.get("requests_total").and_then(Json::as_u64), Some(1));
        assert_eq!(json.get("cache_hits").and_then(Json::as_u64), Some(1));
        assert_eq!(
            json.get("searches_completed").and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(json.get("frontier_points").and_then(Json::as_u64), Some(3));
        assert_eq!(json.get("fixes_completed").and_then(Json::as_u64), Some(1));
        assert_eq!(
            json.get("transfers_removed").and_then(Json::as_u64),
            Some(4)
        );
        assert_eq!(
            json.get("transfers_inserted").and_then(Json::as_u64),
            Some(2)
        );
        assert_eq!(json.get("queue_depth").and_then(Json::as_u64), Some(3));
        assert_eq!(json.get("workers").and_then(Json::as_u64), Some(4));
        let ev = json.get("sim_events").expect("sim_events");
        assert_eq!(ev.get("dram_requests").and_then(Json::as_u64), Some(14));
        assert_eq!(
            ev.get("fast_forward_ticks").and_then(Json::as_u64),
            Some(10)
        );
    }

    #[test]
    fn merge_sums_counters_and_buckets_across_nodes() {
        let a = Metrics::default();
        a.bump(&a.requests_total);
        a.bump(&a.cache_misses);
        a.latency.record(Duration::from_micros(1)); // bucket le 2
        let b = Metrics::default();
        b.bump(&b.requests_total);
        b.bump(&b.requests_total);
        b.bump(&b.cache_hits);
        b.latency.record(Duration::from_micros(1));
        b.latency.record(Duration::from_micros(3)); // bucket le 4
        let merged = merge_metrics(&[a.to_json(1, 0, 2), b.to_json(2, 1, 2)]);
        assert_eq!(merged.get("requests_total").and_then(Json::as_u64), Some(3));
        assert_eq!(merged.get("cache_hits").and_then(Json::as_u64), Some(1));
        assert_eq!(merged.get("cache_misses").and_then(Json::as_u64), Some(1));
        assert_eq!(merged.get("queue_depth").and_then(Json::as_u64), Some(3));
        let latency = merged.get("latency").expect("latency");
        assert_eq!(latency.get("count").and_then(Json::as_u64), Some(3));
        let Some(Json::Arr(buckets)) = latency.get("buckets") else {
            panic!("buckets array");
        };
        let pairs: Vec<(u64, u64)> = buckets
            .iter()
            .map(|b| {
                (
                    b.get("le_us").and_then(Json::as_u64).expect("le"),
                    b.get("n").and_then(Json::as_u64).expect("n"),
                )
            })
            .collect();
        assert_eq!(pairs, vec![(2, 2), (4, 1)]);
        // Nested sim_events objects merge recursively too.
        let ev = merged.get("sim_events").expect("sim_events");
        assert_eq!(ev.get("dram_requests").and_then(Json::as_u64), Some(0));
    }
}
