//! The service itself: socket handling, routing, admission, and the
//! graceful-drain shutdown sequence.
//!
//! Threading model: one accept thread, one handler thread per
//! connection (requests are short — a queue wait plus one simulation),
//! and the sharded worker pool doing the actual work. Shutdown is an
//! endpoint (`POST /v1/shutdown`) because a std-only binary cannot trap
//! signals: the handler answers, wakes the accept loop with a loopback
//! connection, and the accept thread then joins every handler, drains
//! the pool (completing all accepted jobs), and joins the async
//! waiters.

use crate::http::{read_request, HttpError, Request, Response};
use crate::jobs::{
    parse_check_request, parse_fix_request, parse_search_request, parse_sim_request,
    parse_sweep_request, run_check_request, run_fix_request, run_search_request, run_sim,
    run_sweep_request, search_progress_json, JobState, Registry,
};
use crate::metrics::Metrics;
use crate::pool::{Outcome, Rejected, ShardedPool, Ticket};
use hetmem_search::ProgressHook;
use hetmem_sim::SimError;
use hetmem_xplore::{DiskCache, Json};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// What a worker hands back through the pool: a rendered response body
/// or a one-line error.
pub type JobResult = Result<String, String>;

/// Configuration for [`Server::start`].
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Bind address, `HOST:PORT` (port 0 picks an ephemeral port).
    pub addr: String,
    /// Worker threads / shards; `0` uses the host's parallelism.
    pub workers: usize,
    /// Per-shard queue bound; submissions beyond it are answered 429.
    pub queue_depth: usize,
    /// Result-cache directory shared with `hetmem sweep --cache-dir`.
    pub cache_dir: Option<PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            addr: "127.0.0.1:7878".to_owned(),
            workers: 0,
            queue_depth: 32,
            cache_dir: None,
        }
    }
}

/// Shared server state.
struct State {
    pool: ShardedPool<JobResult>,
    registry: Registry,
    metrics: Arc<Metrics>,
    cache: Option<Arc<DiskCache>>,
    cache_dir: Option<PathBuf>,
    /// Set by `/v1/shutdown`; refuses new job submissions.
    draining: AtomicBool,
    /// Cancels in-flight sweeps only on abandonment, never on graceful
    /// drain (drain completes accepted jobs).
    cancel: Arc<AtomicBool>,
    waiters: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl State {
    fn error_body(message: &str) -> String {
        format!(
            "{}\n",
            Json::obj(vec![("error", Json::Str(message.to_owned()))]).render()
        )
    }

    /// Admits a job onto the pool and renders rejections.
    fn admit(
        &self,
        key: &str,
        deadline_ms: Option<u64>,
        work: impl FnOnce() -> JobResult + Send + 'static,
    ) -> Result<Ticket<JobResult>, Response> {
        if self.draining.load(Ordering::SeqCst) {
            self.metrics.bump(&self.metrics.drain_rejections);
            return Err(Response::json(
                503,
                State::error_body("the service is draining"),
            ));
        }
        let deadline = deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
        self.pool.submit(key, deadline, work).map_err(|r| match r {
            Rejected::QueueFull { depth } => {
                self.metrics.bump(&self.metrics.queue_rejections);
                Response::json(
                    429,
                    State::error_body(&format!("queue full (depth {depth})")),
                )
                .with_header("retry-after", "1")
            }
            Rejected::Draining => {
                self.metrics.bump(&self.metrics.drain_rejections);
                Response::json(503, State::error_body("the service is draining"))
            }
        })
    }

    /// Renders a synchronous job's outcome.
    fn render_outcome(&self, outcome: Outcome<JobResult>) -> Response {
        match outcome {
            Outcome::Done(Ok(body)) => Response::json(200, body),
            Outcome::Done(Err(error)) => {
                self.metrics.bump(&self.metrics.jobs_failed);
                Response::json(500, State::error_body(&error))
            }
            Outcome::DeadlineExceeded { waited_ms } => Response::json(
                504,
                format!(
                    "{}\n",
                    Json::obj(vec![
                        (
                            "error",
                            Json::Str(SimError::DeadlineExceeded { waited_ms }.to_string()),
                        ),
                        ("waited_ms", Json::UInt(waited_ms)),
                    ])
                    .render()
                ),
            ),
        }
    }
}

/// Routes one parsed request. Split from the socket layer so tests can
/// drive the full API without a live connection.
fn handle(state: &Arc<State>, req: &Request) -> Response {
    state.metrics.bump(&state.metrics.requests_total);
    let started = Instant::now();
    let response = route(state, req);
    state.metrics.latency.record(started.elapsed());
    response
}

fn route(state: &Arc<State>, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let status = if state.draining.load(Ordering::SeqCst) {
                "draining"
            } else {
                "ok"
            };
            Response::json(
                200,
                format!(
                    "{}\n",
                    Json::obj(vec![("status", Json::Str(status.to_owned()))]).render()
                ),
            )
        }
        ("GET", "/metrics") => {
            let body = state
                .metrics
                .to_json(state.pool.queued(), state.pool.busy(), state.pool.workers())
                .render();
            Response::json(200, format!("{body}\n"))
        }
        ("POST", "/v1/sim") => match parse_sim_request(&req.body) {
            Err(message) => bad_request(state, &message),
            Ok(sim) => {
                let key = sim.content_key();
                let deadline = sim.deadline_ms;
                let metrics = Arc::clone(&state.metrics);
                let cache = state.cache.clone();
                let work = move || run_sim(&sim, cache.as_deref(), &metrics);
                match state.admit(&key, deadline, work) {
                    Err(response) => response,
                    Ok(ticket) => state.render_outcome(ticket.wait()),
                }
            }
        },
        ("POST", "/v1/check") => match parse_check_request(&req.body) {
            Err(message) => bad_request(state, &message),
            Ok(check) => {
                let key = check.coalesce_key();
                let deadline = check.deadline_ms;
                let work = move || run_check_request(&check);
                match state.admit(&key, deadline, work) {
                    Err(response) => response,
                    Ok(ticket) => match ticket.wait() {
                        Outcome::Done(Ok(jsonl)) => Response {
                            status: 200,
                            headers: Vec::new(),
                            body: jsonl,
                            content_type: "application/x-ndjson",
                        },
                        other => state.render_outcome(other),
                    },
                }
            }
        },
        ("POST", "/v1/fix") => match parse_fix_request(&req.body) {
            Err(message) => bad_request(state, &message),
            Ok(fix) => {
                let key = fix.coalesce_key();
                let deadline = fix.deadline_ms;
                let metrics = Arc::clone(&state.metrics);
                let work = move || run_fix_request(&fix, &metrics);
                match state.admit(&key, deadline, work) {
                    Err(response) => response,
                    Ok(ticket) => match ticket.wait() {
                        Outcome::Done(Ok(jsonl)) => Response {
                            status: 200,
                            headers: Vec::new(),
                            body: jsonl,
                            content_type: "application/x-ndjson",
                        },
                        other => state.render_outcome(other),
                    },
                }
            }
        },
        ("POST", "/v1/sweep") => match parse_sweep_request(&req.body) {
            Err(message) => bad_request(state, &message),
            Ok(sweep) => {
                let key = sweep.coalesce_key();
                let deadline = sweep.deadline_ms;
                let metrics = Arc::clone(&state.metrics);
                let cache_dir = state.cache_dir.clone();
                let cancel = Arc::clone(&state.cancel);
                let id = state.registry.create();
                let runner_state = Arc::clone(state);
                let work = move || {
                    runner_state
                        .registry
                        .set(id, JobState::Running { progress: None });
                    run_sweep_request(&sweep, cache_dir, cancel, &metrics)
                };
                submit_async(state, id, &key, deadline, work)
            }
        },
        ("POST", "/v1/search") => match parse_search_request(&req.body) {
            Err(message) => bad_request(state, &message),
            Ok(search) => {
                let key = search.coalesce_key();
                let deadline = search.deadline_ms;
                let metrics = Arc::clone(&state.metrics);
                let cache_dir = state.cache_dir.clone();
                let cancel = Arc::clone(&state.cancel);
                let id = state.registry.create();
                let runner_state = Arc::clone(state);
                let work = move || {
                    runner_state
                        .registry
                        .set(id, JobState::Running { progress: None });
                    let progress_state = Arc::clone(&runner_state);
                    let on_round: ProgressHook = Box::new(move |p| {
                        progress_state.registry.set(
                            id,
                            JobState::Running {
                                progress: Some(search_progress_json(p).render()),
                            },
                        );
                    });
                    run_search_request(&search, cache_dir, cancel, &metrics, Some(on_round))
                };
                submit_async(state, id, &key, deadline, work)
            }
        },
        ("GET", path) if path.starts_with("/v1/jobs/") => {
            let id = path["/v1/jobs/".len()..].parse::<u64>().ok();
            match id.and_then(|id| state.registry.status_body(id)) {
                Some(body) => Response::json(200, body),
                None => Response::json(404, State::error_body("no such job")),
            }
        }
        ("POST", "/v1/shutdown") => {
            state.draining.store(true, Ordering::SeqCst);
            Response::json(
                200,
                format!(
                    "{}\n",
                    Json::obj(vec![("status", Json::Str("draining".to_owned()))]).render()
                ),
            )
        }
        (_, "/healthz" | "/metrics" | "/v1/jobs" | "/v1/shutdown")
        | (
            "GET" | "PUT" | "DELETE",
            "/v1/sim" | "/v1/sweep" | "/v1/check" | "/v1/fix" | "/v1/search",
        ) => Response::json(405, State::error_body("method not allowed")),
        _ => Response::json(404, State::error_body("no such endpoint")),
    }
}

/// Admits an async job, spawns the waiter thread that resolves its
/// registry entry, and renders the `202` acceptance (or the rejection).
fn submit_async(
    state: &Arc<State>,
    id: u64,
    key: &str,
    deadline: Option<u64>,
    work: impl FnOnce() -> JobResult + Send + 'static,
) -> Response {
    match state.admit(key, deadline, work) {
        Err(response) => {
            // Rejected before acceptance: the id never names an accepted
            // job.
            state.registry.remove(id);
            response
        }
        Ok(ticket) => {
            let waiter_state = Arc::clone(state);
            let waiter = std::thread::Builder::new()
                .name(format!("hetmem-serve-waiter-{id}"))
                .spawn(move || {
                    let state = waiter_state;
                    match ticket.wait() {
                        Outcome::Done(Ok(result)) => {
                            state.registry.set(id, JobState::Done { result });
                        }
                        Outcome::Done(Err(error)) => {
                            state.metrics.bump(&state.metrics.jobs_failed);
                            state.registry.set(id, JobState::Failed { error });
                        }
                        Outcome::DeadlineExceeded { waited_ms } => {
                            state.registry.set(id, JobState::TimedOut { waited_ms });
                        }
                    }
                })
                .expect("spawn waiter");
            state.waiters.lock().expect("waiters lock").push(waiter);
            Response::json(
                202,
                format!(
                    "{}\n",
                    Json::obj(vec![
                        ("job", Json::UInt(id)),
                        ("status", Json::Str("queued".to_owned())),
                        ("poll", Json::Str(format!("/v1/jobs/{id}"))),
                    ])
                    .render()
                ),
            )
        }
    }
}

fn bad_request(state: &Arc<State>, message: &str) -> Response {
    state.metrics.bump(&state.metrics.bad_requests);
    Response::json(400, State::error_body(message))
}

/// A running service bound to a socket.
pub struct Server {
    state: Arc<State>,
    addr: SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the pool and the accept thread, and returns the
    /// running server.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Io`] when the address cannot be bound or the
    /// cache directory cannot be opened.
    pub fn start(opts: &ServeOptions) -> Result<Server, SimError> {
        let listener = TcpListener::bind(&opts.addr)
            .map_err(|e| SimError::Io(format!("cannot bind {}: {e}", opts.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| SimError::Io(format!("cannot read bound address: {e}")))?;
        let cache = match &opts.cache_dir {
            Some(dir) => Some(Arc::new(DiskCache::open(dir).map_err(|e| {
                SimError::Io(format!("cannot open cache dir {}: {e}", dir.display()))
            })?)),
            None => None,
        };
        let workers = if opts.workers == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            opts.workers
        };
        let metrics = Arc::new(Metrics::default());
        let state = Arc::new(State {
            pool: ShardedPool::start(workers, opts.queue_depth.max(1), Arc::clone(&metrics)),
            registry: Registry::default(),
            metrics,
            cache,
            cache_dir: opts.cache_dir.clone(),
            draining: AtomicBool::new(false),
            cancel: Arc::new(AtomicBool::new(false)),
            waiters: Mutex::new(Vec::new()),
        });
        let accept_state = Arc::clone(&state);
        let accept = std::thread::Builder::new()
            .name("hetmem-serve-accept".to_owned())
            .spawn(move || accept_loop(&listener, &accept_state))
            .map_err(|e| SimError::Io(format!("cannot spawn accept thread: {e}")))?;
        Ok(Server {
            state,
            addr,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves port 0 to the ephemeral port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the server to drain and stop, as `POST /v1/shutdown` does.
    pub fn shutdown(&self) {
        self.state.draining.store(true, Ordering::SeqCst);
        wake_accept(self.addr);
    }

    /// Blocks until the accept thread has finished the drain sequence.
    /// Returns the final metrics snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the accept thread panicked.
    pub fn wait(mut self) -> Arc<Metrics> {
        if let Some(handle) = self.accept.take() {
            handle.join().expect("accept thread");
        }
        Arc::clone(&self.state.metrics)
    }
}

/// Wakes a blocking `accept` with a throwaway loopback connection.
fn wake_accept(addr: SocketAddr) {
    if let Ok(stream) = TcpStream::connect(addr) {
        drop(stream);
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<State>) {
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        let Ok((stream, _)) = listener.accept() else {
            break;
        };
        if state.draining.load(Ordering::SeqCst) {
            // The wake-up connection (or a late client): answer nothing
            // job-shaped; handle it so a late client still gets a 503,
            // then stop accepting.
            let conn_state = Arc::clone(state);
            handlers.push(spawn_handler(stream, conn_state));
            break;
        }
        let conn_state = Arc::clone(state);
        handlers.push(spawn_handler(stream, conn_state));
    }
    // Drain sequence: no new connections are accepted past this point.
    // 1. Every connection already accepted runs to completion (their
    //    jobs are in the pool, which is still live).
    for handler in handlers {
        let _ = handler.join();
    }
    // 2. The pool finishes every accepted job and stops.
    state.pool.drain();
    // 3. Async waiters observe their (now fulfilled) tickets.
    let waiters = std::mem::take(&mut *state.waiters.lock().expect("waiters lock"));
    for waiter in waiters {
        let _ = waiter.join();
    }
    eprintln!(
        "hetmem-serve: drained ({} jobs completed, {} coalesced, {} rejected, {} timed out)",
        state.metrics.jobs_completed.load(Ordering::Relaxed),
        state.metrics.coalesced_jobs.load(Ordering::Relaxed),
        state.metrics.queue_rejections.load(Ordering::Relaxed),
        state.metrics.deadline_timeouts.load(Ordering::Relaxed),
    );
}

fn spawn_handler(mut stream: TcpStream, state: Arc<State>) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("hetmem-serve-conn".to_owned())
        .spawn(move || {
            let response = match read_request(&mut stream) {
                Ok(request) => {
                    let response = handle(&state, &request);
                    let shutdown = request.method == "POST" && request.path == "/v1/shutdown";
                    response.send(&mut stream);
                    if shutdown {
                        // Wake the accept loop after answering so the
                        // client sees the 200 before the drain starts.
                        if let Ok(addr) = stream.local_addr() {
                            wake_accept(addr);
                        }
                    }
                    return;
                }
                Err(HttpError::Io(_)) => return, // wake-up or dropped client
                Err(HttpError::TooLarge(n)) => Response::json(
                    413,
                    State::error_body(&format!("body of {n} bytes exceeds limit")),
                ),
                Err(HttpError::BadRequest(message)) => {
                    state.metrics.bump(&state.metrics.bad_requests);
                    Response::json(400, State::error_body(&message))
                }
            };
            response.send(&mut stream);
        })
        .expect("spawn handler")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let opts = ServeOptions::default();
        assert_eq!(opts.queue_depth, 32);
        assert!(opts.cache_dir.is_none());
        assert!(opts.addr.contains(':'));
    }
}
