//! The service itself: socket handling, routing, admission, and the
//! graceful-drain shutdown sequence.
//!
//! Threading model: one accept thread, one handler thread per
//! connection (requests are short — a queue wait plus one simulation),
//! and the sharded worker pool doing the actual work. Shutdown is an
//! endpoint (`POST /v1/shutdown`) because a std-only binary cannot trap
//! signals: the handler answers, wakes the accept loop with a loopback
//! connection, and the accept thread then joins every handler, drains
//! the pool (completing all accepted jobs), joins the async waiters,
//! and finally leaves the cluster ring (when clustering is enabled).
//!
//! Clustering (`--advertise` / `--join`) adds a [`ClusterNode`] next to
//! the HTTP listener: `/v1/sim` and `/v1/check` requests whose content
//! key hashes to another node are forwarded there (so the fleet shards
//! its result cache instead of duplicating it), and `/metrics?cluster=1`
//! fans out and merges every member's counters.

use crate::http::{query_flag, read_request, HttpError, Request, Response};
use crate::jobs::{
    parse_check_request, parse_fix_request, parse_search_request, parse_sim_request,
    parse_sweep_request, run_check_request, run_fix_request, run_search_request, run_sim,
    run_sweep_part, run_sweep_request, search_progress_json, JobState, Registry,
};
use crate::metrics::{merge_metrics, Metrics};
use crate::pool::{Outcome, Rejected, ShardedPool, Ticket};
use hetmem_cluster::{
    ClusterConfig, ClusterNode, ExecReply, ForwardFailure, Forwarded, Hooks, NodeDispatcher, Plan,
};
use hetmem_search::ProgressHook;
use hetmem_sim::SimError;
use hetmem_xplore::{DiskCache, JobDispatcher, Json};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::{Duration, Instant};

/// What a worker hands back through the pool: a rendered response body
/// or a one-line error.
pub type JobResult = Result<String, String>;

/// Configuration for [`Server::start`].
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Bind address, `HOST:PORT` (port 0 picks an ephemeral port).
    pub addr: String,
    /// Worker threads / shards; `0` uses the host's parallelism.
    pub workers: usize,
    /// Per-shard queue bound; submissions beyond it are answered 429.
    pub queue_depth: usize,
    /// Result-cache directory shared with `hetmem sweep --cache-dir`.
    pub cache_dir: Option<PathBuf>,
    /// Cluster listener bind address (`HOST:PORT`, port 0 ephemeral).
    /// Setting this (or [`ServeOptions::join`]) enables clustering.
    pub advertise: Option<String>,
    /// Cluster address of an existing member to join.
    pub join: Option<String>,
    /// Cluster heartbeat period in milliseconds.
    pub heartbeat_ms: u64,
    /// Accesses to an owned cache entry before it is replicated to the
    /// ring successor.
    pub replicate_after: u64,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            addr: "127.0.0.1:7878".to_owned(),
            workers: 0,
            queue_depth: 32,
            cache_dir: None,
            advertise: None,
            join: None,
            heartbeat_ms: 500,
            replicate_after: 2,
        }
    }
}

/// Shared server state.
struct State {
    pool: ShardedPool<JobResult>,
    registry: Registry,
    metrics: Arc<Metrics>,
    cache: Option<Arc<DiskCache>>,
    cache_dir: Option<PathBuf>,
    /// Set by `/v1/shutdown`; refuses new job submissions.
    draining: AtomicBool,
    /// Cancels in-flight sweeps only on abandonment, never on graceful
    /// drain (drain completes accepted jobs).
    cancel: Arc<AtomicBool>,
    waiters: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// The cluster membership layer, set once after the HTTP listener
    /// is live (the join handshake probes `/v1/health` back). `None`
    /// for a standalone server.
    cluster: OnceLock<Arc<ClusterNode>>,
    /// Scattered sweep parts currently executing on this node. Parts
    /// bypass the request pool (see [`execute_remote`]), so this
    /// counter is their only admission control: at `pool.workers()`
    /// concurrent parts the node answers Busy and the entry node runs
    /// the partition itself.
    parts_active: AtomicUsize,
}

impl State {
    fn error_body(message: &str) -> String {
        format!(
            "{}\n",
            Json::obj(vec![("error", Json::Str(message.to_owned()))]).render()
        )
    }

    /// Admits a job onto the pool and renders rejections.
    fn admit(
        &self,
        key: &str,
        deadline_ms: Option<u64>,
        work: impl FnOnce() -> JobResult + Send + 'static,
    ) -> Result<Ticket<JobResult>, Response> {
        if self.draining.load(Ordering::SeqCst) {
            self.metrics.bump(&self.metrics.drain_rejections);
            // Draining is transient like a full queue: the client should
            // retry (against a peer, or here after a restart), so the
            // 503 carries Retry-After exactly as the 429 path does.
            return Err(
                Response::json(503, State::error_body("the service is draining"))
                    .with_header("retry-after", "1"),
            );
        }
        let deadline = deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
        self.pool.submit(key, deadline, work).map_err(|r| match r {
            Rejected::QueueFull { depth } => {
                self.metrics.bump(&self.metrics.queue_rejections);
                Response::json(
                    429,
                    State::error_body(&format!("queue full (depth {depth})")),
                )
                .with_header("retry-after", "1")
            }
            Rejected::Draining => {
                self.metrics.bump(&self.metrics.drain_rejections);
                Response::json(503, State::error_body("the service is draining"))
                    .with_header("retry-after", "1")
            }
        })
    }

    /// Renders a synchronous job's outcome.
    fn render_outcome(&self, outcome: Outcome<JobResult>) -> Response {
        match outcome {
            Outcome::Done(Ok(body)) => Response::json(200, body),
            Outcome::Done(Err(error)) => {
                self.metrics.bump(&self.metrics.jobs_failed);
                Response::json(500, State::error_body(&error))
            }
            Outcome::DeadlineExceeded { waited_ms } => Response::json(
                504,
                format!(
                    "{}\n",
                    Json::obj(vec![
                        (
                            "error",
                            Json::Str(SimError::DeadlineExceeded { waited_ms }.to_string()),
                        ),
                        ("waited_ms", Json::UInt(waited_ms)),
                    ])
                    .render()
                ),
            ),
        }
    }
}

/// Runs a request forwarded by a peer against the local pool — the
/// owner side of cluster forwarding. The job enters the pool under the
/// same content key a local client would use, so identical requests
/// arriving via different entry nodes coalesce here into one execution.
fn execute_remote(state: &Arc<State>, endpoint: &str, body: &str) -> ExecReply {
    if state.draining.load(Ordering::SeqCst) {
        state.metrics.bump(&state.metrics.drain_rejections);
        return ExecReply::Draining;
    }
    if endpoint == "/v1/sweep-part" {
        // Sweep parts run directly on the frame-handler thread, NOT on
        // the request pool: the entry node's pool worker is already
        // held by the sweep that scattered this part, so two entry
        // nodes scattering at each other would deadlock in a circular
        // wait if parts queued behind pool workers. The counter bounds
        // concurrency to the pool's width; beyond it the entry node
        // falls back to executing the partition locally.
        let workers = usize::try_from(state.pool.workers()).unwrap_or(1).max(1);
        if state.parts_active.fetch_add(1, Ordering::SeqCst) >= workers {
            state.parts_active.fetch_sub(1, Ordering::SeqCst);
            state.metrics.bump(&state.metrics.queue_rejections);
            return ExecReply::Busy;
        }
        let outcome = run_sweep_part(body, state.cache_dir.clone(), workers, &state.metrics);
        state.parts_active.fetch_sub(1, Ordering::SeqCst);
        return match outcome {
            Ok(body) => ExecReply::Body(body),
            Err(error) => {
                state.metrics.bump(&state.metrics.jobs_failed);
                ExecReply::Failed(error)
            }
        };
    }
    let (key, deadline_ms, work): (String, Option<u64>, Box<dyn FnOnce() -> JobResult + Send>) =
        match endpoint {
            "/v1/sim" => match parse_sim_request(body) {
                Err(message) => return ExecReply::Failed(message),
                Ok(sim) => {
                    let key = sim.content_key();
                    let deadline = sim.deadline_ms;
                    let metrics = Arc::clone(&state.metrics);
                    let cache = state.cache.clone();
                    let cluster = state.cluster.get().cloned();
                    (
                        key,
                        deadline,
                        Box::new(move || {
                            run_sim(&sim, cache.as_deref(), cluster.as_deref(), &metrics)
                        }),
                    )
                }
            },
            "/v1/check" => match parse_check_request(body) {
                Err(message) => return ExecReply::Failed(message),
                Ok(check) => {
                    let key = check.coalesce_key();
                    let deadline = check.deadline_ms;
                    (key, deadline, Box::new(move || run_check_request(&check)))
                }
            },
            _ => return ExecReply::Failed(format!("endpoint {endpoint} is not forwardable")),
        };
    let deadline = deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    match state.pool.submit(&key, deadline, work) {
        Err(Rejected::QueueFull { .. }) => {
            state.metrics.bump(&state.metrics.queue_rejections);
            ExecReply::Busy
        }
        Err(Rejected::Draining) => {
            state.metrics.bump(&state.metrics.drain_rejections);
            ExecReply::Draining
        }
        Ok(ticket) => match ticket.wait() {
            Outcome::Done(Ok(body)) => ExecReply::Body(body),
            Outcome::Done(Err(error)) => {
                state.metrics.bump(&state.metrics.jobs_failed);
                ExecReply::Failed(error)
            }
            Outcome::DeadlineExceeded { waited_ms } => ExecReply::Timeout { waited_ms },
        },
    }
}

/// The entry side of cluster forwarding: sends the request to its ring
/// `owner` and renders the outcome. Returns `None` when the owner is
/// busy, draining, or unreachable — the caller then runs the job
/// locally (work stealing / failover), which keeps the fleet answering
/// within one heartbeat interval of a node death.
fn try_forward(
    state: &Arc<State>,
    node: &ClusterNode,
    owner: &str,
    endpoint: &str,
    body: &str,
    key: &str,
    content_type: &'static str,
) -> Option<Response> {
    match node.forward(owner, endpoint, body, key) {
        Ok(Forwarded::Body(body)) => Some(Response {
            status: 200,
            headers: Vec::new(),
            body,
            content_type,
        }),
        Ok(Forwarded::Timeout { waited_ms }) => {
            Some(state.render_outcome(Outcome::DeadlineExceeded { waited_ms }))
        }
        Ok(Forwarded::Failed(message)) => Some(Response::json(500, State::error_body(&message))),
        Err(ForwardFailure::Busy | ForwardFailure::Draining | ForwardFailure::Unavailable(_)) => {
            node.note_steal();
            None
        }
    }
}

/// The dispatcher a sweep/search job on this node scatters through:
/// the cluster's [`NodeDispatcher`] when clustering is on, else `None`
/// (purely local execution). Built per-job so a sweep submitted before
/// the cluster layer finished starting still runs — just locally.
fn cluster_dispatcher(state: &Arc<State>) -> Option<Arc<dyn JobDispatcher>> {
    state
        .cluster
        .get()
        .map(|node| Arc::new(NodeDispatcher::new(node)) as Arc<dyn JobDispatcher>)
}

/// Appends the node's cluster status block to a local metrics
/// document, so both the plain `/metrics` body and every document fed
/// into the fleet merge carry the cluster counters.
fn append_cluster(local: Json, node: &ClusterNode) -> Json {
    match local {
        Json::Obj(mut pairs) => {
            pairs.push(("cluster".to_owned(), node.status_json()));
            Json::Obj(pairs)
        }
        other => other,
    }
}

/// Starts the cluster layer for `opts`, wiring its hooks to `state`
/// through a weak reference (the node must not keep the state alive).
fn start_cluster(
    opts: &ServeOptions,
    http_addr: SocketAddr,
    state: &Arc<State>,
) -> Result<Arc<ClusterNode>, SimError> {
    let exec_state: Weak<State> = Arc::downgrade(state);
    let metrics_state: Weak<State> = Arc::downgrade(state);
    let load_state: Weak<State> = Arc::downgrade(state);
    let hooks = Hooks {
        executor: Arc::new(move |endpoint, body| match exec_state.upgrade() {
            Some(state) => execute_remote(&state, endpoint, body),
            None => ExecReply::Draining,
        }),
        metrics: Arc::new(move || match metrics_state.upgrade() {
            Some(state) => {
                let local = state.metrics.to_json(
                    state.pool.queued(),
                    state.pool.busy(),
                    state.pool.workers(),
                );
                match state.cluster.get() {
                    Some(node) => append_cluster(local, node),
                    None => local,
                }
            }
            None => Json::obj(vec![]),
        }),
        load: Arc::new(move || match load_state.upgrade() {
            Some(state) => state.pool.queued(),
            None => u64::MAX,
        }),
    };
    ClusterNode::start(
        ClusterConfig {
            advertise: opts.advertise.clone(),
            join: opts.join.clone(),
            http_addr: http_addr.to_string(),
            heartbeat_ms: opts.heartbeat_ms.max(1),
            replicate_after: opts.replicate_after.max(1),
            peers_path: opts
                .cache_dir
                .as_ref()
                .map(|dir| dir.join("cluster-peers.json")),
            ..ClusterConfig::default()
        },
        hooks,
    )
}

/// Routes one parsed request. Split from the socket layer so tests can
/// drive the full API without a live connection.
fn handle(state: &Arc<State>, req: &Request) -> Response {
    state.metrics.bump(&state.metrics.requests_total);
    let started = Instant::now();
    let response = route(state, req);
    state.metrics.latency.record(started.elapsed());
    response
}

fn route(state: &Arc<State>, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let status = if state.draining.load(Ordering::SeqCst) {
                "draining"
            } else {
                "ok"
            };
            Response::json(
                200,
                format!(
                    "{}\n",
                    Json::obj(vec![("status", Json::Str(status.to_owned()))]).render()
                ),
            )
        }
        ("GET", "/v1/health") => {
            // Liveness vs readiness: the process is live as long as it
            // answers at all; it is ready only while it still admits
            // jobs. Peers probe this during the join handshake; probes
            // and load balancers use it to take a draining node out of
            // rotation.
            let draining = state.draining.load(Ordering::SeqCst);
            let body = format!(
                "{}\n",
                Json::obj(vec![
                    (
                        "status",
                        Json::Str(if draining { "draining" } else { "ok" }.to_owned()),
                    ),
                    ("live", Json::Bool(true)),
                    ("ready", Json::Bool(!draining)),
                ])
                .render()
            );
            if draining {
                Response::json(503, body).with_header("retry-after", "1")
            } else {
                Response::json(200, body)
            }
        }
        ("GET", "/metrics") => {
            let local =
                state
                    .metrics
                    .to_json(state.pool.queued(), state.pool.busy(), state.pool.workers());
            let body = match state.cluster.get() {
                None => local,
                Some(node) if query_flag(req.query.as_deref(), "cluster") => {
                    // Fan out to every live peer and merge: one document
                    // describing the whole fleet, plus the member list so
                    // a dashboard can see who answered. Every document
                    // (including the local one) carries its node's
                    // cluster block, so degradation counters like
                    // `peer_failures` survive the merge.
                    let peers = node.peer_metrics();
                    let mut members = vec![Json::Str(node.self_addr().to_owned())];
                    let mut docs = vec![append_cluster(local, node)];
                    for (addr, doc) in peers {
                        members.push(Json::Str(addr));
                        docs.push(doc);
                    }
                    Json::obj(vec![
                        ("nodes", Json::UInt(docs.len() as u64)),
                        ("members", Json::Arr(members)),
                        ("merged", merge_metrics(&docs)),
                        ("cluster", node.status_json()),
                    ])
                }
                Some(node) => append_cluster(local, node),
            };
            Response::json(200, format!("{}\n", body.render()))
        }
        ("POST", "/v1/sim") => match parse_sim_request(&req.body) {
            Err(message) => bad_request(state, &message),
            Ok(sim) => {
                let key = sim.content_key();
                if let Some(node) = state.cluster.get() {
                    if let Plan::Forward(owner) = node.plan(&key) {
                        if let Some(response) = try_forward(
                            state,
                            node,
                            &owner,
                            "/v1/sim",
                            &req.body,
                            &key,
                            "application/json",
                        ) {
                            return response;
                        }
                    }
                }
                let deadline = sim.deadline_ms;
                let metrics = Arc::clone(&state.metrics);
                let cache = state.cache.clone();
                let cluster = state.cluster.get().cloned();
                let work = move || run_sim(&sim, cache.as_deref(), cluster.as_deref(), &metrics);
                match state.admit(&key, deadline, work) {
                    Err(response) => response,
                    Ok(ticket) => state.render_outcome(ticket.wait()),
                }
            }
        },
        ("POST", "/v1/check") => match parse_check_request(&req.body) {
            Err(message) => bad_request(state, &message),
            Ok(check) => {
                let key = check.coalesce_key();
                if let Some(node) = state.cluster.get() {
                    if let Plan::Forward(owner) = node.plan(&key) {
                        if let Some(response) = try_forward(
                            state,
                            node,
                            &owner,
                            "/v1/check",
                            &req.body,
                            &key,
                            "application/x-ndjson",
                        ) {
                            return response;
                        }
                    }
                }
                let deadline = check.deadline_ms;
                let work = move || run_check_request(&check);
                match state.admit(&key, deadline, work) {
                    Err(response) => response,
                    Ok(ticket) => match ticket.wait() {
                        Outcome::Done(Ok(jsonl)) => Response {
                            status: 200,
                            headers: Vec::new(),
                            body: jsonl,
                            content_type: "application/x-ndjson",
                        },
                        other => state.render_outcome(other),
                    },
                }
            }
        },
        ("POST", "/v1/fix") => match parse_fix_request(&req.body) {
            Err(message) => bad_request(state, &message),
            Ok(fix) => {
                let key = fix.coalesce_key();
                let deadline = fix.deadline_ms;
                let metrics = Arc::clone(&state.metrics);
                let work = move || run_fix_request(&fix, &metrics);
                match state.admit(&key, deadline, work) {
                    Err(response) => response,
                    Ok(ticket) => match ticket.wait() {
                        Outcome::Done(Ok(jsonl)) => Response {
                            status: 200,
                            headers: Vec::new(),
                            body: jsonl,
                            content_type: "application/x-ndjson",
                        },
                        other => state.render_outcome(other),
                    },
                }
            }
        },
        ("POST", "/v1/sweep") => match parse_sweep_request(&req.body) {
            Err(message) => bad_request(state, &message),
            Ok(sweep) => {
                let key = sweep.coalesce_key();
                let deadline = sweep.deadline_ms;
                let metrics = Arc::clone(&state.metrics);
                let cache_dir = state.cache_dir.clone();
                let cancel = Arc::clone(&state.cancel);
                let dispatcher = cluster_dispatcher(state);
                let id = state.registry.create();
                let runner_state = Arc::clone(state);
                let work = move || {
                    runner_state
                        .registry
                        .set(id, JobState::Running { progress: None });
                    run_sweep_request(&sweep, cache_dir, cancel, &metrics, dispatcher)
                };
                submit_async(state, id, &key, deadline, work)
            }
        },
        ("POST", "/v1/search") => match parse_search_request(&req.body) {
            Err(message) => bad_request(state, &message),
            Ok(search) => {
                let key = search.coalesce_key();
                let deadline = search.deadline_ms;
                let metrics = Arc::clone(&state.metrics);
                let cache_dir = state.cache_dir.clone();
                let cancel = Arc::clone(&state.cancel);
                let dispatcher = cluster_dispatcher(state);
                let id = state.registry.create();
                let runner_state = Arc::clone(state);
                let work = move || {
                    runner_state
                        .registry
                        .set(id, JobState::Running { progress: None });
                    let progress_state = Arc::clone(&runner_state);
                    let on_round: ProgressHook = Box::new(move |p| {
                        progress_state.registry.set(
                            id,
                            JobState::Running {
                                progress: Some(search_progress_json(p).render()),
                            },
                        );
                    });
                    run_search_request(
                        &search,
                        cache_dir,
                        cancel,
                        &metrics,
                        Some(on_round),
                        dispatcher,
                    )
                };
                submit_async(state, id, &key, deadline, work)
            }
        },
        ("GET", path) if path.starts_with("/v1/jobs/") => {
            let id = path["/v1/jobs/".len()..].parse::<u64>().ok();
            match id.and_then(|id| state.registry.status_body(id)) {
                Some(body) => Response::json(200, body),
                None => {
                    // Job ids are per-node: a fleet client that polls
                    // the wrong member gets told which peers could be
                    // the entry node, instead of a bare 404.
                    let peers: Vec<Json> = state
                        .cluster
                        .get()
                        .map(|node| node.peer_http_addrs().into_iter().map(Json::Str).collect())
                        .unwrap_or_default();
                    let body = format!(
                        "{}\n",
                        Json::obj(vec![
                            ("error", Json::Str("no such job on this node".to_owned())),
                            (
                                "hint",
                                Json::Str(
                                    "job ids are issued by the entry node; re-poll the node \
                                     that answered 202"
                                        .to_owned(),
                                ),
                            ),
                            ("peers", Json::Arr(peers)),
                        ])
                        .render()
                    );
                    Response::json(404, body)
                }
            }
        }
        ("POST", "/v1/shutdown") => {
            state.draining.store(true, Ordering::SeqCst);
            Response::json(
                200,
                format!(
                    "{}\n",
                    Json::obj(vec![("status", Json::Str("draining".to_owned()))]).render()
                ),
            )
        }
        (_, "/healthz" | "/v1/health" | "/metrics" | "/v1/jobs" | "/v1/shutdown")
        | (
            "GET" | "PUT" | "DELETE",
            "/v1/sim" | "/v1/sweep" | "/v1/check" | "/v1/fix" | "/v1/search",
        ) => Response::json(405, State::error_body("method not allowed")),
        _ => Response::json(404, State::error_body("no such endpoint")),
    }
}

/// Admits an async job, spawns the waiter thread that resolves its
/// registry entry, and renders the `202` acceptance (or the rejection).
fn submit_async(
    state: &Arc<State>,
    id: u64,
    key: &str,
    deadline: Option<u64>,
    work: impl FnOnce() -> JobResult + Send + 'static,
) -> Response {
    match state.admit(key, deadline, work) {
        Err(response) => {
            // Rejected before acceptance: the id never names an accepted
            // job.
            state.registry.remove(id);
            response
        }
        Ok(ticket) => {
            let waiter_state = Arc::clone(state);
            let waiter = std::thread::Builder::new()
                .name(format!("hetmem-serve-waiter-{id}"))
                .spawn(move || {
                    let state = waiter_state;
                    match ticket.wait() {
                        Outcome::Done(Ok(result)) => {
                            state.registry.set(id, JobState::Done { result });
                        }
                        Outcome::Done(Err(error)) => {
                            state.metrics.bump(&state.metrics.jobs_failed);
                            state.registry.set(id, JobState::Failed { error });
                        }
                        Outcome::DeadlineExceeded { waited_ms } => {
                            state.registry.set(id, JobState::TimedOut { waited_ms });
                        }
                    }
                })
                .expect("spawn waiter");
            state.waiters.lock().expect("waiters lock").push(waiter);
            Response::json(
                202,
                format!(
                    "{}\n",
                    Json::obj(vec![
                        ("job", Json::UInt(id)),
                        ("status", Json::Str("queued".to_owned())),
                        ("poll", Json::Str(format!("/v1/jobs/{id}"))),
                    ])
                    .render()
                ),
            )
        }
    }
}

fn bad_request(state: &Arc<State>, message: &str) -> Response {
    state.metrics.bump(&state.metrics.bad_requests);
    Response::json(400, State::error_body(message))
}

/// A running service bound to a socket.
pub struct Server {
    state: Arc<State>,
    addr: SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the pool and the accept thread, and returns the
    /// running server.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Io`] when the address cannot be bound or the
    /// cache directory cannot be opened.
    pub fn start(opts: &ServeOptions) -> Result<Server, SimError> {
        let listener = TcpListener::bind(&opts.addr)
            .map_err(|e| SimError::Io(format!("cannot bind {}: {e}", opts.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| SimError::Io(format!("cannot read bound address: {e}")))?;
        let cache = match &opts.cache_dir {
            Some(dir) => Some(Arc::new(DiskCache::open(dir).map_err(|e| {
                SimError::Io(format!("cannot open cache dir {}: {e}", dir.display()))
            })?)),
            None => None,
        };
        let workers = if opts.workers == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            opts.workers
        };
        let metrics = Arc::new(Metrics::default());
        let state = Arc::new(State {
            pool: ShardedPool::start(workers, opts.queue_depth.max(1), Arc::clone(&metrics)),
            registry: Registry::default(),
            metrics,
            cache,
            cache_dir: opts.cache_dir.clone(),
            draining: AtomicBool::new(false),
            cancel: Arc::new(AtomicBool::new(false)),
            waiters: Mutex::new(Vec::new()),
            cluster: OnceLock::new(),
            parts_active: AtomicUsize::new(0),
        });
        let accept_state = Arc::clone(&state);
        let accept = std::thread::Builder::new()
            .name("hetmem-serve-accept".to_owned())
            .spawn(move || accept_loop(&listener, &accept_state))
            .map_err(|e| SimError::Io(format!("cannot spawn accept thread: {e}")))?;
        // Clustering starts after the HTTP accept thread: the join
        // handshake requires the seed to probe this node's /v1/health.
        if opts.advertise.is_some() || opts.join.is_some() {
            match start_cluster(opts, addr, &state) {
                Ok(node) => {
                    let _ = state.cluster.set(node);
                }
                Err(err) => {
                    state.draining.store(true, Ordering::SeqCst);
                    wake_accept(addr);
                    let _ = accept.join();
                    return Err(err);
                }
            }
        }
        Ok(Server {
            state,
            addr,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves port 0 to the ephemeral port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The cluster listener's address, when clustering is enabled —
    /// what `--join` on another node should name.
    #[must_use]
    pub fn cluster_addr(&self) -> Option<SocketAddr> {
        self.state.cluster.get().map(|node| node.listen_addr())
    }

    /// Asks the server to drain and stop, as `POST /v1/shutdown` does.
    pub fn shutdown(&self) {
        self.state.draining.store(true, Ordering::SeqCst);
        wake_accept(self.addr);
    }

    /// Blocks until the accept thread has finished the drain sequence.
    /// Returns the final metrics snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the accept thread panicked.
    pub fn wait(mut self) -> Arc<Metrics> {
        if let Some(handle) = self.accept.take() {
            handle.join().expect("accept thread");
        }
        Arc::clone(&self.state.metrics)
    }
}

/// Wakes a blocking `accept` with a throwaway loopback connection.
fn wake_accept(addr: SocketAddr) {
    if let Ok(stream) = TcpStream::connect(addr) {
        drop(stream);
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<State>) {
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        let Ok((stream, _)) = listener.accept() else {
            break;
        };
        if state.draining.load(Ordering::SeqCst) {
            // The wake-up connection (or a late client): answer nothing
            // job-shaped; handle it so a late client still gets a 503,
            // then stop accepting.
            let conn_state = Arc::clone(state);
            handlers.push(spawn_handler(stream, conn_state));
            break;
        }
        let conn_state = Arc::clone(state);
        handlers.push(spawn_handler(stream, conn_state));
    }
    // Drain sequence: no new connections are accepted past this point.
    // 1. Every connection already accepted runs to completion (their
    //    jobs are in the pool, which is still live).
    for handler in handlers {
        let _ = handler.join();
    }
    // 2. The pool finishes every accepted job and stops.
    state.pool.drain();
    // 3. Async waiters observe their (now fulfilled) tickets.
    let waiters = std::mem::take(&mut *state.waiters.lock().expect("waiters lock"));
    for waiter in waiters {
        let _ = waiter.join();
    }
    // 4. Leave the cluster ring (peers rehash immediately) and stop the
    //    membership threads.
    if let Some(node) = state.cluster.get() {
        node.shutdown();
    }
    eprintln!(
        "hetmem-serve: drained ({} jobs completed, {} coalesced, {} rejected, {} timed out)",
        state.metrics.jobs_completed.load(Ordering::Relaxed),
        state.metrics.coalesced_jobs.load(Ordering::Relaxed),
        state.metrics.queue_rejections.load(Ordering::Relaxed),
        state.metrics.deadline_timeouts.load(Ordering::Relaxed),
    );
}

fn spawn_handler(mut stream: TcpStream, state: Arc<State>) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("hetmem-serve-conn".to_owned())
        .spawn(move || {
            let response = match read_request(&mut stream) {
                Ok(request) => {
                    let response = handle(&state, &request);
                    let shutdown = request.method == "POST" && request.path == "/v1/shutdown";
                    response.send(&mut stream);
                    if shutdown {
                        // Wake the accept loop after answering so the
                        // client sees the 200 before the drain starts.
                        if let Ok(addr) = stream.local_addr() {
                            wake_accept(addr);
                        }
                    }
                    return;
                }
                Err(HttpError::Io(_)) => return, // wake-up or dropped client
                Err(HttpError::TooLarge(n)) => Response::json(
                    413,
                    State::error_body(&format!("body of {n} bytes exceeds limit")),
                ),
                Err(HttpError::BadRequest(message)) => {
                    state.metrics.bump(&state.metrics.bad_requests);
                    Response::json(400, State::error_body(&message))
                }
            };
            response.send(&mut stream);
        })
        .expect("spawn handler")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let opts = ServeOptions::default();
        assert_eq!(opts.queue_depth, 32);
        assert!(opts.cache_dir.is_none());
        assert!(opts.addr.contains(':'));
        assert!(opts.advertise.is_none());
        assert!(opts.join.is_none());
        assert_eq!(opts.heartbeat_ms, 500);
        assert_eq!(opts.replicate_after, 2);
    }

    fn draining_state() -> Arc<State> {
        let metrics = Arc::new(Metrics::default());
        Arc::new(State {
            pool: ShardedPool::start(1, 1, Arc::clone(&metrics)),
            registry: Registry::default(),
            metrics,
            cache: None,
            cache_dir: None,
            draining: AtomicBool::new(true),
            cancel: Arc::new(AtomicBool::new(false)),
            waiters: Mutex::new(Vec::new()),
            cluster: OnceLock::new(),
            parts_active: AtomicUsize::new(0),
        })
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".to_owned(),
            path: path.to_owned(),
            query: None,
            headers: Vec::new(),
            body: String::new(),
        }
    }

    #[test]
    fn health_reports_not_ready_while_draining() {
        let state = draining_state();
        let response = route(&state, &get("/v1/health"));
        assert_eq!(response.status, 503);
        assert!(response.body.contains("\"live\":true"), "{}", response.body);
        assert!(
            response.body.contains("\"ready\":false"),
            "{}",
            response.body
        );
        assert!(
            response
                .headers
                .contains(&("retry-after".to_owned(), "1".to_owned())),
            "503 must tell the client when to retry"
        );
        state.pool.drain();
    }

    #[test]
    fn drain_rejections_carry_retry_after() {
        let state = draining_state();
        let request = Request {
            method: "POST".to_owned(),
            path: "/v1/sim".to_owned(),
            query: None,
            headers: Vec::new(),
            body: "{\"kernel\":\"reduction\",\"system\":\"fusion\",\"scale\":512}".to_owned(),
        };
        let response = route(&state, &request);
        assert_eq!(response.status, 503);
        assert!(
            response
                .headers
                .contains(&("retry-after".to_owned(), "1".to_owned())),
            "the drain 503 must carry Retry-After like the 429 path"
        );
        state.pool.drain();
    }
}
