//! Bench regenerating Figure 7: each address-space option under
//! idealized communication — their times should be statistically
//! indistinguishable, which the bench output makes visible.

use hetmem_bench::harness::{BenchmarkId, Criterion};
use hetmem_bench::{criterion_group, criterion_main};
use hetmem_core::experiment::{run_address_space, ExperimentConfig};
use hetmem_core::AddressSpace;
use hetmem_trace::kernels::Kernel;
use std::hint::black_box;

fn fig7(c: &mut Criterion) {
    let cfg = ExperimentConfig::scaled(64);
    let mut group = c.benchmark_group("fig7_address_spaces");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for kernel in Kernel::ALL {
        for space in AddressSpace::ALL {
            group.bench_with_input(
                BenchmarkId::new(kernel.name().replace(' ', "_"), space.abbrev()),
                &(space, kernel),
                |b, &(space, kernel)| {
                    b.iter(|| black_box(run_address_space(space, kernel, &cfg)));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig7);
criterion_main!(benches);
