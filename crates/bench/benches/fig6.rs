//! Bench regenerating Figure 6: communication overhead per
//! system, on the three kernels the paper calls out as
//! communication-heavy.

use hetmem_bench::harness::{BenchmarkId, Criterion};
use hetmem_bench::{criterion_group, criterion_main};
use hetmem_core::experiment::{run_case_study, ExperimentConfig};
use hetmem_core::EvaluatedSystem;
use hetmem_trace::kernels::Kernel;
use std::hint::black_box;

fn fig6(c: &mut Criterion) {
    let cfg = ExperimentConfig::scaled(64);
    let mut group = c.benchmark_group("fig6_comm_overhead");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for kernel in [Kernel::Reduction, Kernel::MergeSort, Kernel::KMeans] {
        for system in EvaluatedSystem::ALL {
            group.bench_with_input(
                BenchmarkId::new(kernel.name().replace(' ', "_"), system.name()),
                &(system, kernel),
                |b, &(system, kernel)| {
                    b.iter(|| {
                        let run = run_case_study(system, kernel, &cfg);
                        black_box(run.report.communication_ticks)
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig6);
criterion_main!(benches);
