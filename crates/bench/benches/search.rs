//! Bench for the guided-search overhead: frontier extraction on synthetic
//! point sets, strategy proposal, and a fully warm end-to-end search —
//! the costs `hetmem search` adds on top of the cached sweep engine.

use hetmem_bench::harness::{BenchmarkId, Criterion};
use hetmem_bench::{criterion_group, criterion_main};
use hetmem_search::{
    pareto_indices, run_search, Objective, SearchConfig, SearchOptions, SearchRng, SearchSpace,
    Strategy,
};
use std::hint::black_box;

/// Deterministic synthetic objective vectors (4 axes, seeded).
fn synthetic_points(n: usize) -> Vec<Vec<f64>> {
    let mut rng = SearchRng::new(42);
    (0..n)
        .map(|_| (0..4).map(|_| (rng.next_u64() % 1_000) as f64).collect())
        .collect()
}

fn search_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("search_overhead");
    group.sample_size(50);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(1));

    for n in [64, 256] {
        let points = synthetic_points(n);
        group.bench_with_input(BenchmarkId::new("pareto_extraction", n), &points, |b, p| {
            b.iter(|| black_box(pareto_indices(black_box(p))));
        });
    }

    let space = SearchSpace::full(512);
    group.bench_function("strategy_first_proposal", |b| {
        b.iter(|| {
            let mut optimizer = Strategy::Halving.build(7, &space);
            let evaluated = vec![None; space.len()];
            let state = hetmem_search::SearchState {
                space: &space,
                evaluated: &evaluated,
                frontier: &[],
            };
            black_box(optimizer.propose(&state, space.len()))
        });
    });

    // The driver's own overhead: everything answered by the disk cache, so
    // the measured time is (cache reads + scoring + frontier) per search,
    // not simulation.
    let dir = std::env::temp_dir().join(format!("hetmem-bench-search-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut warm_space = SearchSpace::full(512);
    warm_space.kernels.truncate(1);
    let config = SearchConfig {
        budget: warm_space.exhaustive_jobs(),
        space: warm_space,
        objectives: Objective::ALL.to_vec(),
        strategy: Strategy::Random,
        seed: 7,
        mode: hetmem_sim::ExecMode::Accurate,
    };
    let fill = SearchOptions {
        workers: 1,
        cache_dir: Some(dir.clone()),
        ..SearchOptions::default()
    };
    run_search(&config, fill).expect("fill run");
    group.bench_function("warm_search_end_to_end", |b| {
        b.iter(|| {
            let opts = SearchOptions {
                workers: 1,
                cache_dir: Some(dir.clone()),
                ..SearchOptions::default()
            };
            black_box(run_search(&config, opts).expect("warm search"))
        });
    });

    let warm = SearchOptions {
        workers: 1,
        cache_dir: Some(dir.clone()),
        ..SearchOptions::default()
    };
    let result = run_search(&config, warm).expect("result");
    group.bench_function("result_json_render", |b| {
        b.iter(|| black_box(result.to_json().render()));
    });

    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, search_overhead);
criterion_main!(benches);
