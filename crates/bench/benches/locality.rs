//! Bench for the locality-management study: the three
//! shared-locality variants on the reuse-under-streaming workload.

use hetmem_bench::harness::{BenchmarkId, Criterion};
use hetmem_bench::{criterion_group, criterion_main};
use hetmem_core::experiment::ExperimentConfig;
use hetmem_core::{run_locality_study, SharedLocalityVariant};
use std::hint::black_box;

fn locality_study(c: &mut Criterion) {
    let mut group = c.benchmark_group("locality_study");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    let cfg = ExperimentConfig::scaled(32);
    // One bench per variant: run the full study and extract the variant's
    // simulated time so criterion's report mirrors the study table.
    for variant in SharedLocalityVariant::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{variant}").replace(' ', "_")),
            &variant,
            |b, &variant| {
                b.iter(|| {
                    let rows = run_locality_study(&cfg);
                    black_box(
                        rows.iter()
                            .find(|r| r.variant == variant)
                            .map(|r| r.total_ticks),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, locality_study);
criterion_main!(benches);
