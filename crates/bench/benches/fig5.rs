//! Bench regenerating Figure 5's cells: each evaluated system
//! simulating each kernel (down-scaled inputs so a full sweep stays fast).

use hetmem_bench::harness::{BenchmarkId, Criterion};
use hetmem_bench::{criterion_group, criterion_main};
use hetmem_core::experiment::{run_case_study, ExperimentConfig};
use hetmem_core::EvaluatedSystem;
use hetmem_trace::kernels::Kernel;
use std::hint::black_box;

fn fig5(c: &mut Criterion) {
    let cfg = ExperimentConfig::scaled(64);
    let mut group = c.benchmark_group("fig5_case_studies");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for kernel in Kernel::ALL {
        for system in EvaluatedSystem::ALL {
            group.bench_with_input(
                BenchmarkId::new(kernel.name().replace(' ', "_"), system.name()),
                &(system, kernel),
                |b, &(system, kernel)| {
                    b.iter(|| black_box(run_case_study(system, kernel, &cfg)));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig5);
criterion_main!(benches);
