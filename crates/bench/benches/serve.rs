//! Bench for the service request path: body decode, cache-hit answer,
//! and the metrics snapshot — the per-request costs `hetmem serve` adds
//! on top of the simulator itself.

use hetmem_bench::harness::Criterion;
use hetmem_bench::{criterion_group, criterion_main};
use hetmem_serve::{parse_sim_request, run_sim, Metrics};
use hetmem_xplore::DiskCache;
use std::hint::black_box;

const BODY: &str = "{\"kernel\":\"reduction\",\"system\":\"fusion\",\"scale\":512}";

fn serve_request_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_request_path");
    group.sample_size(50);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(1));

    group.bench_function("decode_sim_request", |b| {
        b.iter(|| black_box(parse_sim_request(black_box(BODY)).expect("parses")));
    });

    // A warm content-addressed cache: the first run fills it, the
    // measured runs answer from disk and re-render the response body.
    let dir = std::env::temp_dir().join(format!("hetmem-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = DiskCache::open(&dir).expect("cache opens");
    let req = parse_sim_request(BODY).expect("parses");
    let metrics = Metrics::default();
    run_sim(&req, Some(&cache), None, &metrics).expect("fill run");
    group.bench_function("cache_hit_response", |b| {
        b.iter(|| black_box(run_sim(&req, Some(&cache), None, &metrics).expect("cache hit")));
    });

    group.bench_function("metrics_snapshot", |b| {
        b.iter(|| black_box(metrics.to_json(0, 0, 8).render()));
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, serve_request_path);
criterion_main!(benches);
