//! Bench regenerating the paper's tables: trace generation and
//! characteristics (Table III), the lowering-based LoC metric (Table V),
//! and the catalog queries (Table I).

use hetmem_bench::harness::{BenchmarkId, Criterion};
use hetmem_bench::{criterion_group, criterion_main};
use hetmem_dsl::{loc_table, lower, programs, AddressSpace};
use hetmem_trace::kernels::{Kernel, KernelParams};
use std::hint::black_box;

fn table3_characteristics(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_characteristics");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    let params = KernelParams::scaled(16);
    for kernel in Kernel::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(kernel.name().replace(' ', "_")),
            &kernel,
            |b, &kernel| {
                b.iter(|| black_box(kernel.generate(&params).characteristics()));
            },
        );
    }
    group.finish();
}

fn table5_loc(c: &mut Criterion) {
    let mut group = c.benchmark_group("table5_loc");
    group.bench_function("full_table", |b| b.iter(|| black_box(loc_table())));
    for model in AddressSpace::ALL {
        group.bench_with_input(
            BenchmarkId::new("lower_all_kernels", model.abbrev()),
            &model,
            |b, &model| {
                b.iter(|| {
                    for p in programs::all() {
                        black_box(lower(&p, model).comm_overhead_lines());
                    }
                });
            },
        );
    }
    group.finish();
}

fn table1_catalog(c: &mut Criterion) {
    c.bench_function("table1_catalog_query", |b| {
        b.iter(|| {
            let cat = hetmem_core::catalog();
            black_box(
                cat.iter()
                    .filter(|e| e.space == hetmem_core::CatalogSpace::Disjoint)
                    .count(),
            )
        });
    });
}

criterion_group!(benches, table3_characteristics, table5_loc, table1_catalog);
criterion_main!(benches);
