//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * FR-FCFS (open-page) vs FCFS (closed-page) DRAM scheduling;
//! * hybrid-locality LLC replacement honoured vs ignored;
//! * GMAC asynchronous copies vs forced-synchronous copies;
//! * the PCI aperture vs a plain PCI-E memcpy for LRB-shaped traffic.

use hetmem_bench::harness::{BenchmarkId, Criterion};
use hetmem_bench::{criterion_group, criterion_main};
use hetmem_core::experiment::ExperimentConfig;
use hetmem_core::EvaluatedSystem;
use hetmem_sim::{
    CommCosts, CommModel, DramPolicy, FabricKind, RunReport, Simulation, SynchronousFabric,
    SystemConfig,
};
use hetmem_trace::kernels::{Kernel, KernelParams};
use hetmem_trace::PhasedTrace;
use std::hint::black_box;

fn simulate(
    cfg: SystemConfig,
    costs: CommCosts,
    honor_llc_locality: bool,
    comm: impl CommModel + 'static,
    trace: &PhasedTrace,
) -> RunReport {
    Simulation::builder()
        .config(cfg)
        .costs(costs)
        .llc_locality(honor_llc_locality)
        .comm_model(comm)
        .build()
        .expect("bench config is valid")
        .run(trace)
        .expect("generated traces are well-formed")
}

fn dram_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_dram_policy");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    let params = KernelParams::scaled(64);
    for policy in [DramPolicy::FrFcfs, DramPolicy::Fcfs] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{policy:?}")),
            &policy,
            |b, &policy| {
                let trace = Kernel::Reduction.generate(&params);
                b.iter(|| {
                    let mut cfg = SystemConfig::baseline();
                    cfg.dram.policy = policy;
                    let comm = SynchronousFabric::new(FabricKind::Ideal, CommCosts::paper());
                    black_box(simulate(cfg, CommCosts::paper(), true, comm, &trace).total_ticks())
                });
            },
        );
    }
    group.finish();
}

fn llc_locality(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_llc_locality");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    let params = KernelParams::scaled(64);
    for honored in [true, false] {
        group.bench_with_input(
            BenchmarkId::from_parameter(if honored { "honored" } else { "plain_lru" }),
            &honored,
            |b, &honored| {
                let trace = Kernel::Convolution.generate(&params);
                b.iter(|| {
                    let cfg = SystemConfig::baseline();
                    let comm = SynchronousFabric::new(FabricKind::Ideal, CommCosts::paper());
                    black_box(
                        simulate(cfg, CommCosts::paper(), honored, comm, &trace).total_ticks(),
                    )
                });
            },
        );
    }
    group.finish();
}

fn gmac_async(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_gmac_async");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    let cfg = ExperimentConfig::scaled(64);
    let params = KernelParams::scaled(64);
    let trace = Kernel::Reduction.generate(&params);
    group.bench_function("async_on", |b| {
        b.iter(|| {
            let comm = EvaluatedSystem::Gmac.comm_model(cfg.costs);
            black_box(simulate(cfg.system, cfg.costs, true, comm, &trace).communication_ticks)
        });
    });
    group.bench_function("async_off_sync_pci", |b| {
        b.iter(|| {
            let comm = SynchronousFabric::new(FabricKind::PciExpress, cfg.costs);
            black_box(simulate(cfg.system, cfg.costs, true, comm, &trace).communication_ticks)
        });
    });
    group.finish();
}

fn aperture_vs_pci(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_aperture");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    let cfg = ExperimentConfig::scaled(64);
    let params = KernelParams::scaled(64);
    let trace = Kernel::KMeans.generate(&params);
    group.bench_function("lrb_aperture", |b| {
        b.iter(|| {
            let comm = EvaluatedSystem::Lrb.comm_model(cfg.costs);
            black_box(simulate(cfg.system, cfg.costs, true, comm, &trace).communication_ticks)
        });
    });
    group.bench_function("plain_pci", |b| {
        b.iter(|| {
            let comm = SynchronousFabric::new(FabricKind::PciExpress, cfg.costs);
            black_box(simulate(cfg.system, cfg.costs, true, comm, &trace).communication_ticks)
        });
    });
    group.finish();
}

fn l2_prefetch(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_l2_prefetch");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    let params = KernelParams::scaled(64);
    for degree in [0u32, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("degree_{degree}")),
            &degree,
            |b, &degree| {
                let trace = Kernel::Reduction.generate(&params);
                b.iter(|| {
                    let mut cfg = SystemConfig::baseline();
                    cfg.cpu.l2_prefetch_degree = degree;
                    let comm = SynchronousFabric::new(FabricKind::Ideal, CommCosts::paper());
                    black_box(simulate(cfg, CommCosts::paper(), true, comm, &trace).total_ticks())
                });
            },
        );
    }
    group.finish();
}

fn gpu_page_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_gpu_page_size");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    let params = KernelParams::scaled(64);
    for page in [4_096u64, 2 * 1024 * 1024] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{page}B")),
            &page,
            |b, &page| {
                let trace = Kernel::Dct.generate(&params);
                b.iter(|| {
                    let mut cfg = SystemConfig::baseline();
                    cfg.mmu.gpu_page_bytes = page;
                    let comm = SynchronousFabric::new(FabricKind::Ideal, CommCosts::paper());
                    black_box(simulate(cfg, CommCosts::paper(), true, comm, &trace).total_ticks())
                });
            },
        );
    }
    group.finish();
}

fn noc_topology(c: &mut Criterion) {
    use hetmem_sim::NocTopology;
    let mut group = c.benchmark_group("ablation_noc_topology");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    let params = KernelParams::scaled(64);
    for topo in [NocTopology::Ring, NocTopology::Crossbar, NocTopology::Bus] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{topo:?}")),
            &topo,
            |b, &topo| {
                let trace = Kernel::KMeans.generate(&params);
                b.iter(|| {
                    let mut cfg = SystemConfig::baseline();
                    cfg.noc.topology = topo;
                    let comm = SynchronousFabric::new(FabricKind::Ideal, CommCosts::paper());
                    black_box(simulate(cfg, CommCosts::paper(), true, comm, &trace).total_ticks())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    dram_policy,
    llc_locality,
    gmac_async,
    aperture_vs_pci,
    l2_prefetch,
    gpu_page_size,
    noc_topology
);
criterion_main!(benches);
