//! Shared helpers for the table/figure harness binaries.
//!
//! Every binary regenerates one table or figure of the paper; see
//! `DESIGN.md`'s per-experiment index for the mapping. Binaries accept
//! `--scale N` to divide the workload (default: the paper's full-size
//! traces, `N = 1`).

pub mod harness;

/// Parses `--scale N` from the process arguments, defaulting to `default`.
///
/// # Panics
///
/// Panics with a usage message if the argument is present but malformed.
#[must_use]
pub fn scale_arg(default: u32) -> u32 {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--scale") {
        None => default,
        Some(i) => args
            .get(i + 1)
            .and_then(|v| v.parse::<u32>().ok())
            .filter(|&v| v > 0)
            .unwrap_or_else(|| panic!("usage: {} [--scale N]  (N >= 1)", args[0])),
    }
}

/// Prints a titled section.
pub fn section(title: &str) {
    println!("\n=== {title} ===\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_without_flag() {
        assert_eq!(scale_arg(7), 7);
    }
}
