//! A small self-contained benchmark harness with a criterion-shaped API.
//!
//! The container this repo builds in has no registry access, so `criterion`
//! cannot be resolved; this module keeps the bench sources structurally
//! identical (groups, ids, `iter` closures) by providing the subset of the
//! API they use. Timings are wall-clock: warm-up, then up to `sample_size`
//! timed iterations bounded by `measurement_time`, reported as
//! min/mean/max.

use std::time::{Duration, Instant};

/// Top-level driver handed to every bench function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related measurements.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
        }
    }

    /// Measures one stand-alone function.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        self.benchmark_group(name).run(name.to_owned(), f);
    }
}

/// A group of measurements sharing sampling parameters.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut BenchmarkGroup {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut BenchmarkGroup {
        self.warm_up = d;
        self
    }

    /// Bounds the total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut BenchmarkGroup {
        self.measurement = d;
        self
    }

    /// Measures `f` with `input`, labelled by `id`.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.run(id.label, |b| f(b, input));
    }

    /// Measures a closure without an input label.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        self.run(name.to_owned(), f);
    }

    /// Ends the group (kept for criterion API parity).
    pub fn finish(self) {}

    fn run(&self, label: String, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            sample_size: self.sample_size,
            warm_up: self.warm_up,
            measurement: self.measurement,
            samples: Vec::new(),
        };
        f(&mut b);
        report(&self.name, &label, &b.samples);
    }
}

/// A benchmark label: `group/function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A two-part id, criterion's `function/parameter` form.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Runs and times the measured closure.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f`: warm-up first, then `sample_size` samples (bounded by the
    /// group's measurement time, always at least one).
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            std::hint::black_box(f());
        }
        let run_start = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t.elapsed());
            if run_start.elapsed() >= self.measurement {
                break;
            }
        }
    }
}

fn report(group: &str, label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{group}/{label}  (no samples)");
        return;
    }
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    let mean = samples.iter().sum::<Duration>() / u32::try_from(samples.len()).expect("fits");
    println!(
        "{group}/{label}  time: [{} {} {}]  ({} samples)",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Bundles bench functions, mirroring criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name(c: &mut $crate::harness::Criterion) {
            $($f(c);)+
        }
    };
}

/// Entry point for a `harness = false` bench, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($name:ident) => {
        fn main() {
            let mut c = $crate::harness::Criterion::default();
            $name(&mut c);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_bounded_samples() {
        let mut b = Bencher {
            sample_size: 5,
            warm_up: Duration::ZERO,
            measurement: Duration::from_secs(1),
            samples: Vec::new(),
        };
        b.iter(|| 2 + 2);
        assert!(!b.samples.is_empty());
        assert!(b.samples.len() <= 5);
    }

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("f", "p").label, "f/p");
        assert_eq!(BenchmarkId::from_parameter(42).label, "42");
    }

    #[test]
    fn durations_format_with_adaptive_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}
