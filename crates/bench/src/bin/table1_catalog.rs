//! Regenerates Table I: the survey of existing heterogeneous-computing
//! memory systems.

use hetmem_core::report::TextTable;
use hetmem_core::{catalog, CatalogSpace};

fn main() {
    hetmem_bench::section("Table I: summary of heterogeneous computing memory systems");
    let mut table = TextTable::new(&[
        "scheme",
        "address space",
        "connection",
        "coherence",
        "shared data",
        "consistency",
        "synchronization",
        "locality",
    ]);
    for e in catalog() {
        table.row(vec![
            e.name.to_owned(),
            e.space.to_string(),
            e.connection.to_string(),
            e.coherence.to_owned(),
            e.shared_data.to_owned(),
            e.consistency.to_string(),
            e.synchronization.to_owned(),
            e.locality.to_owned(),
        ]);
    }
    println!("{}", table.render());

    // The observation the paper draws from the table.
    let unified_fully_coherent_strong = catalog()
        .iter()
        .filter(|e| e.space == CatalogSpace::Unified && e.fully_coherent)
        .count();
    println!(
        "Systems with a unified, fully-coherent, strongly-consistent memory: {}",
        unified_fully_coherent_strong
    );
    println!(
        "Disjoint-space systems: {} of {}",
        hetmem_core::by_space(CatalogSpace::Disjoint).len(),
        catalog().len()
    );
}
