//! Regenerates Table V: the source-line programmability metric, by lowering
//! each kernel's model-agnostic program for each address-space option and
//! counting the communication-handling lines.

use hetmem_core::report::TextTable;
use hetmem_dsl::{loc_table, paper_loc_table};

fn main() {
    hetmem_bench::section(
        "Table V: source lines to handle data communication (computed by lowering)",
    );
    let computed = loc_table();
    let paper = paper_loc_table();
    let mut table = TextTable::new(&[
        "kernel",
        "Comp",
        "UNI",
        "PAS",
        "DIS",
        "ADSM",
        "matches paper",
    ]);
    for (got, want) in computed.iter().zip(&paper) {
        table.row(vec![
            got.kernel.clone(),
            got.comp.to_string(),
            got.uni.to_string(),
            got.pas.to_string(),
            got.dis.to_string(),
            got.adsm.to_string(),
            if got == want { "yes" } else { "NO" }.to_owned(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Programmability ordering (paper §V-C): Unified < partially shared <= ADSM < disjoint"
    );
    assert_eq!(computed, paper, "computed Table V must match the paper");
    println!("All rows match the paper: yes");
}
