//! Quantifies the fast simulation modes against the committed serve-path
//! baseline — the snapshot committed as `BENCH_fastsim.json` at the repo
//! root.
//!
//! Regenerate with:
//!
//! ```text
//! cargo run --release -p hetmem-bench --bin bench_fastsim > BENCH_fastsim.json
//! ```
//!
//! Guard mode (used by CI) re-measures on the current host and fails when
//! a machine-independent mode-vs-mode ratio regressed more than 20 %
//! against the committed snapshot:
//!
//! ```text
//! cargo run --release -p hetmem-bench --bin bench_fastsim -- --check BENCH_fastsim.json
//! ```
//!
//! Three benchmark families:
//!
//! * `live_sim_scale512_*` — the service's live (cache-miss) request at
//!   scale 512 per `ExecMode`, the exact path the committed
//!   `BENCH_baseline.json` `live_sim_scale512` entry (mean 350 948 ns)
//!   measured. `speedup_vs_baseline` divides that committed mean by the
//!   fresh mean; the engine pool, not the mode, carries most of it, which
//!   is the point — the redesign removed the per-request rebuild.
//! * `sweep_scale1024_*` — the full kernel × target grid at scale 1024
//!   through `run_sweep` (one worker, no cache), reported per job.
//!   `per_job_ns` is the best of the timed passes (noise on a shared host
//!   is strictly one-sided) and feeds `speedup_vs_baseline`;
//!   `per_job_mean_ns` is also recorded.
//! * `trace_matmul_scale8_*` — one big trace (~2.1 M instructions) where
//!   the cycle loop, not setup, dominates. `speedup_vs_accurate` is the
//!   machine-independent ratio the `--check` guard enforces.
//!
//! Ratios near 1× (event-driven on a busy kernel) are recorded but not
//! guarded: they are dominated by host noise, not by the fast path.

use hetmem_core::experiment::ExperimentConfig;
use hetmem_core::{AddressSpace, IdealSpaceComm};
use hetmem_serve::{parse_sim_request, run_sim, Metrics};
use hetmem_sim::{CommCosts, ExecMode, SimulationBuilder};
use hetmem_trace::kernels::{Kernel, KernelParams};
use hetmem_xplore::{json, run_sweep, Json, SweepOptions, SweepSpec};
use std::time::{Duration, Instant};

/// The committed `BENCH_baseline.json` `live_sim_scale512` mean, used as
/// the per-job reference when the file itself is not readable from the
/// working directory.
const BASELINE_LIVE_MEAN_NS: u64 = 350_948;

/// Fraction of a committed ratio a fresh measurement must reach in
/// `--check` mode (a >20 % regression fails).
const GUARD_FRACTION: f64 = 0.8;

/// Guarded ratios must be comfortably above noise; smaller committed
/// ratios are informational only.
const GUARD_MIN_RATIO: f64 = 1.5;

/// The three engine modes under test, with the labels used in bench names.
const MODES: [(ExecMode, &str); 3] = [
    (ExecMode::Accurate, "accurate"),
    (ExecMode::EventDriven, "event_driven"),
    (
        ExecMode::Sampled {
            warm_interval: hetmem_sim::DEFAULT_WARM_INTERVAL,
            detail_window: hetmem_sim::DEFAULT_DETAIL_WINDOW,
        },
        "sampled",
    ),
];

struct Timing {
    samples: u64,
    min_ns: u64,
    mean_ns: u64,
    max_ns: u64,
}

/// Warms up for `warm`, then runs up to `samples` timed calls bounded by
/// `budget` of wall clock.
fn measure(warm: Duration, budget: Duration, samples: usize, mut f: impl FnMut()) -> Timing {
    let warm_clock = Instant::now();
    while warm_clock.elapsed() < warm {
        f();
    }
    let mut taken: Vec<u128> = Vec::new();
    let budget_clock = Instant::now();
    for _ in 0..samples {
        let t = Instant::now();
        f();
        taken.push(t.elapsed().as_nanos());
        if budget_clock.elapsed() >= budget {
            break;
        }
    }
    let ns = |v: u128| u64::try_from(v).unwrap_or(u64::MAX);
    Timing {
        samples: taken.len() as u64,
        min_ns: ns(*taken.iter().min().expect("at least one sample")),
        mean_ns: ns(taken.iter().sum::<u128>() / taken.len() as u128),
        max_ns: ns(*taken.iter().max().expect("at least one sample")),
    }
}

fn timing_fields(t: &Timing) -> Vec<(&'static str, Json)> {
    vec![
        ("samples", Json::UInt(t.samples)),
        ("min_ns", Json::UInt(t.min_ns)),
        ("mean_ns", Json::UInt(t.mean_ns)),
        ("max_ns", Json::UInt(t.max_ns)),
    ]
}

fn ratio(numerator: u64, denominator: u64) -> f64 {
    if denominator == 0 {
        0.0
    } else {
        // Two decimal places: these are committed and diffed.
        (numerator as f64 / denominator as f64 * 100.0).round() / 100.0
    }
}

/// The committed baseline's live mean, read from `BENCH_baseline.json`
/// when running at the repo root so the reference updates with the file.
fn baseline_live_mean_ns() -> u64 {
    let Ok(text) = std::fs::read_to_string("BENCH_baseline.json") else {
        return BASELINE_LIVE_MEAN_NS;
    };
    let Ok(doc) = json::parse(&text) else {
        return BASELINE_LIVE_MEAN_NS;
    };
    doc.get("benches")
        .and_then(|b| match b {
            Json::Arr(items) => items
                .iter()
                .find(|i| i.get("name").and_then(Json::as_str) == Some("live_sim_scale512")),
            _ => None,
        })
        .and_then(|b| b.get("mean_ns"))
        .and_then(Json::as_u64)
        .unwrap_or(BASELINE_LIVE_MEAN_NS)
}

/// Runs every benchmark family. `quick` trims warmup and sample counts to
/// CI-friendly durations; ratios stay comparable because both sides of
/// every guarded ratio shrink together.
fn run_benches(quick: bool) -> Vec<Json> {
    let warm = Duration::from_millis(if quick { 50 } else { 200 });
    let budget = Duration::from_secs(if quick { 1 } else { 2 });
    let mut benches = Vec::new();

    // Family 1: the serve live request path, per mode.
    let metrics = Metrics::default();
    let reference = baseline_live_mean_ns();
    for (_, label) in MODES {
        let body = format!(
            "{{\"kernel\":\"reduction\",\"system\":\"fusion\",\"scale\":512,\"mode\":\"{}\"}}",
            label.replace('_', "-")
        );
        let req = parse_sim_request(&body).expect("request parses");
        let t = measure(warm, budget, if quick { 20 } else { 60 }, || {
            std::hint::black_box(run_sim(&req, None, None, &metrics).expect("live run"));
        });
        let mut fields = vec![("name", Json::Str(format!("live_sim_scale512_{label}")))];
        fields.extend(timing_fields(&t));
        fields.push((
            "speedup_vs_baseline",
            Json::Float(ratio(reference, t.mean_ns)),
        ));
        benches.push(Json::obj(fields));
    }

    // Family 2: the full design grid at scale 1024, per mode.
    let spec = SweepSpec::full(1024);
    let jobs = spec.expand().len() as u64;
    let config = ExperimentConfig::paper();
    let mut accurate_per_job = 0u64;
    for (mode, label) in MODES {
        let opts = SweepOptions::builder().workers(1).mode(mode).build();
        let t = measure(warm, budget, if quick { 5 } else { 20 }, || {
            std::hint::black_box(run_sweep(&spec, &config, &opts).expect("sweep runs"));
        });
        let per_job = t.min_ns / jobs;
        let per_job_mean = t.mean_ns / jobs;
        if label == "accurate" {
            accurate_per_job = per_job;
        }
        let mut fields = vec![
            ("name", Json::Str(format!("sweep_scale1024_{label}"))),
            ("jobs", Json::UInt(jobs)),
            ("per_job_ns", Json::UInt(per_job)),
            ("per_job_mean_ns", Json::UInt(per_job_mean)),
        ];
        fields.extend(timing_fields(&t));
        fields.push((
            "speedup_vs_baseline",
            Json::Float(ratio(reference, per_job)),
        ));
        if label != "accurate" {
            fields.push((
                "speedup_vs_accurate",
                Json::Float(ratio(accurate_per_job, per_job)),
            ));
        }
        benches.push(Json::obj(fields));
    }

    // Family 3: one cycle-loop-dominated trace, per mode.
    let trace = Kernel::MatrixMul.generate(&KernelParams::scaled(8));
    let mut accurate_mean = 0u64;
    for (mode, label) in MODES {
        let t = measure(
            if quick { Duration::ZERO } else { warm },
            Duration::from_secs(if quick { 2 } else { 4 }),
            if quick { 3 } else { 8 },
            || {
                let mut sim = SimulationBuilder::new()
                    .comm_model(IdealSpaceComm::new(
                        AddressSpace::Unified,
                        CommCosts::paper(),
                    ))
                    .mode(mode)
                    .build()
                    .expect("baseline config is valid");
                std::hint::black_box(sim.run(&trace).expect("well-formed trace"));
            },
        );
        if label == "accurate" {
            accurate_mean = t.mean_ns;
        }
        let mut fields = vec![("name", Json::Str(format!("trace_matmul_scale8_{label}")))];
        fields.extend(timing_fields(&t));
        if label != "accurate" {
            fields.push((
                "speedup_vs_accurate",
                Json::Float(ratio(accurate_mean, t.mean_ns)),
            ));
        }
        benches.push(Json::obj(fields));
    }

    benches
}

fn render(benches: Vec<Json>) -> String {
    Json::obj(vec![
        ("baseline", Json::Str("fastsim-modes".to_owned())),
        (
            "crate_version",
            Json::Str(env!("CARGO_PKG_VERSION").to_owned()),
        ),
        (
            "profile",
            Json::Str(
                if cfg!(debug_assertions) {
                    "debug"
                } else {
                    "release"
                }
                .to_owned(),
            ),
        ),
        (
            "reference",
            Json::obj(vec![
                ("bench", Json::Str("live_sim_scale512".to_owned())),
                ("file", Json::Str("BENCH_baseline.json".to_owned())),
                ("mean_ns", Json::UInt(baseline_live_mean_ns())),
            ]),
        ),
        (
            "method",
            Json::Str(
                "per_job_ns and sweep speedups use the best timed pass; \
                 speedup_vs_accurate ratios are same-host and machine-independent"
                    .to_owned(),
            ),
        ),
        ("benches", Json::Arr(benches)),
    ])
    .render()
}

/// Compares freshly measured `speedup_vs_accurate` ratios against the
/// committed snapshot; returns the list of regressions.
fn check(committed: &Json, fresh: &[Json]) -> Vec<String> {
    let Some(Json::Arr(committed_benches)) = committed.get("benches") else {
        return vec!["committed snapshot has no benches array".to_owned()];
    };
    let mut failures = Vec::new();
    let mut guarded = 0;
    for was in committed_benches {
        let Some(name) = was.get("name").and_then(Json::as_str) else {
            continue;
        };
        let Some(old) = was.get("speedup_vs_accurate").and_then(Json::as_f64) else {
            continue;
        };
        if old < GUARD_MIN_RATIO {
            continue;
        }
        guarded += 1;
        let Some(new) = fresh
            .iter()
            .find(|b| b.get("name").and_then(Json::as_str) == Some(name))
            .and_then(|b| b.get("speedup_vs_accurate"))
            .and_then(Json::as_f64)
        else {
            failures.push(format!("{name}: guarded bench missing from fresh run"));
            continue;
        };
        if new < old * GUARD_FRACTION {
            failures.push(format!(
                "{name}: speedup_vs_accurate {new:.2}x is below 80% of committed {old:.2}x"
            ));
        } else {
            eprintln!("ok {name}: {new:.2}x vs committed {old:.2}x");
        }
    }
    if guarded == 0 {
        failures.push("committed snapshot guards no ratios >= 1.5x".to_owned());
    }
    failures
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--check") => {
            let path = args
                .get(1)
                .map(String::as_str)
                .unwrap_or("BENCH_fastsim.json");
            let text =
                std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            let committed =
                json::parse(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e:?}"));
            let fresh = run_benches(true);
            let failures = check(&committed, &fresh);
            if failures.is_empty() {
                eprintln!("bench guard passed");
            } else {
                for f in &failures {
                    eprintln!("REGRESSION {f}");
                }
                std::process::exit(1);
            }
        }
        Some(other) => {
            eprintln!("unknown argument {other}; usage: bench_fastsim [--check <path>]");
            std::process::exit(2);
        }
        None => println!("{}", render(run_benches(false))),
    }
}
