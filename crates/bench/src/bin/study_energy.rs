//! Beyond the paper's measurements: the energy side of the design-space
//! comparison (§VII motivates the partially shared space with power/energy
//! opportunities). Estimates per-component energy for every case-study
//! cell.

use hetmem_core::experiment::ExperimentConfig;
use hetmem_core::report::TextTable;
use hetmem_core::{evaluate_energy, EvaluatedSystem};
use hetmem_trace::kernels::Kernel;

fn main() {
    let scale = hetmem_bench::scale_arg(1);
    hetmem_bench::section(&format!(
        "Energy study: per-component estimates for the evaluated systems (scale {scale})"
    ));
    let evals = evaluate_energy(&ExperimentConfig::scaled(scale));
    let mut table = TextTable::new(&[
        "kernel",
        "system",
        "total (µJ)",
        "cores",
        "caches",
        "DRAM",
        "comm",
        "static",
    ]);
    for kernel in Kernel::ALL {
        for system in EvaluatedSystem::ALL {
            if let Some(e) = evals
                .iter()
                .find(|e| e.kernel == kernel && e.system == system)
            {
                let b = &e.breakdown;
                table.row(vec![
                    kernel.name().to_owned(),
                    system.name().to_owned(),
                    format!("{:.1}", b.total_uj()),
                    format!("{:.1}", b.cores_uj),
                    format!("{:.1}", b.caches_uj),
                    format!("{:.1}", b.dram_uj),
                    format!("{:.2}", b.comm_uj),
                    format!("{:.1}", b.static_uj),
                ]);
            }
        }
    }
    println!("{}", table.render());
    println!("Shared-window systems (LRB, GMAC) save link energy by never moving results;");
    println!("Fusion replaces the PCI link's per-byte cost with cheap on-die copies.");
}
