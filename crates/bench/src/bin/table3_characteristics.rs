//! Regenerates Table III: benchmark characteristics, by generating each
//! kernel's trace and measuring it — then checks the measurements against
//! the paper's printed values.

use hetmem_core::report::TextTable;
use hetmem_trace::kernels::{Kernel, KernelParams};

fn main() {
    let scale = hetmem_bench::scale_arg(1);
    hetmem_bench::section("Table III: benchmark characteristics (measured from generated traces)");
    let params = KernelParams::scaled(scale);
    let mut table = TextTable::new(&[
        "name",
        "compute pattern",
        "CPU",
        "GPU",
        "serial",
        "# comms",
        "initial transfer (B)",
        "matches paper",
    ]);
    let mut all_match = true;
    for k in Kernel::ALL {
        let got = k.generate(&params).characteristics();
        let want = k.paper_characteristics();
        let matches = scale == 1 && got == want;
        all_match &= got == want || scale != 1;
        table.row(vec![
            k.name().to_owned(),
            k.compute_pattern().to_owned(),
            got.cpu_instructions.to_string(),
            got.gpu_instructions.to_string(),
            got.serial_instructions.to_string(),
            got.communications.to_string(),
            got.initial_transfer_bytes.to_string(),
            if scale == 1 {
                if matches { "yes" } else { "NO" }.to_owned()
            } else {
                format!("(scale {scale})")
            },
        ]);
    }
    println!("{}", table.render());
    if scale == 1 {
        println!(
            "All rows match the paper: {}",
            if all_match {
                "yes"
            } else {
                "NO — investigate"
            }
        );
        println!(
            "(Note: the paper prints 262244 B for dct's initial transfer — likely a typo \
             for 262144 — and we reproduce the printed value.)"
        );
    }
}
