//! Emits the search-overhead benchmark baseline as JSON — the snapshot
//! committed as `BENCH_search.json` at the repo root.
//!
//! Regenerate with:
//!
//! ```text
//! cargo run --release -p hetmem-bench --bin bench_search > BENCH_search.json
//! ```
//!
//! The measured path is what `hetmem search` adds on top of the cached
//! sweep engine: Pareto extraction on synthetic point sets, the first
//! strategy proposal over the full design space, a fully warm end-to-end
//! search (all cache hits), and rendering the deterministic JSON report.
//! Timings are wall-clock on whatever host runs this, so the committed
//! file is a point of comparison, not a promise.

use hetmem_search::{
    pareto_indices, run_search, Json, Objective, SearchConfig, SearchOptions, SearchRng,
    SearchSpace, SearchState, Strategy,
};
use std::time::{Duration, Instant};

/// Warm-up, then up to `samples` timed runs bounded by one second.
fn measure(name: &str, samples: usize, mut f: impl FnMut()) -> Json {
    let warm = Instant::now();
    while warm.elapsed() < Duration::from_millis(200) {
        f();
    }
    let mut taken: Vec<u128> = Vec::new();
    let budget = Instant::now();
    for _ in 0..samples {
        let t = Instant::now();
        f();
        taken.push(t.elapsed().as_nanos());
        if budget.elapsed() >= Duration::from_secs(1) {
            break;
        }
    }
    let min = *taken.iter().min().expect("samples");
    let max = *taken.iter().max().expect("samples");
    let mean = taken.iter().sum::<u128>() / taken.len() as u128;
    let ns = |v: u128| Json::UInt(u64::try_from(v).unwrap_or(u64::MAX));
    Json::obj(vec![
        ("name", Json::Str(name.to_owned())),
        ("samples", Json::UInt(taken.len() as u64)),
        ("min_ns", ns(min)),
        ("mean_ns", ns(mean)),
        ("max_ns", ns(max)),
    ])
}

/// Deterministic synthetic objective vectors (4 axes, seeded).
fn synthetic_points(n: usize) -> Vec<Vec<f64>> {
    let mut rng = SearchRng::new(42);
    (0..n)
        .map(|_| (0..4).map(|_| (rng.next_u64() % 1_000) as f64).collect())
        .collect()
}

fn main() {
    let points_64 = synthetic_points(64);
    let points_256 = synthetic_points(256);
    let space = SearchSpace::full(512);

    let dir = std::env::temp_dir().join(format!("hetmem-bench-search-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut warm_space = SearchSpace::full(512);
    warm_space.kernels.truncate(1);
    let config = SearchConfig {
        budget: warm_space.exhaustive_jobs(),
        space: warm_space,
        objectives: Objective::ALL.to_vec(),
        strategy: Strategy::Random,
        seed: 7,
        mode: hetmem_sim::ExecMode::Accurate,
    };
    let fill = SearchOptions {
        workers: 1,
        cache_dir: Some(dir.clone()),
        ..SearchOptions::default()
    };
    let result = run_search(&config, fill).expect("fill run");

    let benches = vec![
        measure("pareto_extraction_64", 200, || {
            std::hint::black_box(pareto_indices(&points_64));
        }),
        measure("pareto_extraction_256", 100, || {
            std::hint::black_box(pareto_indices(&points_256));
        }),
        measure("strategy_first_proposal", 200, || {
            let mut optimizer = Strategy::Halving.build(7, &space);
            let evaluated = vec![None; space.len()];
            let state = SearchState {
                space: &space,
                evaluated: &evaluated,
                frontier: &[],
            };
            std::hint::black_box(optimizer.propose(&state, space.len()));
        }),
        measure("warm_search_end_to_end", 50, || {
            let opts = SearchOptions {
                workers: 1,
                cache_dir: Some(dir.clone()),
                ..SearchOptions::default()
            };
            std::hint::black_box(run_search(&config, opts).expect("warm search"));
        }),
        measure("result_json_render", 200, || {
            std::hint::black_box(result.to_json().render());
        }),
    ];

    let out = Json::obj(vec![
        ("baseline", Json::Str("search-overhead".to_owned())),
        (
            "crate_version",
            Json::Str(env!("CARGO_PKG_VERSION").to_owned()),
        ),
        (
            "profile",
            Json::Str(
                if cfg!(debug_assertions) {
                    "debug"
                } else {
                    "release"
                }
                .to_owned(),
            ),
        ),
        ("scale", Json::UInt(512)),
        ("benches", Json::Arr(benches)),
    ]);
    println!("{}", out.render());
    let _ = std::fs::remove_dir_all(&dir);
}
