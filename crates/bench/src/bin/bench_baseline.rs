//! Emits the serve-path benchmark baseline as JSON — the snapshot
//! committed as `BENCH_baseline.json` at the repo root.
//!
//! Regenerate with:
//!
//! ```text
//! cargo run --release -p hetmem-bench --bin bench_baseline > BENCH_baseline.json
//! ```
//!
//! The measured path is the service's per-request overhead: body decode,
//! a cache-hit answer, a live (cache-miss) simulation at scale 512, the
//! metrics snapshot, and one full loopback HTTP round-trip against a
//! warm cache. Timings are wall-clock on whatever host runs this, so the
//! committed file is a point of comparison, not a promise.

use hetmem_serve::{parse_sim_request, run_sim, Metrics, ServeOptions, Server};
use hetmem_xplore::{DiskCache, Json};
use std::io::{Read as _, Write as _};
use std::time::{Duration, Instant};

const BODY: &str = "{\"kernel\":\"reduction\",\"system\":\"fusion\",\"scale\":512}";

/// Warm-up, then up to `samples` timed runs bounded by one second.
fn measure(name: &str, samples: usize, mut f: impl FnMut()) -> Json {
    let warm = Instant::now();
    while warm.elapsed() < Duration::from_millis(200) {
        f();
    }
    let mut taken: Vec<u128> = Vec::new();
    let budget = Instant::now();
    for _ in 0..samples {
        let t = Instant::now();
        f();
        taken.push(t.elapsed().as_nanos());
        if budget.elapsed() >= Duration::from_secs(1) {
            break;
        }
    }
    let min = *taken.iter().min().expect("samples");
    let max = *taken.iter().max().expect("samples");
    let mean = taken.iter().sum::<u128>() / taken.len() as u128;
    let ns = |v: u128| Json::UInt(u64::try_from(v).unwrap_or(u64::MAX));
    Json::obj(vec![
        ("name", Json::Str(name.to_owned())),
        ("samples", Json::UInt(taken.len() as u64)),
        ("min_ns", ns(min)),
        ("mean_ns", ns(mean)),
        ("max_ns", ns(max)),
    ])
}

/// One POST /v1/sim round-trip over a real loopback socket.
fn round_trip(addr: std::net::SocketAddr) {
    let mut conn = std::net::TcpStream::connect(addr).expect("connect");
    let request = format!(
        "POST /v1/sim HTTP/1.1\r\nhost: bench\r\ncontent-length: {}\r\n\r\n{BODY}",
        BODY.len()
    );
    conn.write_all(request.as_bytes()).expect("write");
    let mut reply = String::new();
    conn.read_to_string(&mut reply).expect("read");
    assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
}

fn main() {
    let dir = std::env::temp_dir().join(format!("hetmem-bench-baseline-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = DiskCache::open(&dir).expect("cache opens");
    let req = parse_sim_request(BODY).expect("parses");
    let metrics = Metrics::default();
    run_sim(&req, Some(&cache), None, &metrics).expect("fill run");

    let mut benches = vec![
        measure("decode_sim_request", 200, || {
            std::hint::black_box(parse_sim_request(BODY).expect("parses"));
        }),
        measure("cache_hit_response", 100, || {
            std::hint::black_box(run_sim(&req, Some(&cache), None, &metrics).expect("cache hit"));
        }),
        measure("live_sim_scale512", 20, || {
            std::hint::black_box(run_sim(&req, None, None, &metrics).expect("live run"));
        }),
        measure("metrics_snapshot", 200, || {
            std::hint::black_box(metrics.to_json(0, 0, 8).render());
        }),
    ];

    let server = Server::start(&ServeOptions {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        queue_depth: 32,
        cache_dir: Some(dir.clone()),
        ..ServeOptions::default()
    })
    .expect("server starts");
    benches.push(measure("loopback_cache_hit_round_trip", 50, || {
        round_trip(server.local_addr());
    }));
    server.shutdown();
    server.wait();

    let out = Json::obj(vec![
        ("baseline", Json::Str("serve-request-path".to_owned())),
        (
            "crate_version",
            Json::Str(env!("CARGO_PKG_VERSION").to_owned()),
        ),
        (
            "profile",
            Json::Str(
                if cfg!(debug_assertions) {
                    "debug"
                } else {
                    "release"
                }
                .to_owned(),
            ),
        ),
        ("scale", Json::UInt(512)),
        ("benches", Json::Arr(benches)),
    ]);
    println!("{}", out.render());
    let _ = std::fs::remove_dir_all(&dir);
}
