//! Beyond the paper: the locality-management study §V-D says it could not
//! perform. Compares implicit shared-cache management against the explicit
//! `push` with the hybrid locality bit (§II-B5), and against the same
//! pushes with the bit ignored.

use hetmem_core::experiment::ExperimentConfig;
use hetmem_core::report::TextTable;
use hetmem_core::run_locality_study;

fn main() {
    let scale = hetmem_bench::scale_arg(1);
    hetmem_bench::section(&format!(
        "Locality study: shared-table reuse under streaming pressure (scale {scale})"
    ));
    let rows = run_locality_study(&ExperimentConfig::scaled(scale));
    let base = rows[0].total_ticks as f64;
    let mut table = TextTable::new(&["variant", "total ticks", "vs implicit", "LLC miss rate"]);
    for r in &rows {
        table.row(vec![
            r.variant.to_string(),
            r.total_ticks.to_string(),
            format!("{:.3}x", r.total_ticks as f64 / base),
            format!("{:.1}%", 100.0 * r.llc_miss_rate),
        ]);
    }
    println!("{}", table.render());
    println!("The hybrid locality bit lets the pinned shared table survive both PUs'");
    println!("streaming floods; ignoring the bit (plain LRU) throws the push away.");
}
