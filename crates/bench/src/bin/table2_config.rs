//! Regenerates Table II: the baseline system configuration.

use hetmem_sim::{ClockDomain, SystemConfig};

fn main() {
    hetmem_bench::section("Table II: baseline system configuration");
    let c = SystemConfig::baseline();
    println!(
        "CPU: 1 core, {:.1} GHz, out-of-order, gshare",
        ClockDomain::CPU.frequency_hz() as f64 / 1e9
    );
    println!(
        "  issue width {}, ROB {} entries, mispredict penalty {} cycles",
        c.cpu.issue_width, c.cpu.rob_entries, c.cpu.mispredict_penalty
    );
    println!(
        "  L1D: {}-way {} KB ({}-cycle)   L2: {}-way {} KB ({}-cycle)",
        c.cpu.l1d.associativity,
        c.cpu.l1d.capacity_bytes / 1024,
        c.cpu.l1d.latency_cycles,
        c.cpu.l2.associativity,
        c.cpu.l2.capacity_bytes / 1024,
        c.cpu.l2.latency_cycles
    );
    println!(
        "GPU: 1 core, {:.1} GHz, in-order, {}-wide SIMD, stall on branch ({} cycles)",
        ClockDomain::GPU.frequency_hz() as f64 / 1e9,
        c.gpu.simd_width,
        c.gpu.branch_stall_cycles
    );
    println!(
        "  L1D: {}-way {} KB ({}-cycle)   scratchpad: {} KB s/w managed ({}-cycle)",
        c.gpu.l1d.associativity,
        c.gpu.l1d.capacity_bytes / 1024,
        c.gpu.l1d.latency_cycles,
        c.gpu.scratchpad_bytes / 1024,
        c.gpu.scratchpad_latency
    );
    println!(
        "L3: {}-way {} MB total ({} tiles, {}-cycle), ring-bus network ({} cycles/hop)",
        c.llc.tile.associativity,
        u64::from(c.llc.tiles) * c.llc.tile.capacity_bytes / (1024 * 1024),
        c.llc.tiles,
        c.llc.tile.latency_cycles,
        c.noc.hop_cycles
    );
    println!(
        "DRAM: DDR3-1333, {} controllers, {:?} scheduling, {} banks/channel, {} KB rows",
        c.dram.channels,
        c.dram.policy,
        c.dram.banks_per_channel,
        c.dram.row_bytes / 1024
    );
    println!(
        "MMU: {} KB CPU pages / {} KB GPU pages, {}-entry TLBs, {}-cycle walks",
        c.mmu.cpu_page_bytes / 1024,
        c.mmu.gpu_page_bytes / 1024,
        c.mmu.tlb_entries,
        c.mmu.walk_cycles
    );
}
