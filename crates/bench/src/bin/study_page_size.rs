//! Beyond the paper's measurements: §II-A1 notes that a virtually unified
//! (or partially shared) address space lets each PU choose its own page
//! size — "GPUs can have large page size to accommodate high stream
//! locality". This harness quantifies that option on every kernel.

use hetmem_core::experiment::{run_page_size_study, ExperimentConfig};
use hetmem_core::report::TextTable;
use hetmem_trace::kernels::Kernel;

fn main() {
    let scale = hetmem_bench::scale_arg(1);
    hetmem_bench::section(&format!(
        "GPU page-size study: 4 KB vs 64 KB vs 2 MB pages (scale {scale})"
    ));
    let cfg = ExperimentConfig::scaled(scale);
    let sizes = [4_096u64, 64 * 1024, 2 * 1024 * 1024];
    let mut table = TextTable::new(&[
        "kernel",
        "page size",
        "total ticks",
        "vs 4KB",
        "GPU TLB miss rate",
    ]);
    for kernel in Kernel::ALL {
        let rows = run_page_size_study(kernel, &cfg, &sizes);
        let base = rows[0].total_ticks as f64;
        for r in &rows {
            table.row(vec![
                kernel.name().to_owned(),
                if r.gpu_page_bytes >= 1024 * 1024 {
                    format!("{} MB", r.gpu_page_bytes / (1024 * 1024))
                } else {
                    format!("{} KB", r.gpu_page_bytes / 1024)
                },
                r.total_ticks.to_string(),
                format!("{:.4}x", r.total_ticks as f64 / base),
                format!("{:.2}%", 100.0 * r.gpu_tlb_miss_rate),
            ]);
        }
    }
    println!("{}", table.render());
    println!("Larger GPU pages eliminate page walks on streaming kernels — one of the");
    println!("hardware design options the paper credits to non-physically-unified");
    println!("address spaces (each PU keeps its own page-table format).");
}
