//! Regenerates Figure 5: execution-time breakdown (sequential / parallel /
//! communication) for the five evaluated heterogeneous systems on all six
//! kernels.

use hetmem_core::experiment::ExperimentConfig;
use hetmem_core::report::render_figure5;
use hetmem_xplore::{run_case_studies, SweepOptions};

fn main() {
    let scale = hetmem_bench::scale_arg(1);
    hetmem_bench::section(&format!(
        "Figure 5: evaluation of five heterogeneous architecture configurations (scale {scale})"
    ));
    let cfg = ExperimentConfig::scaled(scale);
    let (runs, stats) = run_case_studies(&cfg, &SweepOptions::default()).expect("sweep");
    eprintln!("{stats}");
    println!("{}", render_figure5(&runs));
    println!("Expected shape (paper):");
    println!(" - parallel computation dominates every kernel;");
    println!(" - CPU+GPU, LRB and GMAC run longer than Fusion and IDEAL-HETERO;");
    println!(" - reduction, merge sort and k-mean show the largest communication shares.");
}
