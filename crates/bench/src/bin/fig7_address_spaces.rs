//! Regenerates Figure 7: the four memory-address-space options under
//! idealized communication (shared cache, free transfers), isolating the
//! address-space design itself — which the paper shows does not affect
//! performance.

use hetmem_core::experiment::ExperimentConfig;
use hetmem_core::report::render_figure7;
use hetmem_xplore::{run_address_spaces, SweepOptions};

fn main() {
    let scale = hetmem_bench::scale_arg(1);
    hetmem_bench::section(&format!(
        "Figure 7: memory address space options with ideal communication (scale {scale})"
    ));
    let cfg = ExperimentConfig::scaled(scale);
    let (runs, stats) = run_address_spaces(&cfg, &SweepOptions::default()).expect("sweep");
    eprintln!("{stats}");
    println!("{}", render_figure7(&runs));
    println!("Expected shape (paper): all four options within noise of each other — the");
    println!("address-space design itself does not affect performance; it is about");
    println!("programmability (Table V) and hardware design options.");
}
