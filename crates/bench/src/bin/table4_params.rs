//! Regenerates Table IV: the communication-overhead modelling parameters.

use hetmem_core::report::TextTable;
use hetmem_sim::{CommCosts, FabricKind};

fn main() {
    hetmem_bench::section("Table IV: parameters of modeling communication overhead");
    let c = CommCosts::paper();
    let mut table = TextTable::new(&["name", "description", "system", "latency (CPU cycles)"]);
    table.row(vec![
        "api-pci".into(),
        "mem copy using PCI-E".into(),
        "CPU+GPU, GMAC".into(),
        format!("{}+trans_rate", c.api_pci_cycles),
    ]);
    table.row(vec![
        "api-acq".into(),
        "acquire action".into(),
        "LRB".into(),
        c.api_acq_cycles.to_string(),
    ]);
    table.row(vec![
        "api-tr".into(),
        "data transfer".into(),
        "LRB".into(),
        c.api_tr_cycles.to_string(),
    ]);
    table.row(vec![
        "lib-pf".into(),
        "page fault".into(),
        "LRB".into(),
        c.lib_pf_cycles.to_string(),
    ]);
    println!("{}", table.render());
    println!(
        "trans_rate = {} GB/s (PCI-E 2.0)",
        c.pci_bytes_per_sec as f64 / 1e9
    );

    hetmem_bench::section("Derived end-to-end transfer costs (320512 B, the reduction input)");
    let mut derived = TextTable::new(&["fabric", "ticks", "microseconds"]);
    for f in FabricKind::ALL {
        let ticks = f.transfer_ticks(320_512, &c);
        derived.row(vec![
            f.to_string(),
            ticks.to_string(),
            format!("{:.2}", hetmem_sim::ticks_to_ns(ticks) / 1000.0),
        ]);
    }
    println!("{}", derived.render());
}
