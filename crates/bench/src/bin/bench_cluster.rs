//! Emits the distributed-sweep scaling baseline as JSON — the snapshot
//! committed as `BENCH_cluster.json` at the repo root.
//!
//! Regenerate with:
//!
//! ```text
//! cargo run --release -p hetmem-bench --bin bench_cluster > BENCH_cluster.json
//! ```
//!
//! Pass `--check` to also enforce the scaling guard: the 3-node
//! distributed sweep must be at least 2x faster than the single-node
//! run, and byte-identical to it. Wall-clock scaling needs parallel
//! hardware — three loopback nodes on one core serialize every part,
//! so the speedup bound is enforced only on hosts with at least three
//! cores; below that the guard still demands byte identity and bounds
//! the scatter overhead (distributed may not be worse than 3x the
//! single-node run). The measured workload is the full
//! kernel x model grid at trace scale 512 with cold caches throughout
//! (no cache directory anywhere, so every job simulates live). The
//! single-node side runs the plain in-process engine with one worker;
//! the fleet side scatters the same jobs across three loopback serve
//! nodes with one worker each, so the speedup isolates what the
//! scatter-gather path adds: ring partitioning, frame round-trips, and
//! remote execution overlap. Timings are wall-clock on whatever host
//! runs this, so the committed file is a point of comparison, not a
//! promise.

use hetmem_cluster::FleetDispatcher;
use hetmem_core::experiment::ExperimentConfig;
use hetmem_serve::{ServeOptions, Server};
use hetmem_xplore::json::Json;
use hetmem_xplore::{run_jobs, to_jsonl, Job, SweepOptions, SweepSpec};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The benchmark workload: every kernel x system x space point at trace
/// scale 512 — the same grid the differential tests scatter.
fn grid() -> Vec<Job> {
    SweepSpec::full(512).expand()
}

fn single_node(jobs: &[Job]) -> (Duration, String) {
    let opts = SweepOptions::builder().workers(1).build();
    let start = Instant::now();
    let out = run_jobs(jobs, &ExperimentConfig::paper(), &opts).expect("single-node sweep");
    (start.elapsed(), to_jsonl(&out.records))
}

fn three_node(jobs: &[Job]) -> (Duration, String) {
    let base = ServeOptions {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        queue_depth: 32,
        heartbeat_ms: 100,
        ..ServeOptions::default()
    };
    let seed = Server::start(&ServeOptions {
        advertise: Some("127.0.0.1:0".to_owned()),
        ..base.clone()
    })
    .expect("seed node");
    let seed_addr = seed.cluster_addr().expect("clustered").to_string();
    let join = |addr: &str| {
        Server::start(&ServeOptions {
            join: Some(addr.to_owned()),
            ..base.clone()
        })
        .expect("joining node")
    };
    let b = join(&seed_addr);
    let c = join(&seed_addr);
    let nodes = [&seed, &b, &c];

    // Wait until the seed reports three members before timing: the
    // dispatcher snapshot doubles as the membership probe.
    let deadline = Instant::now() + Duration::from_secs(30);
    let dispatcher = loop {
        let fleet = FleetDispatcher::connect(&seed_addr).expect("fleet connect");
        if fleet.nodes() == 3 {
            break Arc::new(fleet);
        }
        assert!(Instant::now() < deadline, "fleet membership never settled");
        std::thread::sleep(Duration::from_millis(20));
    };
    let opts = SweepOptions::builder()
        .workers(1)
        .dispatcher(Some(dispatcher as Arc<dyn hetmem_xplore::JobDispatcher>))
        .build();
    let start = Instant::now();
    let out = run_jobs(jobs, &ExperimentConfig::paper(), &opts).expect("distributed sweep");
    let taken = start.elapsed();

    for node in nodes {
        node.shutdown();
    }
    for node in [seed, b, c] {
        node.wait();
    }
    (taken, to_jsonl(&out.records))
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let jobs = grid();

    // Warm the global trace store so neither side pays first-touch
    // generation, then take the best of three cold-cache runs each.
    let _ = single_node(&jobs);
    let (mut solo, mut fleet) = (Duration::MAX, Duration::MAX);
    let (mut solo_bytes, mut fleet_bytes) = (String::new(), String::new());
    for _ in 0..3 {
        let (t, bytes) = single_node(&jobs);
        if t < solo {
            solo = t;
        }
        solo_bytes = bytes;
        let (t, bytes) = three_node(&jobs);
        if t < fleet {
            fleet = t;
        }
        fleet_bytes = bytes;
    }

    assert_eq!(
        solo_bytes, fleet_bytes,
        "distributed records must be byte-identical to single-node"
    );
    let speedup = solo.as_secs_f64() / fleet.as_secs_f64().max(f64::EPSILON);
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let guard = if cores >= 3 {
        "speedup >= 2.0"
    } else {
        "overhead <= 3.0x (fewer than 3 cores: parts serialize)"
    };

    let ms = |d: Duration| Json::UInt(u64::try_from(d.as_millis()).unwrap_or(u64::MAX));
    let out = Json::obj(vec![
        ("baseline", Json::Str("cluster-sweep-scaling".to_owned())),
        (
            "crate_version",
            Json::Str(env!("CARGO_PKG_VERSION").to_owned()),
        ),
        (
            "profile",
            Json::Str(
                if cfg!(debug_assertions) {
                    "debug"
                } else {
                    "release"
                }
                .to_owned(),
            ),
        ),
        ("scale", Json::UInt(512)),
        ("jobs", Json::UInt(jobs.len() as u64)),
        ("cores", Json::UInt(cores as u64)),
        ("single_node_ms", ms(solo)),
        ("three_node_ms", ms(fleet)),
        (
            "speedup",
            Json::Str(format!("{:.2}", (speedup * 100.0).round() / 100.0)),
        ),
        ("guard", Json::Str(guard.to_owned())),
        ("byte_identical", Json::Bool(true)),
    ]);
    println!("{}", out.render());

    if check {
        if cores >= 3 && speedup < 2.0 {
            eprintln!("FAIL: 3-node speedup {speedup:.2}x is below the 2x guard");
            std::process::exit(1);
        }
        if cores < 3 && fleet.as_secs_f64() > solo.as_secs_f64() * 3.0 {
            eprintln!(
                "FAIL: scatter overhead {:.2}x exceeds the 3x bound",
                1.0 / speedup
            );
            std::process::exit(1);
        }
    }
}
