//! Beyond the paper: efficiency metrics for the evaluated systems and the
//! resulting Pareto frontier (the paper's §VII future work).

use hetmem_core::experiment::ExperimentConfig;
use hetmem_core::report::TextTable;
use hetmem_core::{evaluate_systems, pareto_frontier};

fn main() {
    let scale = hetmem_bench::scale_arg(1);
    hetmem_bench::section(&format!(
        "Efficiency metrics & Pareto frontier over the evaluated systems (scale {scale})"
    ));
    let evals = evaluate_systems(&ExperimentConfig::scaled(scale));
    let frontier = pareto_frontier(&evals);
    let mut table = TextTable::new(&[
        "system",
        "perf geomean (µs)",
        "hw cost",
        "programmer burden (LoC)",
        "Pareto-optimal",
    ]);
    for (i, e) in evals.iter().enumerate() {
        table.row(vec![
            e.system.name().to_owned(),
            format!("{:.1}", e.perf_ticks / 42_000.0),
            e.hardware_cost.to_string(),
            format!("{:.1}", e.programmer_burden),
            if frontier.contains(&i) { "yes" } else { "" }.to_owned(),
        ]);
    }
    println!("{}", table.render());
}
