//! Beyond the paper: efficiency metrics for the evaluated systems and the
//! resulting Pareto frontier (the paper's §VII future work).
//!
//! The frontier logic is `hetmem-search`'s — this bin only evaluates the
//! systems and prints the shared table.

use hetmem_core::evaluate_systems;
use hetmem_core::experiment::ExperimentConfig;
use hetmem_search::system_frontier_table;

fn main() {
    let scale = hetmem_bench::scale_arg(1);
    hetmem_bench::section(&format!(
        "Efficiency metrics & Pareto frontier over the evaluated systems (scale {scale})"
    ));
    let evals = evaluate_systems(&ExperimentConfig::scaled(scale));
    println!("{}", system_frontier_table(&evals));
}
