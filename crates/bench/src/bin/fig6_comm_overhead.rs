//! Regenerates Figure 6: the communication overhead alone, for the five
//! evaluated systems on all six kernels.

use hetmem_core::experiment::ExperimentConfig;
use hetmem_core::report::render_figure6;
use hetmem_xplore::{run_case_studies, SweepOptions};

fn main() {
    let scale = hetmem_bench::scale_arg(1);
    hetmem_bench::section(&format!(
        "Figure 6: communication overhead for the evaluated systems (scale {scale})"
    ));
    let cfg = ExperimentConfig::scaled(scale);
    let (runs, stats) = run_case_studies(&cfg, &SweepOptions::default()).expect("sweep");
    eprintln!("{stats}");
    println!("{}", render_figure6(&runs));
    println!("Expected shape (paper): CPU+GPU > LRB > GMAC >> Fusion > IDEAL-HETERO (= 0);");
    println!("GMAC hides most of its copies behind computation; Fusion's memory-controller");
    println!("copies are cheap relative to PCI-E.");
}
