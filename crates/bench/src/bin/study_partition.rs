//! Beyond the paper: the work-partitioning sweep the paper delegates to
//! Qilin-style systems (§IV-B — "we simply divide the computational work
//! evenly"). Finds the time-optimal CPU/GPU split per kernel on the ideal
//! system and reports how much the even split leaves on the table.

use hetmem_core::experiment::{best_partition, run_partition_sweep, ExperimentConfig};
use hetmem_core::report::TextTable;
use hetmem_core::EvaluatedSystem;
use hetmem_trace::kernels::Kernel;

fn main() {
    let scale = hetmem_bench::scale_arg(4);
    hetmem_bench::section(&format!(
        "Work-partitioning sweep on IDEAL-HETERO (scale {scale})"
    ));
    let cfg = ExperimentConfig::scaled(scale);
    let shares = [1u32, 2, 5, 10, 25, 50, 75, 90];
    let mut table = TextTable::new(&[
        "kernel",
        "best GPU share %",
        "best total (ticks)",
        "even-split total",
        "even/best",
    ]);
    for kernel in Kernel::ALL {
        let rows = run_partition_sweep(EvaluatedSystem::IdealHetero, kernel, &cfg, &shares);
        let best = best_partition(&rows).clone();
        let even = rows
            .iter()
            .find(|r| r.gpu_share_pct == 50)
            .expect("50 swept")
            .total_ticks;
        table.row(vec![
            kernel.name().to_owned(),
            best.gpu_share_pct.to_string(),
            best.total_ticks.to_string(),
            even.to_string(),
            format!("{:.2}x", even as f64 / best.total_ticks as f64),
        ]);
    }
    println!("{}", table.render());
    println!("The in-order SIMD GPU retires these instruction streams more slowly than");
    println!("the out-of-order CPU, so the time-balanced split is CPU-leaning — the even");
    println!("division of the paper's methodology leaves the GPU as the parallel-phase");
    println!("critical path (visible in Figure 5's GPU-bound parallel bars).");
}
