//! # hetmem-xplore
//!
//! A parallel, cached design-space sweep engine for the hetmem
//! reproduction — the scaling layer the paper's evaluation grid grows
//! into.
//!
//! * [`SweepSpec`] — a declarative description of the axes to cover
//!   (kernels × evaluated systems × address spaces × scales) expanding
//!   deterministically into ordinally-numbered [`Job`]s.
//! * [`run_sweep`] / [`run_jobs`] — a `std::thread` worker pool over a
//!   shared job queue; each job is one single-threaded simulation, so jobs
//!   shard perfectly and results are bit-identical for any worker count.
//! * [`DiskCache`] — content-addressed on-disk memoization keyed by a
//!   stable hash of (job coordinates, hardware/cost configuration, crate
//!   version); warm re-runs skip simulation entirely.
//! * [`SweepRecord`] / [`OutputFormat`] — full-fidelity result records
//!   (the complete [`hetmem_sim::RunReport`]) with JSON-lines, CSV, and
//!   text-table emission built on an in-repo exact-round-trip JSON module
//!   ([`json`]).
//!
//! ## Example
//!
//! ```
//! use hetmem_core::experiment::ExperimentConfig;
//! use hetmem_xplore::{run_sweep, OutputFormat, SweepOptions, SweepSpec};
//!
//! let spec = SweepSpec::full(512); // tiny traces for the example
//! let config = ExperimentConfig::scaled(512);
//! let out = run_sweep(&spec, &config, &SweepOptions::with_workers(2)).expect("sweep");
//! assert_eq!(out.records.len(), 6 * 9);
//! let jsonl = OutputFormat::Json.render(&out.records);
//! assert_eq!(jsonl.lines().count(), out.records.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod check;
pub mod dispatch;
pub mod emit;
pub mod engine;
pub mod fix;
pub mod json;
pub mod obs;
pub mod ser;
pub mod spec;

pub use cache::DiskCache;
pub use check::{check_reports_to_jsonl, diagnostic_to_json};
pub use dispatch::{DispatchContext, JobDispatcher, JobPart};
pub use emit::{to_csv, to_jsonl, to_table, OutputFormat};
pub use engine::{
    content_key, content_key_with, execute_job, execute_job_observed, job_trace,
    run_address_spaces, run_case_studies, run_jobs, run_sweep, SweepOptions, SweepOptionsBuilder,
    SweepOutput, SweepStats,
};
pub use fix::{fix_report_to_json, fix_reports_to_jsonl};
pub use json::Json;
pub use obs::{events_to_jsonl, timeline_to_jsonl};
pub use ser::{
    report_from_json, report_to_json, timeline_from_json, timeline_to_json, SweepRecord, CSV_HEADER,
};
pub use spec::{parse_kernel, parse_space, parse_system, Job, JobKind, SweepSpec};
