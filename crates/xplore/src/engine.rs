//! The sweep executor: a `std::thread` worker pool over a shared job
//! queue, with optional content-addressed result caching.
//!
//! Jobs are independent single-threaded simulations, so they shard
//! perfectly; the pool pulls indices from an atomic cursor and results are
//! written back into per-job slots, making the collected output identical
//! for any worker count. Generated traces are shared across jobs of the
//! same (kernel, scale) through a small in-memory store so a five-system
//! case-study row pays trace generation once, not five times.

use crate::cache::DiskCache;
use crate::ser::SweepRecord;
use crate::spec::{Job, JobKind, SweepSpec};
use hetmem_core::experiment::{CaseStudyRun, ExperimentConfig, SpaceRun};
use hetmem_core::IdealSpaceComm;
use hetmem_sim::System;
use hetmem_trace::kernels::KernelParams;
use hetmem_trace::PhasedTrace;
use std::collections::HashMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Execution knobs for a sweep.
#[derive(Clone, Debug, Default)]
pub struct SweepOptions {
    /// Worker threads; `0` uses the host's available parallelism.
    pub workers: usize,
    /// Cache directory; `None` disables memoization.
    pub cache_dir: Option<PathBuf>,
    /// Emit a live progress line on stderr.
    pub progress: bool,
}

impl SweepOptions {
    /// Options with `n` workers and no cache.
    #[must_use]
    pub fn with_workers(n: usize) -> SweepOptions {
        SweepOptions {
            workers: n,
            ..SweepOptions::default()
        }
    }
}

/// What a finished sweep did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SweepStats {
    /// Jobs executed (including cache hits).
    pub jobs: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Jobs answered from the cache.
    pub cache_hits: u64,
    /// Jobs simulated live.
    pub cache_misses: u64,
    /// Wall-clock duration of the whole sweep.
    pub wall: Duration,
}

impl std::fmt::Display for SweepStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} jobs on {} workers in {:.2} s ({} cache hits, {} misses)",
            self.jobs,
            self.workers,
            self.wall.as_secs_f64(),
            self.cache_hits,
            self.cache_misses
        )
    }
}

/// A finished sweep: records sorted by job ordinal, plus run statistics.
#[derive(Clone, Debug)]
pub struct SweepOutput {
    /// One record per job, sorted by `id`.
    pub records: Vec<SweepRecord>,
    /// Execution statistics.
    pub stats: SweepStats,
}

/// Shares generated traces between jobs of the same (kernel, scale).
#[derive(Default)]
struct TraceStore {
    map: Mutex<HashMap<(&'static str, u32), Arc<PhasedTrace>>>,
}

impl TraceStore {
    fn get(&self, job: &Job) -> Arc<PhasedTrace> {
        let key = (job.kernel.name(), job.scale);
        if let Some(t) = self.map.lock().expect("trace store lock").get(&key) {
            return Arc::clone(t);
        }
        // Generate outside the lock so other kernels proceed; a racing
        // duplicate generation is wasted work but still deterministic.
        let trace = Arc::new(job.kernel.generate(&KernelParams::scaled(job.scale)));
        let mut map = self.map.lock().expect("trace store lock");
        Arc::clone(map.entry(key).or_insert(trace))
    }
}

/// The content key addressing one job's cache entry: everything that
/// influences its result — job coordinates, the full hardware and cost
/// configuration, and the crate version.
#[must_use]
pub fn content_key(job: &Job, config: &ExperimentConfig) -> String {
    format!(
        "hetmem-xplore v{} | {} | system={:?} | costs={:?}",
        env!("CARGO_PKG_VERSION"),
        job.identity(),
        config.system,
        config.costs,
    )
}

/// Simulates one job on a pre-generated trace.
#[must_use]
pub fn execute_job(job: &Job, config: &ExperimentConfig, trace: &PhasedTrace) -> SweepRecord {
    let mut sim = System::with_costs(&config.system, config.costs);
    let report = match job.kind {
        JobKind::CaseStudy { system } => {
            let mut comm = system.comm_model(config.costs);
            sim.run(trace, &mut comm)
        }
        JobKind::AddressSpace { space } => {
            let mut comm = IdealSpaceComm::new(space, config.costs);
            sim.run(trace, &mut comm)
        }
    };
    SweepRecord {
        id: job.id,
        kind: job.kind_name().to_owned(),
        kernel: job.kernel.name().to_owned(),
        target: job.target_name().to_owned(),
        scale: job.scale,
        design_point: job.design_point_label(),
        report,
    }
}

/// Expands `spec` and runs every job. See [`run_jobs`].
///
/// # Errors
///
/// Returns an error when the cache directory cannot be opened.
pub fn run_sweep(
    spec: &SweepSpec,
    config: &ExperimentConfig,
    opts: &SweepOptions,
) -> std::io::Result<SweepOutput> {
    run_jobs(&spec.expand(), config, opts)
}

/// Runs `jobs` on the worker pool. The returned records are sorted by job
/// ordinal and are bit-identical for any worker count and any cache state.
///
/// # Errors
///
/// Returns an error when the cache directory cannot be opened.
///
/// # Panics
///
/// Panics if a worker thread panics (propagated by `std::thread::scope`).
pub fn run_jobs(
    jobs: &[Job],
    config: &ExperimentConfig,
    opts: &SweepOptions,
) -> std::io::Result<SweepOutput> {
    let start = Instant::now();
    let cache = match &opts.cache_dir {
        Some(dir) => Some(DiskCache::open(dir).map_err(|e| {
            std::io::Error::new(
                e.kind(),
                format!("cannot open cache dir {}: {e}", dir.display()),
            )
        })?),
        None => None,
    };
    let workers = if opts.workers == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        opts.workers
    }
    .min(jobs.len().max(1));

    let cursor = AtomicUsize::new(0);
    let traces = TraceStore::default();
    let (tx, rx) = mpsc::channel::<(usize, SweepRecord)>();
    let mut slots: Vec<Option<SweepRecord>> = vec![None; jobs.len()];

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            let traces = &traces;
            let cache = cache.as_ref();
            scope.spawn(move || loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(index) else { break };
                let key = content_key(job, config);
                let record = match cache.and_then(|c| c.get(&key)) {
                    Some(mut cached) => {
                        // Ordinals belong to this sweep, not the cache entry
                        // (a differently-filtered sweep may have stored it).
                        cached.id = job.id;
                        cached
                    }
                    None => {
                        let record = execute_job(job, config, &traces.get(job));
                        if let Some(c) = cache {
                            if let Err(e) = c.put(&key, &record) {
                                eprintln!("warning: cache write failed: {e}");
                            }
                        }
                        record
                    }
                };
                if tx.send((index, record)).is_err() {
                    break;
                }
            });
        }
        drop(tx);

        for (done, (index, record)) in rx.into_iter().enumerate() {
            if opts.progress {
                let mut err = std::io::stderr().lock();
                let _ = write!(
                    err,
                    "\r[{:>width$}/{}] {} {}/{}        ",
                    done + 1,
                    jobs.len(),
                    record.kind,
                    record.kernel,
                    record.target,
                    width = jobs.len().to_string().len(),
                );
                let _ = err.flush();
            }
            slots[index] = Some(record);
        }
        if opts.progress {
            eprintln!();
        }
    });

    let mut records: Vec<SweepRecord> = slots
        .into_iter()
        .map(|slot| slot.expect("every job completed"))
        .collect();
    // Slots are already ordinal-ordered; the sort is a cheap invariant
    // guard for callers that concatenate job lists.
    records.sort_by_key(|r| r.id);

    let (cache_hits, cache_misses) = match &cache {
        Some(c) => (c.hits(), c.misses()),
        None => (0, u64::try_from(jobs.len()).expect("job count fits")),
    };
    Ok(SweepOutput {
        records,
        stats: SweepStats {
            jobs: jobs.len(),
            workers,
            cache_hits,
            cache_misses,
            wall: start.elapsed(),
        },
    })
}

/// The Figure 5/6 grid (every kernel × evaluated system) through the
/// engine: parallel and, when a cache directory is given, memoized. The
/// returned runs are ordered exactly like
/// `hetmem_core::experiment::run_case_studies` and carry identical reports.
///
/// # Errors
///
/// Returns an error when the cache directory cannot be opened.
pub fn run_case_studies(
    config: &ExperimentConfig,
    opts: &SweepOptions,
) -> std::io::Result<(Vec<CaseStudyRun>, SweepStats)> {
    let spec = SweepSpec {
        spaces: vec![],
        ..SweepSpec::full(config.scale)
    };
    let jobs = spec.expand();
    let output = run_jobs(&jobs, config, opts)?;
    let runs = jobs
        .iter()
        .zip(&output.records)
        .map(|(job, record)| {
            let JobKind::CaseStudy { system } = job.kind else {
                unreachable!("spec contains only case-study jobs")
            };
            CaseStudyRun {
                system,
                kernel: job.kernel,
                report: record.report.clone(),
            }
        })
        .collect();
    Ok((runs, output.stats))
}

/// The Figure 7 grid (every kernel × address space) through the engine.
/// Ordered exactly like `hetmem_core::experiment::run_address_spaces`.
///
/// # Errors
///
/// Returns an error when the cache directory cannot be opened.
pub fn run_address_spaces(
    config: &ExperimentConfig,
    opts: &SweepOptions,
) -> std::io::Result<(Vec<SpaceRun>, SweepStats)> {
    let spec = SweepSpec {
        systems: vec![],
        ..SweepSpec::full(config.scale)
    };
    let jobs = spec.expand();
    let output = run_jobs(&jobs, config, opts)?;
    let runs = jobs
        .iter()
        .zip(&output.records)
        .map(|(job, record)| {
            let JobKind::AddressSpace { space } = job.kind else {
                unreachable!("spec contains only address-space jobs")
            };
            SpaceRun {
                space,
                kernel: job.kernel,
                report: record.report.clone(),
            }
        })
        .collect();
    Ok((runs, output.stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetmem_core::experiment;
    use hetmem_core::EvaluatedSystem;
    use hetmem_trace::kernels::Kernel;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig::scaled(512)
    }

    fn small_spec() -> SweepSpec {
        SweepSpec {
            kernels: vec![Kernel::Reduction, Kernel::Dct],
            systems: vec![EvaluatedSystem::Fusion, EvaluatedSystem::IdealHetero],
            spaces: vec![hetmem_core::AddressSpace::Unified],
            scales: vec![512],
        }
    }

    #[test]
    fn engine_matches_serial_runners() {
        let config = cfg();
        let (runs, _) = run_case_studies(&config, &SweepOptions::with_workers(4)).expect("runs");
        let serial = experiment::run_case_studies(&config);
        assert_eq!(runs.len(), serial.len());
        for (a, b) in runs.iter().zip(&serial) {
            assert_eq!(a.system, b.system);
            assert_eq!(a.kernel, b.kernel);
            assert_eq!(a.report, b.report, "{}/{}", a.system, a.kernel.name());
        }
    }

    #[test]
    fn space_engine_matches_serial_runner() {
        let config = cfg();
        let (runs, _) = run_address_spaces(&config, &SweepOptions::with_workers(4)).expect("runs");
        let serial = experiment::run_address_spaces(&config);
        assert_eq!(runs.len(), serial.len());
        for (a, b) in runs.iter().zip(&serial) {
            assert_eq!(a.space, b.space);
            assert_eq!(a.report, b.report);
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let config = cfg();
        let spec = small_spec();
        let one = run_sweep(&spec, &config, &SweepOptions::with_workers(1)).expect("runs");
        let many = run_sweep(&spec, &config, &SweepOptions::with_workers(8)).expect("runs");
        assert_eq!(one.records, many.records);
        assert_eq!(one.stats.workers, 1);
    }

    #[test]
    fn content_keys_separate_configs_and_jobs() {
        let spec = small_spec();
        let jobs = spec.expand();
        let a = content_key(&jobs[0], &cfg());
        let b = content_key(&jobs[1], &cfg());
        assert_ne!(a, b, "different jobs must have different keys");
        let mut other = cfg();
        other.costs.api_acq_cycles += 1;
        assert_ne!(content_key(&jobs[0], &cfg()), content_key(&jobs[0], &other));
    }

    #[test]
    fn cache_round_trip_hits_every_job() {
        let dir =
            std::env::temp_dir().join(format!("hetmem-xplore-engine-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = SweepOptions {
            workers: 2,
            cache_dir: Some(dir.clone()),
            progress: false,
        };
        let config = cfg();
        let spec = small_spec();
        let cold = run_sweep(&spec, &config, &opts).expect("cold run");
        assert_eq!(cold.stats.cache_hits, 0);
        assert_eq!(cold.stats.cache_misses as usize, cold.stats.jobs);

        let warm = run_sweep(&spec, &config, &opts).expect("warm run");
        assert_eq!(warm.stats.cache_misses, 0);
        assert_eq!(warm.stats.cache_hits as usize, warm.stats.jobs);
        assert_eq!(cold.records, warm.records);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
