//! The sweep executor: a `std::thread` worker pool over a shared job
//! queue, with optional content-addressed result caching.
//!
//! Jobs are independent single-threaded simulations, so they shard
//! perfectly; the pool pulls indices from an atomic cursor and results are
//! written back into per-job slots, making the collected output identical
//! for any worker count. Generated traces are shared across jobs of the
//! same (kernel, scale) through a small in-memory store so a five-system
//! case-study row pays trace generation once, not five times.

use crate::cache::DiskCache;
use crate::dispatch::{DispatchContext, JobDispatcher, JobPart};
use crate::ser::SweepRecord;
use crate::spec::{Job, JobKind, SweepSpec};
use hetmem_core::experiment::{CaseStudyRun, ExperimentConfig, SpaceRun};
use hetmem_core::IdealSpaceComm;
use hetmem_sim::{
    ExecMode, IntervalProfiler, NullObserver, SimError, SimObserver, Simulation, System,
};
use hetmem_trace::kernels::KernelParams;
use hetmem_trace::PhasedTrace;
use std::collections::HashMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Execution knobs for a sweep.
#[derive(Clone, Default)]
pub struct SweepOptions {
    /// Worker threads; `0` uses the host's available parallelism.
    pub workers: usize,
    /// Cache directory; `None` disables memoization.
    pub cache_dir: Option<PathBuf>,
    /// Emit a live progress line on stderr.
    pub progress: bool,
    /// Attach an [`IntervalProfiler`] with this window size to every job and
    /// embed its [`hetmem_sim::TimelineSummary`] in the records. `None` (the
    /// default) simulates unobserved and leaves cache keys untouched.
    pub timeline_interval: Option<u64>,
    /// Cooperative cancellation: when the flag is set, workers stop
    /// pulling jobs (the one each is simulating still finishes) and the
    /// sweep returns [`SimError::Cancelled`]. Long-lived callers — the
    /// `hetmem-serve` service — use this to abandon sweeps whose clients
    /// are gone without killing the worker pool.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Execution mode for every job ([`ExecMode::Accurate`] by default).
    /// Non-accurate modes address separate cache entries — see
    /// [`content_key_with`].
    pub mode: ExecMode,
    /// Remote execution: parts of the job list this dispatcher claims run
    /// elsewhere (a cluster, typically), concurrently with the local
    /// share; everything it fails comes back to the local pool. `None`
    /// (the default) runs every job locally. Never changes the output —
    /// records land in their ordinal slots wherever they executed.
    pub dispatcher: Option<Arc<dyn JobDispatcher>>,
}

impl std::fmt::Debug for SweepOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepOptions")
            .field("workers", &self.workers)
            .field("cache_dir", &self.cache_dir)
            .field("progress", &self.progress)
            .field("timeline_interval", &self.timeline_interval)
            .field("cancel", &self.cancel)
            .field("mode", &self.mode)
            .field("dispatcher", &self.dispatcher.as_ref().map(|_| ".."))
            .finish()
    }
}

impl SweepOptions {
    /// Starts fluent construction. Prefer this over struct literals: new
    /// knobs get a defaulted setter instead of breaking every call site.
    #[must_use]
    pub fn builder() -> SweepOptionsBuilder {
        SweepOptionsBuilder::default()
    }

    /// Options with `n` workers and no cache.
    #[must_use]
    pub fn with_workers(n: usize) -> SweepOptions {
        SweepOptions::builder().workers(n).build()
    }
}

/// Fluent construction for [`SweepOptions`], mirroring
/// `Simulation::builder()`. Every knob defaults to off; call only the
/// setters you need:
///
/// ```
/// use hetmem_xplore::SweepOptions;
/// let opts = SweepOptions::builder().workers(4).progress(true).build();
/// assert_eq!(opts.workers, 4);
/// assert!(opts.cache_dir.is_none());
/// ```
#[derive(Clone, Debug, Default)]
pub struct SweepOptionsBuilder {
    opts: SweepOptions,
}

impl SweepOptionsBuilder {
    /// Worker threads; `0` (the default) uses the host's parallelism.
    #[must_use]
    pub fn workers(mut self, n: usize) -> SweepOptionsBuilder {
        self.opts.workers = n;
        self
    }

    /// Memoizes results under `dir`; `None` (the default) disables caching.
    #[must_use]
    pub fn cache_dir(mut self, dir: Option<PathBuf>) -> SweepOptionsBuilder {
        self.opts.cache_dir = dir;
        self
    }

    /// Emits a live progress line on stderr.
    #[must_use]
    pub fn progress(mut self, on: bool) -> SweepOptionsBuilder {
        self.opts.progress = on;
        self
    }

    /// Attaches an [`IntervalProfiler`] with this window to every job;
    /// `None` (the default) simulates unobserved.
    #[must_use]
    pub fn timeline_interval(mut self, interval: Option<u64>) -> SweepOptionsBuilder {
        self.opts.timeline_interval = interval;
        self
    }

    /// Installs a cooperative cancellation flag.
    #[must_use]
    pub fn cancel(mut self, flag: Option<Arc<AtomicBool>>) -> SweepOptionsBuilder {
        self.opts.cancel = flag;
        self
    }

    /// Runs every job under `mode` ([`ExecMode::Accurate`] by default).
    #[must_use]
    pub fn mode(mut self, mode: ExecMode) -> SweepOptionsBuilder {
        self.opts.mode = mode;
        self
    }

    /// Installs a remote-execution dispatcher; `None` (the default) runs
    /// every job on the local pool.
    #[must_use]
    pub fn dispatcher(mut self, dispatcher: Option<Arc<dyn JobDispatcher>>) -> SweepOptionsBuilder {
        self.opts.dispatcher = dispatcher;
        self
    }

    /// Finishes construction.
    #[must_use]
    pub fn build(self) -> SweepOptions {
        self.opts
    }
}

/// What a finished sweep did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SweepStats {
    /// Jobs executed (including cache hits).
    pub jobs: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Jobs answered from the cache.
    pub cache_hits: u64,
    /// Jobs simulated live.
    pub cache_misses: u64,
    /// Wall-clock duration of the whole sweep.
    pub wall: Duration,
}

impl std::fmt::Display for SweepStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} jobs on {} workers in {:.2} s ({} cache hits, {} misses)",
            self.jobs,
            self.workers,
            self.wall.as_secs_f64(),
            self.cache_hits,
            self.cache_misses
        )
    }
}

/// A finished sweep: records sorted by job ordinal, plus run statistics.
#[derive(Clone, Debug)]
pub struct SweepOutput {
    /// One record per job, sorted by `id`.
    pub records: Vec<SweepRecord>,
    /// Execution statistics.
    pub stats: SweepStats,
}

/// Shares generated traces between jobs of the same (kernel, scale).
#[derive(Default)]
struct TraceStore {
    map: Mutex<HashMap<(&'static str, u32), Arc<PhasedTrace>>>,
}

/// Coarse bound on memoized traces. Generation is deterministic per
/// (kernel, scale), so eviction only costs regeneration; the bound exists
/// so a long-lived service fed many distinct scales cannot hoard memory.
const TRACE_STORE_CAP: usize = 32;

impl TraceStore {
    /// The process-wide store. Traces are immutable and deterministic, so
    /// one memo serves every sweep, service request, and bench in the
    /// process — repeated sweeps stop regenerating their kernels.
    fn global() -> &'static TraceStore {
        static STORE: std::sync::OnceLock<TraceStore> = std::sync::OnceLock::new();
        STORE.get_or_init(TraceStore::default)
    }

    fn get(&self, job: &Job) -> Arc<PhasedTrace> {
        let key = (job.kernel.name(), job.scale);
        if let Some(t) = self.map.lock().expect("trace store lock").get(&key) {
            return Arc::clone(t);
        }
        // Generate outside the lock so other kernels proceed; a racing
        // duplicate generation is wasted work but still deterministic.
        let trace = Arc::new(job.kernel.generate(&KernelParams::scaled(job.scale)));
        let mut map = self.map.lock().expect("trace store lock");
        if map.len() >= TRACE_STORE_CAP {
            map.clear();
        }
        Arc::clone(map.entry(key).or_insert(trace))
    }
}

/// The (memoized) generated trace for `job`'s kernel at `job`'s scale —
/// the same store [`run_jobs`] uses, exposed so single-job callers (the
/// simulation service) share it.
#[must_use]
pub fn job_trace(job: &Job) -> Arc<PhasedTrace> {
    TraceStore::global().get(job)
}

/// The content key addressing one job's cache entry: everything that
/// influences its result — job coordinates, the full hardware and cost
/// configuration, and the crate version.
#[must_use]
pub fn content_key(job: &Job, config: &ExperimentConfig) -> String {
    content_key_with(job, config, None, ExecMode::Accurate)
}

/// [`content_key`] extended with the sweep's observability request and
/// execution mode. With `timeline_interval == None` and
/// [`ExecMode::Accurate`] the key is byte-identical to [`content_key`], so
/// default sweeps keep hitting entries written before either knob existed; a
/// requested timeline or a non-accurate mode changes the record's content
/// and therefore addresses a separate entry. Sampled geometry is part of the
/// mode tag, so different window shapes never alias either.
#[must_use]
pub fn content_key_with(
    job: &Job,
    config: &ExperimentConfig,
    timeline_interval: Option<u64>,
    mode: ExecMode,
) -> String {
    use std::fmt::Write as _;
    let mut key = format!(
        "hetmem-xplore v{} | {} | system={:?} | costs={:?}",
        env!("CARGO_PKG_VERSION"),
        job.identity(),
        config.system,
        config.costs,
    );
    if let Some(interval) = timeline_interval {
        let _ = write!(key, " | timeline={interval}");
    }
    if let Some(tag) = mode.cache_tag() {
        let _ = write!(key, " | mode={tag}");
    }
    key
}

/// Simulates one job on a pre-generated trace.
///
/// # Errors
///
/// Returns [`SimError`] when the hardware configuration is invalid or the
/// trace is malformed.
pub fn execute_job(
    job: &Job,
    config: &ExperimentConfig,
    trace: &PhasedTrace,
) -> Result<SweepRecord, SimError> {
    execute_job_observed(job, config, trace, NullObserver, ExecMode::Accurate)
        .map(|(record, _)| record)
}

/// Simulates one job with `observer` attached under `mode`, returning the
/// record and the filled observer. The record's `timeline` field is left
/// `None`; callers that want a summary embedded extract it from the observer
/// (as [`run_jobs`] does for [`SweepOptions::timeline_interval`]).
///
/// # Errors
///
/// Returns [`SimError`] when the hardware configuration is invalid or the
/// trace is malformed.
pub fn execute_job_observed<O: SimObserver>(
    job: &Job,
    config: &ExperimentConfig,
    trace: &PhasedTrace,
    observer: O,
    mode: ExecMode,
) -> Result<(SweepRecord, O), SimError> {
    let builder = Simulation::builder()
        .config(config.system)
        .costs(config.costs)
        .mode(mode)
        .recycle(take_pooled_engine(config))
        .observer(observer);
    let mut sim = match job.kind {
        JobKind::CaseStudy { system } => builder.comm_model(system.comm_model(config.costs)),
        JobKind::AddressSpace { space } => {
            builder.comm_model(IdealSpaceComm::new(space, config.costs))
        }
    }
    .build()?;
    let report = sim.run(trace)?;
    let record = SweepRecord {
        id: job.id,
        kind: job.kind_name().to_owned(),
        kernel: job.kernel.name().to_owned(),
        target: job.target_name().to_owned(),
        scale: job.scale,
        design_point: job.design_point_label(),
        mode,
        report,
        timeline: None,
    };
    let (system, observer) = sim.into_parts();
    return_pooled_engine(system);
    Ok((record, observer))
}

/// Engines this worker thread has finished with, kept for recycling.
/// Building a system zeroes megabytes of cache arrays (~300 µs);
/// [`System::reset`] on a recycled one touches kilobytes. Since every job in
/// a sweep shares the hardware point, the pool effectively makes engine
/// construction a once-per-thread cost. Bounded so pathological callers that
/// interleave many hardware points cannot hoard memory.
const ENGINE_POOL_CAP: usize = 4;

thread_local! {
    static ENGINE_POOL: std::cell::RefCell<Vec<System>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

fn take_pooled_engine(config: &ExperimentConfig) -> Option<System> {
    ENGINE_POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        pool.iter()
            .position(|s| s.matches(&config.system, &config.costs, true))
            .map(|i| pool.swap_remove(i))
    })
}

fn return_pooled_engine(system: System) {
    ENGINE_POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.len() < ENGINE_POOL_CAP {
            pool.push(system);
        }
    });
}

/// Expands `spec` and runs every job. See [`run_jobs`].
///
/// # Errors
///
/// Returns [`SimError`] when the cache directory cannot be opened, the
/// hardware configuration is invalid, or a trace is malformed.
pub fn run_sweep(
    spec: &SweepSpec,
    config: &ExperimentConfig,
    opts: &SweepOptions,
) -> Result<SweepOutput, SimError> {
    run_jobs(&spec.expand(), config, opts)
}

/// Runs `jobs` on the worker pool. The returned records are sorted by job
/// ordinal and are bit-identical for any worker count and any cache state.
///
/// # Errors
///
/// Returns [`SimError`] when the cache directory cannot be opened, the
/// hardware configuration is invalid, or a trace is malformed. On a failed
/// job the lowest-ordinal error is returned, so the outcome is deterministic
/// for any worker count.
///
/// # Panics
///
/// Panics if a worker thread panics (propagated by `std::thread::scope`).
pub fn run_jobs(
    jobs: &[Job],
    config: &ExperimentConfig,
    opts: &SweepOptions,
) -> Result<SweepOutput, SimError> {
    let start = Instant::now();
    let cache =
        match &opts.cache_dir {
            Some(dir) => Some(DiskCache::open(dir).map_err(|e| {
                SimError::Io(format!("cannot open cache dir {}: {e}", dir.display()))
            })?),
            None => None,
        };
    let workers = if opts.workers == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        opts.workers
    }
    .min(jobs.len().max(1));

    let traces = TraceStore::global();
    let run_one = |job: &Job| -> Result<SweepRecord, SimError> {
        let cache = cache.as_ref();
        // The content key Debug-formats the full hardware and cost
        // configuration — skip it entirely on uncached sweeps, where it
        // would otherwise rival the simulation itself on small per-job
        // traces.
        let key = cache.map(|_| content_key_with(job, config, opts.timeline_interval, opts.mode));
        if let Some(mut cached) = cache.and_then(|c| c.get(key.as_deref().expect("keyed"))) {
            // Ordinals belong to this sweep, not the cache entry (a
            // differently-filtered sweep may have stored it).
            cached.id = job.id;
            return Ok(cached);
        }
        let trace = traces.get(job);
        let result = match opts.timeline_interval {
            Some(interval) => execute_job_observed(
                job,
                config,
                &trace,
                IntervalProfiler::new(interval),
                opts.mode,
            )
            .map(|(mut record, profiler)| {
                record.timeline = Some(profiler.summary());
                record
            }),
            None => execute_job_observed(job, config, &trace, NullObserver, opts.mode)
                .map(|(record, _)| record),
        };
        if let (Ok(record), Some(c)) = (&result, cache) {
            if let Err(e) = c.put(key.as_deref().expect("keyed"), record) {
                eprintln!("warning: cache write failed: {e}");
            }
        }
        result
    };
    let done = AtomicUsize::new(0);
    let progress = |record: &Result<SweepRecord, SimError>| {
        let finished = done.fetch_add(1, Ordering::Relaxed);
        if let (true, Ok(record)) = (opts.progress, record) {
            let mut err = std::io::stderr().lock();
            let _ = write!(
                err,
                "\r[{:>width$}/{}] {} {}/{}        ",
                finished + 1,
                jobs.len(),
                record.kind,
                record.kernel,
                record.target,
                width = jobs.len().to_string().len(),
            );
            let _ = err.flush();
        }
    };

    // Executes `indices` on up to `workers` local threads, handing each
    // finished (index, record) pair to `sink` on the calling thread.
    // Single-worker batches (the service's per-shard path, benches, and
    // `--jobs 1`) run inline: no spawn, no channel, and — because the
    // engine pool is thread-local — recycled engines survive from one
    // sweep to the next.
    let run_local =
        |indices: &[usize], sink: &mut dyn FnMut(usize, Result<SweepRecord, SimError>)| {
            let cancel = opts.cancel.as_deref();
            if workers.min(indices.len().max(1)) <= 1 {
                for &index in indices {
                    if cancel.is_some_and(|c| c.load(Ordering::Relaxed)) {
                        break;
                    }
                    sink(index, run_one(&jobs[index]));
                }
                return;
            }
            let cursor = AtomicUsize::new(0);
            let (tx, rx) = mpsc::channel::<(usize, Result<SweepRecord, SimError>)>();
            std::thread::scope(|scope| {
                for _ in 0..workers.min(indices.len()) {
                    let tx = tx.clone();
                    let cursor = &cursor;
                    let run_one = &run_one;
                    scope.spawn(move || loop {
                        if cancel.is_some_and(|c| c.load(Ordering::Relaxed)) {
                            break;
                        }
                        let slot = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&index) = indices.get(slot) else {
                            break;
                        };
                        if tx.send((index, run_one(&jobs[index]))).is_err() {
                            break;
                        }
                    });
                }
                drop(tx);
                for (index, record) in rx {
                    sink(index, record);
                }
            });
        };

    // Partition: parts the dispatcher claims execute remotely, everything
    // else (plus whatever the dispatcher fails) runs on the local pool.
    // Claims are sanitized — out-of-range or doubly-claimed indices are
    // dropped — so a buggy dispatcher degrades to local execution rather
    // than corrupting the merge.
    let ctx = DispatchContext {
        config,
        timeline_interval: opts.timeline_interval,
        mode: opts.mode,
    };
    let mut claimed = vec![false; jobs.len()];
    let parts: Vec<JobPart> = match &opts.dispatcher {
        None => Vec::new(),
        Some(dispatcher) => dispatcher
            .partition(jobs, &ctx)
            .into_iter()
            .map(|part| JobPart {
                owner: part.owner,
                indices: part
                    .indices
                    .into_iter()
                    .filter(|&i| i < jobs.len() && !std::mem::replace(&mut claimed[i], true))
                    .collect(),
            })
            .filter(|part| !part.indices.is_empty())
            .collect(),
    };
    let local: Vec<usize> = (0..jobs.len()).filter(|&i| !claimed[i]).collect();

    let mut slots: Vec<Option<Result<SweepRecord, SimError>>> = Vec::new();
    slots.resize_with(jobs.len(), || None);

    if parts.is_empty() {
        let mut sink = |index: usize, record: Result<SweepRecord, SimError>| {
            progress(&record);
            slots[index] = Some(record);
        };
        run_local(&local, &mut sink);
    } else {
        let dispatcher = opts.dispatcher.as_ref().expect("parts imply a dispatcher");
        // Scatter: remote parts execute concurrently with the local
        // share. A part whose owner is unreachable, draining, or answers
        // garbage falls back onto the local pool afterwards — failover
        // costs latency, never correctness.
        let mut fallback: Vec<usize> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = parts
                .iter()
                .map(|part| {
                    let ctx = &ctx;
                    scope.spawn(move || dispatcher.execute(jobs, part, ctx))
                })
                .collect();
            let mut sink = |index: usize, record: Result<SweepRecord, SimError>| {
                progress(&record);
                slots[index] = Some(record);
            };
            run_local(&local, &mut sink);
            for (part, handle) in parts.iter().zip(handles) {
                let outcome = handle.join().unwrap_or(Err(SimError::Cancelled));
                match outcome {
                    Ok(records)
                        if records.len() == part.indices.len()
                            && records
                                .iter()
                                .zip(&part.indices)
                                .all(|(r, &i)| r.id == jobs[i].id) =>
                    {
                        // Merge in ordinal slots: remote records are
                        // indistinguishable from local ones downstream.
                        for (&index, record) in part.indices.iter().zip(records) {
                            let record = Ok(record);
                            progress(&record);
                            slots[index] = Some(record);
                        }
                    }
                    _ => fallback.extend_from_slice(&part.indices),
                }
            }
        });
        if !fallback.is_empty() {
            fallback.sort_unstable();
            let mut sink = |index: usize, record: Result<SweepRecord, SimError>| {
                progress(&record);
                slots[index] = Some(record);
            };
            run_local(&fallback, &mut sink);
        }
    }
    if opts.progress {
        eprintln!();
    }

    let mut records = Vec::with_capacity(jobs.len());
    // Ordinal order, so a failing sweep reports the same (lowest-ordinal)
    // error for any worker count. An empty slot means a worker stopped
    // pulling — only possible via the cancellation flag.
    for slot in slots {
        match slot {
            Some(record) => records.push(record?),
            None => return Err(SimError::Cancelled),
        }
    }
    // Slots are already ordinal-ordered; the sort is a cheap invariant
    // guard for callers that concatenate job lists.
    records.sort_by_key(|r| r.id);

    let (cache_hits, cache_misses) = match &cache {
        Some(c) => (c.hits(), c.misses()),
        None => (0, u64::try_from(jobs.len()).expect("job count fits")),
    };
    Ok(SweepOutput {
        records,
        stats: SweepStats {
            jobs: jobs.len(),
            workers,
            cache_hits,
            cache_misses,
            wall: start.elapsed(),
        },
    })
}

/// The Figure 5/6 grid (every kernel × evaluated system) through the
/// engine: parallel and, when a cache directory is given, memoized. The
/// returned runs are ordered exactly like
/// `hetmem_core::experiment::run_case_studies` and carry identical reports.
///
/// # Errors
///
/// Returns [`SimError`] when the cache directory cannot be opened or a job
/// fails (see [`run_jobs`]).
pub fn run_case_studies(
    config: &ExperimentConfig,
    opts: &SweepOptions,
) -> Result<(Vec<CaseStudyRun>, SweepStats), SimError> {
    let spec = SweepSpec {
        spaces: vec![],
        ..SweepSpec::full(config.scale)
    };
    let jobs = spec.expand();
    let output = run_jobs(&jobs, config, opts)?;
    let runs = jobs
        .iter()
        .zip(&output.records)
        .map(|(job, record)| {
            let JobKind::CaseStudy { system } = job.kind else {
                unreachable!("spec contains only case-study jobs")
            };
            CaseStudyRun {
                system,
                kernel: job.kernel,
                report: record.report.clone(),
            }
        })
        .collect();
    Ok((runs, output.stats))
}

/// The Figure 7 grid (every kernel × address space) through the engine.
/// Ordered exactly like `hetmem_core::experiment::run_address_spaces`.
///
/// # Errors
///
/// Returns [`SimError`] when the cache directory cannot be opened or a job
/// fails (see [`run_jobs`]).
pub fn run_address_spaces(
    config: &ExperimentConfig,
    opts: &SweepOptions,
) -> Result<(Vec<SpaceRun>, SweepStats), SimError> {
    let spec = SweepSpec {
        systems: vec![],
        ..SweepSpec::full(config.scale)
    };
    let jobs = spec.expand();
    let output = run_jobs(&jobs, config, opts)?;
    let runs = jobs
        .iter()
        .zip(&output.records)
        .map(|(job, record)| {
            let JobKind::AddressSpace { space } = job.kind else {
                unreachable!("spec contains only address-space jobs")
            };
            SpaceRun {
                space,
                kernel: job.kernel,
                report: record.report.clone(),
            }
        })
        .collect();
    Ok((runs, output.stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetmem_core::experiment;
    use hetmem_core::EvaluatedSystem;
    use hetmem_trace::kernels::Kernel;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig::scaled(512)
    }

    fn small_spec() -> SweepSpec {
        SweepSpec {
            kernels: vec![Kernel::Reduction, Kernel::Dct],
            systems: vec![EvaluatedSystem::Fusion, EvaluatedSystem::IdealHetero],
            spaces: vec![hetmem_core::AddressSpace::Unified],
            scales: vec![512],
        }
    }

    #[test]
    fn engine_matches_serial_runners() {
        let config = cfg();
        let (runs, _) = run_case_studies(&config, &SweepOptions::with_workers(4)).expect("runs");
        let serial = experiment::run_case_studies(&config);
        assert_eq!(runs.len(), serial.len());
        for (a, b) in runs.iter().zip(&serial) {
            assert_eq!(a.system, b.system);
            assert_eq!(a.kernel, b.kernel);
            assert_eq!(a.report, b.report, "{}/{}", a.system, a.kernel.name());
        }
    }

    #[test]
    fn space_engine_matches_serial_runner() {
        let config = cfg();
        let (runs, _) = run_address_spaces(&config, &SweepOptions::with_workers(4)).expect("runs");
        let serial = experiment::run_address_spaces(&config);
        assert_eq!(runs.len(), serial.len());
        for (a, b) in runs.iter().zip(&serial) {
            assert_eq!(a.space, b.space);
            assert_eq!(a.report, b.report);
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let config = cfg();
        let spec = small_spec();
        let one = run_sweep(&spec, &config, &SweepOptions::with_workers(1)).expect("runs");
        let many = run_sweep(&spec, &config, &SweepOptions::with_workers(8)).expect("runs");
        assert_eq!(one.records, many.records);
        assert_eq!(one.stats.workers, 1);
    }

    #[test]
    fn content_keys_separate_configs_and_jobs() {
        let spec = small_spec();
        let jobs = spec.expand();
        let a = content_key(&jobs[0], &cfg());
        let b = content_key(&jobs[1], &cfg());
        assert_ne!(a, b, "different jobs must have different keys");
        let mut other = cfg();
        other.costs.api_acq_cycles += 1;
        assert_ne!(content_key(&jobs[0], &cfg()), content_key(&jobs[0], &other));
    }

    #[test]
    fn timeline_request_addresses_a_separate_cache_entry() {
        let jobs = small_spec().expand();
        let plain = content_key(&jobs[0], &cfg());
        assert_eq!(
            plain,
            content_key_with(&jobs[0], &cfg(), None, ExecMode::Accurate),
            "observer-off accurate keys must not change"
        );
        let observed = content_key_with(&jobs[0], &cfg(), Some(1_000_000), ExecMode::Accurate);
        assert_ne!(plain, observed);
        assert!(observed.contains("timeline=1000000"), "{observed}");
    }

    #[test]
    fn execution_mode_addresses_a_separate_cache_entry() {
        let jobs = small_spec().expand();
        let plain = content_key(&jobs[0], &cfg());
        let wheel = content_key_with(&jobs[0], &cfg(), None, ExecMode::EventDriven);
        assert_ne!(plain, wheel);
        assert!(wheel.contains("mode=event-driven"), "{wheel}");
        let sampled = content_key_with(&jobs[0], &cfg(), None, ExecMode::sampled_default());
        assert_ne!(plain, sampled);
        assert_ne!(wheel, sampled);
    }

    #[test]
    fn event_driven_sweep_matches_accurate_reports() {
        let config = cfg();
        let spec = small_spec();
        let accurate = run_sweep(&spec, &config, &SweepOptions::with_workers(2)).expect("runs");
        let wheel_opts = SweepOptions::builder()
            .workers(2)
            .mode(ExecMode::EventDriven)
            .build();
        let wheel = run_sweep(&spec, &config, &wheel_opts).expect("runs");
        assert_eq!(accurate.records.len(), wheel.records.len());
        for (a, w) in accurate.records.iter().zip(&wheel.records) {
            assert_eq!(a.mode, ExecMode::Accurate);
            assert_eq!(w.mode, ExecMode::EventDriven);
            let mut normalized = w.report.clone();
            normalized.fast_forwarded_ticks = 0;
            assert_eq!(a.report, normalized, "{}/{}", a.kernel, a.target);
        }
    }

    #[test]
    fn timeline_sweep_embeds_summaries_without_perturbing_reports() {
        let config = cfg();
        let spec = small_spec();
        let plain = run_sweep(&spec, &config, &SweepOptions::with_workers(2)).expect("runs");
        let observed = run_sweep(
            &spec,
            &config,
            &SweepOptions::builder()
                .workers(2)
                .timeline_interval(Some(500_000))
                .build(),
        )
        .expect("runs");
        assert_eq!(plain.records.len(), observed.records.len());
        for (p, o) in plain.records.iter().zip(&observed.records) {
            assert_eq!(p.report, o.report, "observer must not change the run");
            assert_eq!(p.timeline, None);
            let t = o.timeline.expect("observed records carry a summary");
            assert_eq!(t.interval, 500_000);
            assert!(t.samples > 0);
        }
    }

    #[test]
    fn preset_cancel_flag_aborts_the_sweep() {
        let flag = Arc::new(AtomicBool::new(true));
        let opts = SweepOptions::builder()
            .workers(2)
            .cancel(Some(Arc::clone(&flag)))
            .build();
        let err = run_sweep(&small_spec(), &cfg(), &opts).expect_err("cancelled");
        assert_eq!(err, SimError::Cancelled);

        // An unset flag changes nothing.
        flag.store(false, Ordering::Relaxed);
        let out = run_sweep(&small_spec(), &cfg(), &opts).expect("runs");
        let plain = run_sweep(&small_spec(), &cfg(), &SweepOptions::with_workers(2)).expect("runs");
        assert_eq!(out.records, plain.records);
    }

    #[test]
    fn cache_round_trip_hits_every_job() {
        let dir =
            std::env::temp_dir().join(format!("hetmem-xplore-engine-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = SweepOptions::builder()
            .workers(2)
            .cache_dir(Some(dir.clone()))
            .build();
        let config = cfg();
        let spec = small_spec();
        let cold = run_sweep(&spec, &config, &opts).expect("cold run");
        assert_eq!(cold.stats.cache_hits, 0);
        assert_eq!(cold.stats.cache_misses as usize, cold.stats.jobs);

        let warm = run_sweep(&spec, &config, &opts).expect("warm run");
        assert_eq!(warm.stats.cache_misses, 0);
        assert_eq!(warm.stats.cache_hits as usize, warm.stats.jobs);
        assert_eq!(cold.records, warm.records);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Claims every even-ordinal job and "remotely" executes it through a
    /// nested local `run_jobs` — the cluster dispatcher in miniature.
    struct EchoDispatcher {
        calls: AtomicUsize,
    }

    impl JobDispatcher for EchoDispatcher {
        fn partition(&self, jobs: &[Job], _ctx: &DispatchContext<'_>) -> Vec<JobPart> {
            vec![JobPart {
                owner: "loopback".to_owned(),
                indices: (0..jobs.len()).step_by(2).collect(),
            }]
        }

        fn execute(
            &self,
            jobs: &[Job],
            part: &JobPart,
            ctx: &DispatchContext<'_>,
        ) -> Result<Vec<SweepRecord>, SimError> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            let subset: Vec<Job> = part.indices.iter().map(|&i| jobs[i]).collect();
            let opts = SweepOptions::builder().workers(1).mode(ctx.mode).build();
            Ok(run_jobs(&subset, ctx.config, &opts)?.records)
        }
    }

    /// Always claims everything and always fails — the unreachable-owner
    /// case. The sweep must fall back to purely local execution.
    struct DeadDispatcher;

    impl JobDispatcher for DeadDispatcher {
        fn partition(&self, jobs: &[Job], _ctx: &DispatchContext<'_>) -> Vec<JobPart> {
            vec![JobPart {
                owner: "gone".to_owned(),
                indices: (0..jobs.len()).collect(),
            }]
        }

        fn execute(
            &self,
            _jobs: &[Job],
            _part: &JobPart,
            _ctx: &DispatchContext<'_>,
        ) -> Result<Vec<SweepRecord>, SimError> {
            Err(SimError::PeerUnavailable {
                peer: "gone".to_owned(),
            })
        }
    }

    /// Claims everything but answers with wrong-id records — the engine
    /// must reject the merge and re-run the part locally.
    struct LyingDispatcher;

    impl JobDispatcher for LyingDispatcher {
        fn partition(&self, jobs: &[Job], _ctx: &DispatchContext<'_>) -> Vec<JobPart> {
            vec![JobPart {
                owner: "liar".to_owned(),
                // Doubly-claimed and out-of-range indices exercise the
                // sanitizer too.
                indices: (0..jobs.len()).chain([0, jobs.len() + 7]).collect(),
            }]
        }

        fn execute(
            &self,
            jobs: &[Job],
            part: &JobPart,
            ctx: &DispatchContext<'_>,
        ) -> Result<Vec<SweepRecord>, SimError> {
            let subset: Vec<Job> = part.indices.iter().map(|&i| jobs[i]).collect();
            let opts = SweepOptions::builder().workers(1).mode(ctx.mode).build();
            let mut records = run_jobs(&subset, ctx.config, &opts)?.records;
            for record in &mut records {
                record.id += 1000;
            }
            Ok(records)
        }
    }

    #[test]
    fn dispatcher_merge_is_byte_identical_to_local() {
        let config = cfg();
        let spec = small_spec();
        let local = run_sweep(&spec, &config, &SweepOptions::with_workers(2)).expect("local");
        let echo = Arc::new(EchoDispatcher {
            calls: AtomicUsize::new(0),
        });
        let opts = SweepOptions::builder()
            .workers(2)
            .dispatcher(Some(Arc::clone(&echo) as Arc<dyn JobDispatcher>))
            .build();
        let scattered = run_sweep(&spec, &config, &opts).expect("scattered");
        assert!(echo.calls.load(Ordering::Relaxed) >= 1, "part must scatter");
        assert_eq!(
            crate::to_jsonl(&local.records),
            crate::to_jsonl(&scattered.records),
            "scatter-gather must be byte-identical to a local run"
        );
    }

    #[test]
    fn dead_and_lying_dispatchers_fall_back_to_local_execution() {
        let config = cfg();
        let spec = small_spec();
        let local = run_sweep(&spec, &config, &SweepOptions::with_workers(2)).expect("local");
        for dispatcher in [
            Arc::new(DeadDispatcher) as Arc<dyn JobDispatcher>,
            Arc::new(LyingDispatcher) as Arc<dyn JobDispatcher>,
        ] {
            let opts = SweepOptions::builder()
                .workers(2)
                .dispatcher(Some(dispatcher))
                .build();
            let out = run_sweep(&spec, &config, &opts).expect("failover");
            assert_eq!(
                crate::to_jsonl(&local.records),
                crate::to_jsonl(&out.records),
                "failover must reproduce the local run exactly"
            );
        }
    }
}
