//! A minimal JSON value model with an exact-round-trip writer and parser.
//!
//! The build environment has no registry access, so `serde_json` is not
//! available; this module provides the small subset the sweep engine needs:
//! ordered objects, 64-bit integers kept exact (never routed through `f64`),
//! and float formatting via Rust's shortest-round-trip `Display` so
//! `write → parse → write` is byte-identical — the property the on-disk
//! result cache depends on.

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order so rendering is
/// deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer, kept exact.
    UInt(u64),
    /// A negative integer, kept exact.
    Int(i64),
    /// A finite float. Non-finite values render as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from ordered key/value pairs.
    #[must_use]
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Looks up a key in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `f64` (floats and integers).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(x) => Some(*x),
            Json::UInt(n) => Some(*n as f64),
            Json::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Renders the value as compact JSON.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(x) => write_f64(*x, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Renders a float so that parsing it back yields the identical bits:
/// Rust's `Display` prints the shortest digits that round-trip, and a
/// trailing `.0` keeps integral floats typed as floats.
fn write_f64(x: f64, out: &mut String) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{x}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with a byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON value from `text` (trailing whitespace allowed).
///
/// # Errors
///
/// Returns a [`JsonError`] on malformed input.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters"));
    }
    Ok(value)
}

fn err(at: usize, message: &str) -> JsonError {
    JsonError {
        at,
        message: message.to_owned(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, &format!("expected {:?}", char::from(c))))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, &format!("expected {lit:?}")))
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(err(*pos, "expected ',' or '}'")),
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| err(*pos, "non-ascii \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        // Surrogates are not produced by our writer; reject.
                        let c = char::from_u32(code)
                            .ok_or_else(|| err(*pos, "invalid \\u code point"))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume a maximal run of unescaped bytes in one step.
                // Validating per character against the whole remaining
                // input is quadratic — a frame payload with tens of KB
                // of embedded JSON took tens of milliseconds to parse.
                // The run boundary is safe for multi-byte UTF-8: `"` and
                // `\` are ASCII and never occur as continuation bytes.
                let start = *pos;
                let mut end = *pos;
                while end < bytes.len() && bytes[end] != b'"' && bytes[end] != b'\\' {
                    end += 1;
                }
                let run = std::str::from_utf8(&bytes[start..end])
                    .map_err(|_| err(start, "invalid utf-8"))?;
                out.push_str(run);
                *pos = end;
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err(start, "bad number"))?;
    if text.is_empty() {
        return Err(err(start, "expected a value"));
    }
    if text.contains(['.', 'e', 'E']) {
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| err(start, "bad float"))
    } else if let Some(stripped) = text.strip_prefix('-') {
        // `-0` parses as Int(0); the writer never emits it.
        let _ = stripped;
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|_| err(start, "integer out of range"))
    } else {
        text.parse::<u64>()
            .map(Json::UInt)
            .map_err(|_| err(start, "integer out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (text, value) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("0", Json::UInt(0)),
            ("18446744073709551615", Json::UInt(u64::MAX)),
            ("-42", Json::Int(-42)),
            ("\"hi\"", Json::Str("hi".into())),
        ] {
            assert_eq!(parse(text).expect("parses"), value);
            assert_eq!(value.render(), text);
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.5, 1.0, 3.125, 1.0 / 3.0, 2.5e-7, 1.7976931348623157e308] {
            let rendered = Json::Float(x).render();
            let back = parse(&rendered).expect("parses");
            assert_eq!(back, Json::Float(x), "{rendered}");
            assert_eq!(back.render(), rendered, "second render must be stable");
        }
    }

    #[test]
    fn integral_floats_stay_floats() {
        assert_eq!(Json::Float(2.0).render(), "2.0");
        assert_eq!(parse("2.0").expect("parses"), Json::Float(2.0));
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::obj(vec![
            ("name", Json::Str("k-mean \"quoted\"\n".into())),
            ("ticks", Json::UInt(123_456_789_012)),
            ("rate", Json::Float(0.125)),
            ("tags", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("nested", Json::obj(vec![("x", Json::Int(-1))])),
        ]);
        let text = v.render();
        assert_eq!(parse(&text).expect("parses"), v);
        assert_eq!(parse(&text).expect("parses").render(), text);
    }

    #[test]
    fn object_lookup_and_accessors() {
        let v = Json::obj(vec![("a", Json::UInt(7)), ("b", Json::Float(1.5))]);
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("b").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn malformed_inputs_error_without_panic() {
        for bad in ["", "{", "[1,", "\"open", "{\"k\" 1}", "tru", "1 2", "{}x"] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn whitespace_and_escapes_parse() {
        let v = parse(" { \"k\" : [ 1 , -2.5 , \"a\\u0041\\n\" ] } ").expect("parses");
        assert_eq!(
            v,
            Json::obj(vec![(
                "k",
                Json::Arr(vec![
                    Json::UInt(1),
                    Json::Float(-2.5),
                    Json::Str("aA\n".into())
                ])
            )])
        );
    }
}
