//! JSONL emission for `hetmem check` diagnostics.
//!
//! Renders [`hetmem_dsl::CheckReport`]s as JSON Lines through the in-repo
//! [`crate::json`] module — one self-describing `"diagnostic"` object per
//! finding, then a single `"summary"` line with the severity totals — so
//! CI and downstream tooling parse checker output with the same parser as
//! every other stream the workspace emits.

use crate::json::Json;
use hetmem_dsl::{CheckReport, Diagnostic};

/// Renders one finding as an ordered JSON object, tagged with the
/// program and model it came from.
#[must_use]
pub fn diagnostic_to_json(program: &str, model: &str, d: &Diagnostic) -> Json {
    let mut pairs = vec![
        ("kind", Json::Str("diagnostic".to_owned())),
        ("code", Json::Str(d.code.as_str().to_owned())),
        ("name", Json::Str(d.code.name().to_owned())),
        ("severity", Json::Str(d.severity.to_string())),
        ("program", Json::Str(program.to_owned())),
        ("model", Json::Str(model.to_owned())),
    ];
    if let Some(stmt) = d.stmt {
        pairs.push(("stmt", Json::UInt(stmt as u64)));
    }
    if let Some(line) = d.line {
        pairs.push(("line", Json::UInt(line as u64)));
    }
    if let Some(buffer) = &d.buffer {
        pairs.push(("buffer", Json::Str(buffer.clone())));
    }
    pairs.push(("message", Json::Str(d.message.clone())));
    Json::obj(pairs)
}

/// Renders a batch of check reports as JSON Lines: every finding in
/// report order, then exactly one `"summary"` line with the totals per
/// severity and the number of program × model combinations checked.
#[must_use]
pub fn check_reports_to_jsonl(reports: &[CheckReport]) -> String {
    use hetmem_dsl::Severity;
    let mut out = String::new();
    let mut totals = [0u64; 3];
    for report in reports {
        let model = report.model.to_string();
        for d in &report.diagnostics {
            match d.severity {
                Severity::Error => totals[0] += 1,
                Severity::Warning => totals[1] += 1,
                Severity::Note => totals[2] += 1,
            }
            out.push_str(&diagnostic_to_json(&report.program, &model, d).render());
            out.push('\n');
        }
    }
    let summary = Json::obj(vec![
        ("kind", Json::Str("summary".to_owned())),
        ("checked", Json::UInt(reports.len() as u64)),
        ("errors", Json::UInt(totals[0])),
        ("warnings", Json::UInt(totals[1])),
        ("notes", Json::UInt(totals[2])),
    ]);
    out.push_str(&summary.render());
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use hetmem_dsl::{check, programs, AddressSpace};

    #[test]
    fn check_jsonl_round_trips_through_the_in_repo_parser() {
        let reports: Vec<CheckReport> = programs::all()
            .iter()
            .map(|p| check(p, AddressSpace::PartiallyShared))
            .collect();
        let jsonl = check_reports_to_jsonl(&reports);
        let lines: Vec<&str> = jsonl.lines().collect();
        let total: usize = reports.iter().map(|r| r.diagnostics.len()).sum();
        assert_eq!(lines.len(), total + 1, "one line per finding plus summary");
        for line in &lines {
            let v = parse(line).expect("every line is valid JSON");
            assert!(v.get("kind").is_some(), "{line}");
        }
        let summary = parse(lines.last().expect("summary line")).expect("parses");
        assert_eq!(summary.get("kind").and_then(Json::as_str), Some("summary"));
        assert_eq!(
            summary.get("checked").and_then(Json::as_u64),
            Some(reports.len() as u64)
        );
        // The paper programs carry shared-candidate notes, so the stream
        // is never empty and every diagnostic names its program.
        let first = parse(lines[0]).expect("parses");
        assert_eq!(first.get("kind").and_then(Json::as_str), Some("diagnostic"));
        assert!(first.get("program").is_some());
        assert!(first.get("code").is_some());
    }
}
