//! Pluggable remote execution for the sweep engine, plus the wire
//! representation of a scattered job partition.
//!
//! [`run_jobs`](crate::run_jobs) is local by default: a worker pool over
//! an index cursor. A [`JobDispatcher`] lets a caller claim slices of
//! the job list for execution elsewhere — the cluster layer implements
//! it by partitioning jobs by content-key ring ownership and scattering
//! each partition to its owner node. The engine stays ignorant of
//! networks: it hands the dispatcher index slices, runs whatever is not
//! claimed (plus anything the dispatcher fails) on the local pool, and
//! merges every record back into its ordinal slot, so the output is
//! byte-identical to a purely local run no matter where jobs executed.
//!
//! The wire helpers ([`encode_part`] / [`decode_part`] /
//! [`render_part_records`] / [`parse_part_records`]) define the JSON a
//! partition crosses the network as. Jobs travel as their coordinate
//! strings (the same vocabulary [`parse_kernel`] and friends accept on
//! the CLI), so the remote side reconstructs the exact [`Job`] values —
//! including their sweep ordinals — and records come back through
//! [`SweepRecord`]'s exact-round-trip serialization.

use crate::json::Json;
use crate::ser::SweepRecord;
use crate::spec::{parse_kernel, parse_space, parse_system, Job, JobKind};
use hetmem_core::experiment::ExperimentConfig;
use hetmem_sim::{ExecMode, SimError};

/// Everything a dispatcher needs to route and ship one sweep's jobs:
/// the hardware/cost configuration and the knobs that are part of each
/// job's content key.
pub struct DispatchContext<'a> {
    /// The hardware/cost configuration every job runs under.
    pub config: &'a ExperimentConfig,
    /// The sweep's timeline request (part of the content key).
    pub timeline_interval: Option<u64>,
    /// The sweep's execution mode.
    pub mode: ExecMode,
}

/// One slice of a sweep claimed for remote execution: ascending indices
/// into the sweep's job list, plus the executor the dispatcher chose
/// for it (an opaque designation the engine never interprets).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobPart {
    /// Where the dispatcher will run this part (e.g. a cluster address).
    pub owner: String,
    /// Ascending indices into the sweep's job list.
    pub indices: Vec<usize>,
}

/// Remote execution strategy for [`run_jobs`](crate::run_jobs).
///
/// `partition` claims index slices; `execute` runs one slice and must
/// return its records **in part order** with ids matching the claimed
/// jobs. Any error (or a malformed result) sends the part back to the
/// local pool — failover costs latency, never correctness.
pub trait JobDispatcher: Send + Sync {
    /// Splits `jobs` into remotely-executed parts. Indices not claimed
    /// by any part run on the local worker pool. Returning an empty
    /// vector makes the sweep purely local.
    fn partition(&self, jobs: &[Job], ctx: &DispatchContext<'_>) -> Vec<JobPart>;

    /// Executes one part remotely.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the remote side is unreachable or
    /// rejects the part; the engine then runs the part locally.
    fn execute(
        &self,
        jobs: &[Job],
        part: &JobPart,
        ctx: &DispatchContext<'_>,
    ) -> Result<Vec<SweepRecord>, SimError>;
}

/// The configuration fingerprint shipped alongside a part so both sides
/// agree on the hardware/cost point without serializing it field by
/// field.
#[must_use]
pub fn config_signature(config: &ExperimentConfig) -> String {
    format!("{:?} | {:?}", config.system, config.costs)
}

/// The named configuration tag a part frame carries, or `None` when
/// `config` is not expressible on the wire (and the sweep must stay
/// local). Today exactly one point ships: the paper baseline, whose
/// signature [`ExperimentConfig::paper`] reproduces on any node.
#[must_use]
pub fn wire_config_tag(config: &ExperimentConfig) -> Option<&'static str> {
    (config_signature(config) == config_signature(&ExperimentConfig::paper())).then_some("paper")
}

/// Renders the part addressed by `indices` into the wire object:
/// `{"config": tag, "mode"?: label, "timeline"?: N, "jobs": [...]}`.
/// Jobs carry their sweep ordinals, so remote cache hits are re-labeled
/// exactly as local ones are.
///
/// # Panics
///
/// Panics if an index is out of range for `jobs` or the configuration
/// has no wire tag — the dispatcher must only encode what it claimed
/// under [`wire_config_tag`].
#[must_use]
pub fn encode_part(jobs: &[Job], indices: &[usize], ctx: &DispatchContext<'_>) -> Json {
    let tag = wire_config_tag(ctx.config).expect("config must have a wire tag");
    let mut pairs = vec![("config", Json::Str(tag.to_owned()))];
    if ctx.mode != ExecMode::Accurate {
        pairs.push(("mode", Json::Str(ctx.mode.label())));
    }
    if let Some(interval) = ctx.timeline_interval {
        pairs.push(("timeline", Json::UInt(interval)));
    }
    let rows = indices
        .iter()
        .map(|&index| {
            let job = &jobs[index];
            Json::obj(vec![
                ("id", Json::UInt(job.id)),
                ("kind", Json::Str(job.kind_name().to_owned())),
                ("kernel", Json::Str(job.kernel.name().to_owned())),
                ("target", Json::Str(job.target_name().to_owned())),
                ("scale", Json::UInt(u64::from(job.scale))),
            ])
        })
        .collect();
    pairs.push(("jobs", Json::Arr(rows)));
    Json::obj(pairs)
}

/// A decoded part, ready to execute.
pub struct PartRequest {
    /// The reconstructed jobs, carrying their original sweep ordinals.
    pub jobs: Vec<Job>,
    /// The sweep's timeline request.
    pub timeline_interval: Option<u64>,
    /// The sweep's execution mode.
    pub mode: ExecMode,
    /// The hardware/cost configuration named by the part's config tag.
    pub config: ExperimentConfig,
}

/// Decodes a part object produced by [`encode_part`].
///
/// # Errors
///
/// Returns a one-line message on an unknown config tag, a malformed job
/// row, or an unknown kernel/target name.
pub fn decode_part(value: &Json) -> Result<PartRequest, String> {
    let config = match value.get("config").and_then(Json::as_str) {
        Some("paper") => ExperimentConfig::paper(),
        Some(other) => return Err(format!("unknown part config tag {other:?}")),
        None => return Err("part without a config tag".to_owned()),
    };
    let mode = match value.get("mode").and_then(Json::as_str) {
        Some(label) => ExecMode::parse(label).map_err(|e| format!("bad part mode: {e}"))?,
        None => ExecMode::Accurate,
    };
    let timeline_interval = value.get("timeline").and_then(Json::as_u64);
    let Some(Json::Arr(rows)) = value.get("jobs") else {
        return Err("part without a jobs array".to_owned());
    };
    let mut jobs = Vec::with_capacity(rows.len());
    for row in rows {
        let id = row
            .get("id")
            .and_then(Json::as_u64)
            .ok_or_else(|| "part job without an id".to_owned())?;
        let kernel = parse_kernel(
            row.get("kernel")
                .and_then(Json::as_str)
                .ok_or_else(|| "part job without a kernel".to_owned())?,
        )?;
        let target = row
            .get("target")
            .and_then(Json::as_str)
            .ok_or_else(|| "part job without a target".to_owned())?;
        let kind = match row.get("kind").and_then(Json::as_str) {
            Some("case-study") => JobKind::CaseStudy {
                system: parse_system(target)?,
            },
            Some("address-space") => JobKind::AddressSpace {
                space: parse_space(target)?,
            },
            other => return Err(format!("unknown part job kind {other:?}")),
        };
        let scale = row
            .get("scale")
            .and_then(Json::as_u64)
            .and_then(|n| u32::try_from(n).ok())
            .filter(|&n| n > 0)
            .ok_or_else(|| "part job with a bad scale".to_owned())?;
        jobs.push(Job {
            id,
            kernel,
            kind,
            scale,
        });
    }
    Ok(PartRequest {
        jobs,
        timeline_interval,
        mode,
        config,
    })
}

/// Renders a part's result body: `{"records": [...]}` through
/// [`SweepRecord::to_json`]'s exact-round-trip serialization.
#[must_use]
pub fn render_part_records(records: &[SweepRecord]) -> String {
    Json::obj(vec![(
        "records",
        Json::Arr(records.iter().map(SweepRecord::to_json).collect()),
    )])
    .render()
}

/// Parses a part result body back into records.
///
/// # Errors
///
/// Returns a one-line message on malformed JSON or a bad record.
pub fn parse_part_records(body: &str) -> Result<Vec<SweepRecord>, String> {
    let value = crate::json::parse(body).map_err(|e| format!("bad part result: {e}"))?;
    let Some(Json::Arr(rows)) = value.get("records") else {
        return Err("part result without a records array".to_owned());
    };
    rows.iter()
        .map(|row| SweepRecord::from_json(row).map_err(|e| format!("bad part record: {e}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepSpec;

    fn ctx(config: &ExperimentConfig) -> DispatchContext<'_> {
        DispatchContext {
            config,
            timeline_interval: None,
            mode: ExecMode::Accurate,
        }
    }

    #[test]
    fn every_grid_job_survives_the_wire() {
        let jobs = SweepSpec::full(512).expand();
        let config = ExperimentConfig::paper();
        let indices: Vec<usize> = (0..jobs.len()).collect();
        let encoded = encode_part(&jobs, &indices, &ctx(&config));
        let decoded = decode_part(&encoded).expect("decode");
        assert_eq!(decoded.jobs, jobs, "jobs must reconstruct exactly");
        assert_eq!(decoded.mode, ExecMode::Accurate);
        assert_eq!(decoded.timeline_interval, None);
    }

    #[test]
    fn mode_and_timeline_ride_along() {
        let jobs = SweepSpec::full(64).expand();
        let config = ExperimentConfig::paper();
        let encoded = encode_part(
            &jobs,
            &[0, 3],
            &DispatchContext {
                config: &config,
                timeline_interval: Some(1_000_000),
                mode: ExecMode::EventDriven,
            },
        );
        let decoded = decode_part(&encoded).expect("decode");
        assert_eq!(decoded.mode, ExecMode::EventDriven);
        assert_eq!(decoded.timeline_interval, Some(1_000_000));
        assert_eq!(decoded.jobs.len(), 2);
        assert_eq!(decoded.jobs[1], jobs[3]);
    }

    #[test]
    fn only_the_paper_point_has_a_wire_tag() {
        assert_eq!(wire_config_tag(&ExperimentConfig::paper()), Some("paper"));
        let mut other = ExperimentConfig::paper();
        other.costs.api_acq_cycles += 1;
        assert_eq!(wire_config_tag(&other), None);
        assert!(decode_part(&Json::obj(vec![("config", Json::Str("exotic".to_owned()))])).is_err());
    }

    #[test]
    fn part_records_round_trip() {
        use hetmem_sim::RunReport;
        let records = vec![SweepRecord {
            id: 7,
            kind: "case-study".to_owned(),
            kernel: "reduction".to_owned(),
            target: "Fusion".to_owned(),
            scale: 512,
            design_point: "p".to_owned(),
            mode: ExecMode::Accurate,
            report: RunReport {
                kernel: "reduction".to_owned(),
                parallel_ticks: 42,
                ..RunReport::default()
            },
            timeline: None,
        }];
        let body = render_part_records(&records);
        assert_eq!(parse_part_records(&body).expect("parse"), records);
        assert!(parse_part_records("{\"nope\":1}").is_err());
    }
}
