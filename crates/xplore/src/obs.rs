//! JSONL emission for simulator observability output.
//!
//! [`hetmem_sim::EventTrace`] and [`hetmem_sim::IntervalProfiler`] collect
//! typed in-memory data; this module renders them as JSON Lines — one
//! self-describing object per line, each with a `"kind"` discriminator —
//! through the same in-repo [`crate::json`] module the sweep records use,
//! so downstream tooling needs exactly one parser. Both streams end with a
//! `"summary"` line carrying the exact aggregate totals, which survive even
//! when the bounded event ring dropped early events.

use crate::json::Json;
use hetmem_sim::{EventCounts, EventTrace, IntervalProfiler, SimEvent, TimelineSample};

/// Renders one recorded event as an ordered JSON object.
#[must_use]
pub fn event_to_json(event: &SimEvent) -> Json {
    let kind = ("kind", Json::Str(event.kind_name().to_owned()));
    match *event {
        SimEvent::PhaseStart { segment, phase, at } => Json::obj(vec![
            kind,
            ("segment", Json::UInt(segment as u64)),
            ("phase", Json::Str(phase.to_string())),
            ("at", Json::UInt(at)),
        ]),
        SimEvent::PhaseEnd {
            segment,
            phase,
            at,
            ticks,
        } => Json::obj(vec![
            kind,
            ("segment", Json::UInt(segment as u64)),
            ("phase", Json::Str(phase.to_string())),
            ("at", Json::UInt(at)),
            ("ticks", Json::UInt(ticks)),
        ]),
        SimEvent::Comm {
            class,
            kind: comm_kind,
            direction,
            bytes,
            ticks,
            overlapped_ticks,
            at,
        } => Json::obj(vec![
            kind,
            ("class", Json::Str(class.name().to_owned())),
            ("comm_kind", Json::Str(comm_kind.to_string())),
            ("direction", Json::Str(direction.to_string())),
            ("bytes", Json::UInt(bytes)),
            ("ticks", Json::UInt(ticks)),
            ("overlapped_ticks", Json::UInt(overlapped_ticks)),
            ("at", Json::UInt(at)),
        ]),
        SimEvent::Special { pu, ticks, at } => Json::obj(vec![
            kind,
            ("pu", Json::Str(pu.to_string())),
            ("ticks", Json::UInt(ticks)),
            ("at", Json::UInt(at)),
        ]),
        SimEvent::MissBurst {
            pu,
            level,
            count,
            ticks,
            at,
        } => Json::obj(vec![
            kind,
            ("pu", Json::Str(pu.to_string())),
            ("level", Json::Str(format!("{level:?}"))),
            ("count", Json::UInt(count)),
            ("ticks", Json::UInt(ticks)),
            ("at", Json::UInt(at)),
        ]),
        SimEvent::Dram { write, row_hit, at } => Json::obj(vec![
            kind,
            ("write", Json::Bool(write)),
            ("row_hit", Json::Bool(row_hit)),
            ("at", Json::UInt(at)),
        ]),
        SimEvent::Intervention { pu, kind: ik, at } => Json::obj(vec![
            kind,
            ("pu", Json::Str(pu.to_string())),
            ("intervention", Json::Str(ik.name().to_owned())),
            ("at", Json::UInt(at)),
        ]),
    }
}

/// Renders the exact per-family totals as a `"summary"` object.
#[must_use]
pub fn counts_to_json(counts: &EventCounts) -> Json {
    Json::obj(vec![
        ("kind", Json::Str("summary".to_owned())),
        ("phase_starts", Json::UInt(counts.phase_starts)),
        ("phase_ends", Json::UInt(counts.phase_ends)),
        ("comm_events", Json::UInt(counts.comm_events)),
        ("special_ops", Json::UInt(counts.special_ops)),
        ("miss_bursts", Json::UInt(counts.miss_bursts)),
        ("shared_accesses", Json::UInt(counts.shared_accesses)),
        ("dram_requests", Json::UInt(counts.dram_requests)),
        ("dram_row_misses", Json::UInt(counts.dram_row_misses)),
        ("interventions", Json::UInt(counts.interventions)),
    ])
}

/// Renders an event trace as JSON Lines: every retained event in order,
/// then one `"summary"` line with the exact [`EventCounts`] totals and the
/// number of events the bounded ring dropped.
#[must_use]
pub fn events_to_jsonl(trace: &EventTrace) -> String {
    let mut out = String::new();
    for event in trace.events() {
        out.push_str(&event_to_json(event).render());
        out.push('\n');
    }
    let mut summary = counts_to_json(&trace.counts());
    if let Json::Obj(pairs) = &mut summary {
        pairs.push(("dropped".to_owned(), Json::UInt(trace.dropped())));
    }
    out.push_str(&summary.render());
    out.push('\n');
    out
}

/// Renders one timeline window as an ordered JSON object.
#[must_use]
pub fn sample_to_json(sample: &TimelineSample) -> Json {
    Json::obj(vec![
        ("kind", Json::Str("window".to_owned())),
        ("start", Json::UInt(sample.start)),
        ("phase", Json::Str(sample.phase.to_string())),
        ("cpu_instructions", Json::UInt(sample.cpu_instructions)),
        ("gpu_instructions", Json::UInt(sample.gpu_instructions)),
        ("shared_accesses", Json::UInt(sample.shared_accesses)),
        ("llc_misses", Json::UInt(sample.llc_misses)),
        ("dram_reads", Json::UInt(sample.dram_reads)),
        ("dram_writes", Json::UInt(sample.dram_writes)),
        ("dram_row_misses", Json::UInt(sample.dram_row_misses)),
        ("interventions", Json::UInt(sample.interventions)),
        ("comm_events", Json::UInt(sample.comm_events)),
        ("comm_blocked_ticks", Json::UInt(sample.comm_blocked_ticks)),
    ])
}

/// Renders a profiler's timeline as JSON Lines: one `"window"` line per
/// sampling interval, then one `"summary"` line with the aggregate
/// ([`crate::ser::timeline_to_json`] plus the discriminator).
#[must_use]
pub fn timeline_to_jsonl(profiler: &IntervalProfiler) -> String {
    let mut out = String::new();
    for sample in profiler.samples() {
        out.push_str(&sample_to_json(sample).render());
        out.push('\n');
    }
    let mut summary = crate::ser::timeline_to_json(&profiler.summary());
    if let Json::Obj(pairs) = &mut summary {
        pairs.insert(0, ("kind".to_owned(), Json::Str("summary".to_owned())));
    }
    out.push_str(&summary.render());
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use hetmem_sim::{Recorder, Simulation};
    use hetmem_trace::kernels::{Kernel, KernelParams};

    fn recorded() -> Recorder {
        let trace = Kernel::Reduction.generate(&KernelParams::scaled(64));
        let mut sim = Simulation::builder()
            .observer(Recorder::new(
                Some(EventTrace::new()),
                Some(IntervalProfiler::new(250_000)),
            ))
            .build()
            .expect("baseline config is valid");
        sim.run(&trace).expect("well-formed trace");
        sim.into_observer()
    }

    #[test]
    fn event_jsonl_lines_all_parse_and_carry_kinds() {
        let recorder = recorded();
        let events = recorder.events.expect("events recorded");
        let jsonl = events_to_jsonl(&events);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), events.len() + 1, "events plus summary");
        for line in &lines {
            let v = parse(line).expect("every line is valid JSON");
            assert!(v.get("kind").is_some(), "{line}");
        }
        for kind in ["phase-start", "phase-end", "comm", "dram"] {
            assert!(
                lines
                    .iter()
                    .any(|l| l.starts_with(&format!("{{\"kind\":\"{kind}\""))),
                "missing {kind} line"
            );
        }
        let summary = parse(lines.last().expect("summary line")).expect("parses");
        assert_eq!(summary.get("kind").and_then(Json::as_str), Some("summary"));
        assert_eq!(
            summary.get("dram_requests").and_then(Json::as_u64),
            Some(events.counts().dram_requests)
        );
    }

    #[test]
    fn timeline_jsonl_windows_match_profiler() {
        let recorder = recorded();
        let profiler = recorder.timeline.expect("timeline recorded");
        let jsonl = timeline_to_jsonl(&profiler);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), profiler.samples().len() + 1);
        let first = parse(lines[0]).expect("parses");
        assert_eq!(first.get("kind").and_then(Json::as_str), Some("window"));
        let summary = parse(lines.last().expect("summary")).expect("parses");
        assert_eq!(
            summary.get("samples").and_then(Json::as_u64),
            Some(profiler.samples().len() as u64)
        );
    }
}
