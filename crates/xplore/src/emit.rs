//! Result emission: JSON-lines, CSV, and aligned text tables.

use crate::ser::{SweepRecord, CSV_HEADER};
use hetmem_core::report::TextTable;

/// How to render sweep output.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OutputFormat {
    /// One JSON object per line.
    Json,
    /// CSV with a header row.
    Csv,
    /// An aligned human-readable table.
    #[default]
    Table,
}

impl OutputFormat {
    /// Parses `json` / `csv` / `table`.
    ///
    /// # Errors
    ///
    /// Returns a one-line message on unknown names.
    pub fn parse(s: &str) -> Result<OutputFormat, String> {
        match s.to_ascii_lowercase().as_str() {
            "json" | "jsonl" => Ok(OutputFormat::Json),
            "csv" => Ok(OutputFormat::Csv),
            "table" | "text" => Ok(OutputFormat::Table),
            other => Err(format!("unknown format {other:?} (json|csv|table)")),
        }
    }

    /// Renders `records` in this format (with trailing newline).
    #[must_use]
    pub fn render(self, records: &[SweepRecord]) -> String {
        match self {
            OutputFormat::Json => to_jsonl(records),
            OutputFormat::Csv => to_csv(records),
            OutputFormat::Table => to_table(records),
        }
    }
}

/// Renders records as JSON-lines: one compact object per record.
#[must_use]
pub fn to_jsonl(records: &[SweepRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_json().render());
        out.push('\n');
    }
    out
}

/// Renders records as CSV with a header row.
#[must_use]
pub fn to_csv(records: &[SweepRecord]) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for r in records {
        out.push_str(&r.csv_row());
        out.push('\n');
    }
    out
}

/// Renders records as an aligned text table of the headline columns.
#[must_use]
pub fn to_table(records: &[SweepRecord]) -> String {
    let mut table = TextTable::new(&[
        "id",
        "kind",
        "kernel",
        "target",
        "scale",
        "total(µs)",
        "seq%",
        "par%",
        "comm%",
    ]);
    for r in records {
        let total = r.report.total_ticks().max(1) as f64;
        let pct = |ticks: u64| format!("{:.1}", 100.0 * ticks as f64 / total);
        table.row(vec![
            r.id.to_string(),
            r.kind.clone(),
            r.kernel.clone(),
            r.target.clone(),
            r.scale.to_string(),
            format!("{:.1}", r.report.total_ns() / 1000.0),
            pct(r.report.sequential_ticks),
            pct(r.report.parallel_ticks),
            pct(r.report.communication_ticks),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetmem_sim::RunReport;

    fn records() -> Vec<SweepRecord> {
        vec![SweepRecord {
            id: 0,
            kind: "case-study".into(),
            kernel: "reduction".into(),
            target: "Fusion".into(),
            scale: 64,
            design_point: "p".into(),
            mode: hetmem_sim::ExecMode::Accurate,
            report: RunReport {
                kernel: "reduction".into(),
                sequential_ticks: 25,
                parallel_ticks: 50,
                communication_ticks: 25,
                ..RunReport::default()
            },
            timeline: None,
        }]
    }

    #[test]
    fn format_parsing() {
        assert_eq!(OutputFormat::parse("json"), Ok(OutputFormat::Json));
        assert_eq!(OutputFormat::parse("CSV"), Ok(OutputFormat::Csv));
        assert_eq!(OutputFormat::parse("table"), Ok(OutputFormat::Table));
        assert!(OutputFormat::parse("yaml").is_err());
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let out = to_jsonl(&records());
        assert_eq!(out.lines().count(), 1);
        assert!(out.starts_with("{\"id\":0,"));
        assert!(out.ends_with('\n'));
    }

    #[test]
    fn csv_has_header_plus_rows() {
        let out = to_csv(&records());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], CSV_HEADER);
        assert!(lines[1].starts_with("0,case-study,reduction,Fusion,64,100,"));
    }

    #[test]
    fn table_shows_phase_split() {
        let out = to_table(&records());
        assert!(out.contains("reduction"));
        assert!(out.contains("50.0"));
        assert!(out.contains("25.0"));
    }
}
