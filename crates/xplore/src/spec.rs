//! Declarative sweep specifications and their deterministic expansion into
//! job lists.
//!
//! A [`SweepSpec`] names the axes to cover — kernels, evaluated systems
//! (the Fig 5/6 case-study axis), address-space options under idealized
//! communication (the Fig 7 isolation axis), and trace scales — and
//! [`SweepSpec::expand`] produces the cross product as ordinally-numbered
//! [`Job`]s. Expansion order is fixed (scale → kernel → systems → spaces),
//! so job ids are stable regardless of how many workers later execute them.

use hetmem_core::{AddressSpace, EvaluatedSystem};
use hetmem_trace::kernels::Kernel;

/// What one job simulates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobKind {
    /// One Figure 5/6 cell: a kernel on an evaluated system.
    CaseStudy {
        /// The system preset.
        system: EvaluatedSystem,
    },
    /// One Figure 7 cell: a kernel under an address-space option with
    /// idealized communication.
    AddressSpace {
        /// The address-space option.
        space: AddressSpace,
    },
}

/// One unit of work: a kernel × target × scale cell with a stable ordinal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Job {
    /// Ordinal within the expanded sweep; results are sorted by this.
    pub id: u64,
    /// The kernel to trace.
    pub kernel: Kernel,
    /// What to run it on.
    pub kind: JobKind,
    /// Trace scale divisor.
    pub scale: u32,
}

impl Job {
    /// `"case-study"` or `"address-space"`.
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self.kind {
            JobKind::CaseStudy { .. } => "case-study",
            JobKind::AddressSpace { .. } => "address-space",
        }
    }

    /// The system name or address-space abbreviation this job targets.
    #[must_use]
    pub fn target_name(&self) -> &'static str {
        match self.kind {
            JobKind::CaseStudy { system } => system.name(),
            JobKind::AddressSpace { space } => space.abbrev(),
        }
    }

    /// The design-space coordinates of the target: the evaluated system's
    /// full design point, or the isolated address space under the ideal
    /// fabric.
    #[must_use]
    pub fn design_point_label(&self) -> String {
        match self.kind {
            JobKind::CaseStudy { system } => {
                hetmem_core::metrics::design_point_of(system).to_string()
            }
            JobKind::AddressSpace { space } => format!("{space} / ideal fabric"),
        }
    }

    /// A stable, human-readable identity string — the cache key input.
    /// Everything that changes the simulation result must appear here (the
    /// engine appends the hardware/cost configuration fingerprint).
    #[must_use]
    pub fn identity(&self) -> String {
        format!(
            "{}:{}:{}:scale={}",
            self.kind_name(),
            self.kernel.name(),
            self.target_name(),
            self.scale
        )
    }
}

/// The declarative description of a sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepSpec {
    /// Kernels to trace (Table III order).
    pub kernels: Vec<Kernel>,
    /// Evaluated systems for case-study jobs; empty skips the family.
    pub systems: Vec<EvaluatedSystem>,
    /// Address-space options for isolation jobs; empty skips the family.
    pub spaces: Vec<AddressSpace>,
    /// Trace scales; each multiplies the whole grid.
    pub scales: Vec<u32>,
}

impl SweepSpec {
    /// The full grid the paper's evaluation covers: every kernel on every
    /// evaluated system plus every address-space isolation, at `scale`.
    #[must_use]
    pub fn full(scale: u32) -> SweepSpec {
        SweepSpec {
            kernels: Kernel::ALL.to_vec(),
            systems: EvaluatedSystem::ALL.to_vec(),
            spaces: AddressSpace::ALL.to_vec(),
            scales: vec![scale],
        }
    }

    /// Expands the spec into the deterministic job list. Order is
    /// scale-major, then kernel, then the system axis, then the space axis;
    /// ids are assigned in that order starting from zero.
    #[must_use]
    pub fn expand(&self) -> Vec<Job> {
        let mut jobs = Vec::new();
        let mut id = 0;
        let mut push = |kernel, kind, scale, jobs: &mut Vec<Job>| {
            jobs.push(Job {
                id,
                kernel,
                kind,
                scale,
            });
            id += 1;
        };
        for &scale in &self.scales {
            for &kernel in &self.kernels {
                for &system in &self.systems {
                    push(kernel, JobKind::CaseStudy { system }, scale, &mut jobs);
                }
                for &space in &self.spaces {
                    push(kernel, JobKind::AddressSpace { space }, scale, &mut jobs);
                }
            }
        }
        jobs
    }
}

/// Parses a kernel name (Table III names or their common aliases).
///
/// # Errors
///
/// Returns a one-line message listing valid names.
pub fn parse_kernel(s: &str) -> Result<Kernel, String> {
    s.parse().map_err(|e| format!("{e}"))
}

/// Parses an evaluated-system name (Figure 5/6 labels or aliases).
///
/// # Errors
///
/// Returns a one-line message listing valid names.
pub fn parse_system(s: &str) -> Result<EvaluatedSystem, String> {
    match s.to_ascii_lowercase().as_str() {
        "cpu+gpu" | "cuda" | "cpugpu" => Ok(EvaluatedSystem::CpuGpuCuda),
        "lrb" => Ok(EvaluatedSystem::Lrb),
        "gmac" => Ok(EvaluatedSystem::Gmac),
        "fusion" => Ok(EvaluatedSystem::Fusion),
        "ideal" | "ideal-hetero" => Ok(EvaluatedSystem::IdealHetero),
        other => Err(format!(
            "unknown system {other:?} (cpu+gpu|lrb|gmac|fusion|ideal)"
        )),
    }
}

/// Parses an address-space option (Figure 7 abbreviations or aliases).
///
/// # Errors
///
/// Returns a one-line message listing valid names.
pub fn parse_space(s: &str) -> Result<AddressSpace, String> {
    match s.to_ascii_lowercase().as_str() {
        "uni" | "unified" => Ok(AddressSpace::Unified),
        "pas" | "partial" | "partially-shared" => Ok(AddressSpace::PartiallyShared),
        "dis" | "disjoint" => Ok(AddressSpace::Disjoint),
        "adsm" => Ok(AddressSpace::Adsm),
        other => Err(format!("unknown model {other:?} (uni|pas|dis|adsm)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grid_covers_every_paper_cell() {
        let jobs = SweepSpec::full(64).expand();
        // 6 kernels × (5 systems + 4 spaces).
        assert_eq!(jobs.len(), 6 * 9);
        let case_studies = jobs
            .iter()
            .filter(|j| j.kind_name() == "case-study")
            .count();
        assert_eq!(case_studies, 30);
        // Ids are the ordinals.
        for (i, job) in jobs.iter().enumerate() {
            assert_eq!(job.id, i as u64);
        }
    }

    #[test]
    fn expansion_is_deterministic() {
        let spec = SweepSpec::full(16);
        assert_eq!(spec.expand(), spec.expand());
    }

    #[test]
    fn filters_shrink_the_grid() {
        let spec = SweepSpec {
            kernels: vec![Kernel::Reduction],
            systems: vec![EvaluatedSystem::Fusion],
            spaces: vec![],
            scales: vec![8, 16],
        };
        let jobs = spec.expand();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].scale, 8);
        assert_eq!(jobs[1].scale, 16);
        assert_eq!(jobs[0].target_name(), "Fusion");
    }

    #[test]
    fn identities_are_unique_within_a_sweep() {
        let jobs = SweepSpec::full(4).expand();
        let mut ids: Vec<String> = jobs.iter().map(Job::identity).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), jobs.len());
    }

    #[test]
    fn parsers_accept_paper_aliases() {
        assert_eq!(parse_system("CUDA"), Ok(EvaluatedSystem::CpuGpuCuda));
        assert_eq!(
            parse_system("ideal-hetero"),
            Ok(EvaluatedSystem::IdealHetero)
        );
        assert_eq!(
            parse_space("partially-shared"),
            Ok(AddressSpace::PartiallyShared)
        );
        assert_eq!(parse_space("UNIFIED"), Ok(AddressSpace::Unified));
        assert!(parse_kernel("reduction").is_ok());
        assert!(parse_kernel("not-a-kernel").is_err());
        assert!(parse_system("not-a-system").is_err());
        assert!(parse_space("weird").is_err());
    }

    #[test]
    fn design_point_labels_are_informative() {
        let jobs = SweepSpec::full(1).expand();
        for job in jobs {
            let label = job.design_point_label();
            assert!(!label.is_empty(), "{job:?}");
        }
    }
}
