//! JSONL emission for `hetmem fix` reports.
//!
//! Renders [`hetmem_dsl::FixReport`]s as JSON Lines through the in-repo
//! [`crate::json`] module — one self-describing `"fix"` object per
//! program × model pair, then a single `"summary"` line with the edit
//! totals — mirroring the `hetmem check` stream so CI and downstream
//! tooling reuse the same parser.

use crate::json::Json;
use hetmem_dsl::{FixEdit, FixReport};

fn edit_to_json(e: &FixEdit) -> Json {
    let mut pairs = vec![
        ("stmt", Json::UInt(e.stmt as u64)),
        ("text", Json::Str(e.text.clone())),
    ];
    if let Some(buffer) = &e.buffer {
        pairs.push(("buffer", Json::Str(buffer.clone())));
    }
    Json::obj(pairs)
}

/// Renders one fix outcome as an ordered JSON object.
#[must_use]
pub fn fix_report_to_json(report: &FixReport) -> Json {
    Json::obj(vec![
        ("kind", Json::Str("fix".to_owned())),
        ("program", Json::Str(report.original.program_name.clone())),
        ("model", Json::Str(report.original.model.to_string())),
        ("changed", Json::Bool(report.changed())),
        ("iterations", Json::UInt(report.iterations as u64)),
        (
            "comm_lines_before",
            Json::UInt(u64::from(report.original.comm_overhead_lines())),
        ),
        (
            "comm_lines_after",
            Json::UInt(u64::from(report.fixed.comm_overhead_lines())),
        ),
        ("lines_saved", Json::Int(report.lines_saved())),
        (
            "removed",
            Json::Arr(report.removed.iter().map(edit_to_json).collect()),
        ),
        (
            "inserted",
            Json::Arr(report.inserted.iter().map(edit_to_json).collect()),
        ),
        ("residual", Json::UInt(report.residual.len() as u64)),
    ])
}

/// Renders a batch of fix reports as JSON Lines: one `"fix"` line per
/// report, then exactly one `"summary"` line with the totals.
#[must_use]
pub fn fix_reports_to_jsonl(reports: &[FixReport]) -> String {
    let mut out = String::new();
    let (mut changed, mut removed, mut inserted) = (0u64, 0u64, 0u64);
    let mut saved = 0i64;
    for report in reports {
        changed += u64::from(report.changed());
        removed += report.removed.len() as u64;
        inserted += report.inserted.len() as u64;
        saved += report.lines_saved();
        out.push_str(&fix_report_to_json(report).render());
        out.push('\n');
    }
    let summary = Json::obj(vec![
        ("kind", Json::Str("summary".to_owned())),
        ("fixed", Json::UInt(reports.len() as u64)),
        ("changed", Json::UInt(changed)),
        ("transfers_removed", Json::UInt(removed)),
        ("transfers_inserted", Json::UInt(inserted)),
        ("lines_saved", Json::Int(saved)),
    ]);
    out.push_str(&summary.render());
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use hetmem_dsl::{fix, programs, AddressSpace};

    #[test]
    fn fix_jsonl_round_trips_through_the_in_repo_parser() {
        let reports: Vec<FixReport> = programs::all()
            .iter()
            .map(|p| fix(p, AddressSpace::PartiallyShared))
            .collect();
        let jsonl = fix_reports_to_jsonl(&reports);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), reports.len() + 1, "one line each plus summary");
        for line in &lines {
            let v = parse(line).expect("every line is valid JSON");
            assert!(v.get("kind").is_some(), "{line}");
        }
        let summary = parse(lines.last().expect("summary line")).expect("parses");
        assert_eq!(summary.get("kind").and_then(Json::as_str), Some("summary"));
        assert_eq!(
            summary.get("fixed").and_then(Json::as_u64),
            Some(reports.len() as u64)
        );
        // k-mean under PAS loses four ownership statements, so the batch
        // reports a strictly positive change count and removal total.
        let changed = summary.get("changed").and_then(Json::as_u64);
        assert!(changed >= Some(1), "{summary:?}");
        let removed = summary.get("transfers_removed").and_then(Json::as_u64);
        assert!(removed >= Some(4), "{summary:?}");
        let first = parse(lines[0]).expect("parses");
        assert_eq!(first.get("kind").and_then(Json::as_str), Some("fix"));
        assert!(first.get("program").is_some());
        assert!(first.get("lines_saved").is_some());
    }
}
