//! Content-addressed on-disk result cache.
//!
//! Each job's result is stored in one file named by the FNV-1a hash of the
//! job's *content key*: the job identity (kind, kernel, target, scale), the
//! full hardware/cost configuration fingerprint, and the crate version.
//! Any change to those inputs changes the key, so stale entries are never
//! returned — they are simply never addressed again. Corrupt or
//! half-written files are treated as misses and overwritten.

use crate::ser::SweepRecord;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A directory of memoized sweep results with hit/miss counters.
#[derive(Debug)]
pub struct DiskCache {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
}

// Re-exported so the long-standing `hetmem_xplore::cache::fnv1a` path
// keeps working; the implementation (and its pinned digest vectors)
// lives in `hetmem_core::hash`, shared with the serve pool's shard map
// and the cluster ring.
pub use hetmem_core::hash::fnv1a;

impl DiskCache {
    /// Opens (and creates if needed) a cache rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns an error when the directory cannot be created.
    pub fn open(dir: &Path) -> std::io::Result<DiskCache> {
        std::fs::create_dir_all(dir)?;
        Ok(DiskCache {
            dir: dir.to_owned(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// The file path addressing `content_key`.
    #[must_use]
    pub fn path_for(&self, content_key: &str) -> PathBuf {
        self.dir
            .join(format!("xp-{:016x}.json", fnv1a(content_key.as_bytes())))
    }

    /// Fetches the record stored under `content_key`, counting a hit or a
    /// miss. Unreadable or corrupt entries count as misses.
    pub fn get(&self, content_key: &str) -> Option<SweepRecord> {
        let loaded = std::fs::read_to_string(self.path_for(content_key))
            .ok()
            .and_then(|text| crate::json::parse(&text).ok())
            .and_then(|value| SweepRecord::from_json(&value).ok());
        match loaded {
            Some(record) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(record)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores `record` under `content_key`. Write failures are reported but
    /// must not abort a sweep — the result is still in memory.
    ///
    /// # Errors
    ///
    /// Returns an error when the entry cannot be written.
    pub fn put(&self, content_key: &str, record: &SweepRecord) -> std::io::Result<()> {
        let path = self.path_for(content_key);
        // Write-then-rename so readers never observe a half-written entry.
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, record.to_json().render())?;
        std::fs::rename(&tmp, &path)
    }

    /// Cache hits counted so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses counted so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetmem_sim::RunReport;

    fn record(id: u64) -> SweepRecord {
        SweepRecord {
            id,
            kind: "case-study".into(),
            kernel: "reduction".into(),
            target: "Fusion".into(),
            scale: 64,
            design_point: "p".into(),
            mode: hetmem_sim::ExecMode::Accurate,
            report: RunReport {
                kernel: "reduction".into(),
                parallel_ticks: 7,
                ..RunReport::default()
            },
            timeline: None,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "hetmem-xplore-cache-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fnv_is_stable() {
        // Reference vectors for FNV-1a 64.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"hetmem"), fnv1a(b"hetmem"));
        assert_ne!(fnv1a(b"hetmem"), fnv1a(b"hetmem "));
    }

    #[test]
    fn miss_then_hit_round_trips() {
        let dir = temp_dir("roundtrip");
        let cache = DiskCache::open(&dir).expect("open");
        assert_eq!(cache.get("key-a"), None);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));

        let rec = record(3);
        cache.put("key-a", &rec).expect("put");
        assert_eq!(cache.get("key-a"), Some(rec));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_misses() {
        let dir = temp_dir("corrupt");
        let cache = DiskCache::open(&dir).expect("open");
        std::fs::write(cache.path_for("key-b"), "{not json").expect("write");
        assert_eq!(cache.get("key-b"), None);
        assert_eq!(cache.misses(), 1);
        // And the entry can be repaired by a put.
        cache.put("key-b", &record(0)).expect("put");
        assert!(cache.get("key-b").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn distinct_keys_use_distinct_files() {
        let dir = temp_dir("distinct");
        let cache = DiskCache::open(&dir).expect("open");
        assert_ne!(cache.path_for("a"), cache.path_for("b"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
