//! JSON and CSV serialization of sweep results.
//!
//! A [`SweepRecord`] carries the full [`RunReport`] — every counter the
//! simulator produced — so a cache hit reconstructs exactly what a live run
//! would have returned, and figure renderers downstream of the engine see
//! no difference between cold and warm sweeps.

use crate::json::{Json, JsonError};
use hetmem_sim::{
    CacheStats, CoherenceStats, CpuStats, DramStats, ExecMode, GpuStats, HierarchyStats, RunReport,
    TimelineSummary, TlbStats,
};

/// One sweep result: the job coordinates plus the simulator's full report.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepRecord {
    /// Ordinal id of the job within its sweep (output sort key).
    pub id: u64,
    /// Job family: `"case-study"` (Fig 5/6 axis) or `"address-space"`
    /// (Fig 7 axis).
    pub kind: String,
    /// Kernel name (Table III).
    pub kernel: String,
    /// The evaluated system's name, or the address-space abbreviation.
    pub target: String,
    /// Trace scale divisor.
    pub scale: u32,
    /// The design-space coordinates of the target.
    pub design_point: String,
    /// The execution mode the job ran under. Accurate records serialize
    /// byte-identically to records produced before modes existed, so cache
    /// entries and goldens stay stable.
    pub mode: ExecMode,
    /// The simulator's report.
    pub report: RunReport,
    /// Timeline aggregate, present only when the sweep requested one
    /// (`SweepOptions::timeline_interval`). Absent records serialize
    /// byte-identically to records produced before the field existed, so
    /// cache entries and goldens stay stable.
    pub timeline: Option<TimelineSummary>,
}

/// The flat CSV header matching [`SweepRecord::csv_row`].
pub const CSV_HEADER: &str = "id,kind,kernel,target,scale,total_ticks,sequential_ticks,\
parallel_ticks,communication_ticks,cpu_instructions,gpu_instructions,cpu_ipc,gpu_ipc,\
llc_mpki,dram_bandwidth_gbps";

impl SweepRecord {
    /// The record as an ordered JSON object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("id", Json::UInt(self.id)),
            ("kind", Json::Str(self.kind.clone())),
            ("kernel", Json::Str(self.kernel.clone())),
            ("target", Json::Str(self.target.clone())),
            ("scale", Json::UInt(u64::from(self.scale))),
            ("design_point", Json::Str(self.design_point.clone())),
            ("total_ticks", Json::UInt(self.report.total_ticks())),
            ("report", report_to_json(&self.report)),
        ];
        if self.mode != ExecMode::Accurate {
            pairs.push(("mode", Json::Str(self.mode.label())));
        }
        if let Some(t) = &self.timeline {
            pairs.push(("timeline", timeline_to_json(t)));
        }
        Json::obj(pairs)
    }

    /// Rebuilds a record from [`SweepRecord::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] when a field is missing or mistyped.
    pub fn from_json(value: &Json) -> Result<SweepRecord, JsonError> {
        let report = report_from_json(value.get("report").ok_or_else(missing("report"))?)?;
        Ok(SweepRecord {
            id: get_u64(value, "id")?,
            kind: get_str(value, "kind")?,
            kernel: get_str(value, "kernel")?,
            target: get_str(value, "target")?,
            scale: u32::try_from(get_u64(value, "scale")?)
                .map_err(|_| field_err("scale", "out of range"))?,
            design_point: get_str(value, "design_point")?,
            mode: match value.get("mode").and_then(Json::as_str) {
                Some(label) => ExecMode::parse(label).map_err(|e| field_err("mode", &e))?,
                None => ExecMode::Accurate,
            },
            report,
            timeline: value.get("timeline").map(timeline_from_json).transpose()?,
        })
    }

    /// The record as one CSV data row matching [`CSV_HEADER`].
    #[must_use]
    pub fn csv_row(&self) -> String {
        let d = self.report.derived();
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.id,
            csv_field(&self.kind),
            csv_field(&self.kernel),
            csv_field(&self.target),
            self.scale,
            self.report.total_ticks(),
            self.report.sequential_ticks,
            self.report.parallel_ticks,
            self.report.communication_ticks,
            self.report.cpu.instructions,
            self.report.gpu.instructions,
            d.cpu_ipc,
            d.gpu_ipc,
            d.llc_mpki,
            d.dram_bandwidth_gbps,
        )
    }
}

/// Quotes a CSV field only when it contains a separator or quote.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

fn missing(key: &'static str) -> impl Fn() -> JsonError {
    move || field_err(key, "missing")
}

fn field_err(key: &str, what: &str) -> JsonError {
    JsonError {
        at: 0,
        message: format!("field {key:?} {what}"),
    }
}

fn get_u64(value: &Json, key: &str) -> Result<u64, JsonError> {
    value
        .get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| field_err(key, "missing or not a u64"))
}

fn get_str(value: &Json, key: &str) -> Result<String, JsonError> {
    value
        .get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| field_err(key, "missing or not a string"))
}

/// Serializes a full [`RunReport`] (all counters are exact integers).
#[must_use]
pub fn report_to_json(r: &RunReport) -> Json {
    let mut pairs = vec![
        ("kernel", Json::Str(r.kernel.clone())),
        ("sequential_ticks", Json::UInt(r.sequential_ticks)),
        ("parallel_ticks", Json::UInt(r.parallel_ticks)),
        ("communication_ticks", Json::UInt(r.communication_ticks)),
    ];
    // Only fast-forwarding runs carry the field, so accurate reports
    // serialize byte-identically to pre-mode reports.
    if r.fast_forwarded_ticks > 0 {
        pairs.push(("fast_forwarded_ticks", Json::UInt(r.fast_forwarded_ticks)));
    }
    pairs.extend([
        ("hierarchy", hierarchy_to_json(&r.hierarchy)),
        ("cpu", cpu_to_json(&r.cpu)),
        ("gpu", gpu_to_json(&r.gpu)),
    ]);
    Json::obj(pairs)
}

/// Deserializes [`report_to_json`] output.
///
/// # Errors
///
/// Returns a [`JsonError`] when a field is missing or mistyped.
pub fn report_from_json(v: &Json) -> Result<RunReport, JsonError> {
    Ok(RunReport {
        kernel: get_str(v, "kernel")?,
        sequential_ticks: get_u64(v, "sequential_ticks")?,
        parallel_ticks: get_u64(v, "parallel_ticks")?,
        communication_ticks: get_u64(v, "communication_ticks")?,
        fast_forwarded_ticks: v
            .get("fast_forwarded_ticks")
            .and_then(Json::as_u64)
            .unwrap_or(0),
        hierarchy: hierarchy_from_json(v.get("hierarchy").ok_or_else(missing("hierarchy"))?)?,
        cpu: cpu_from_json(v.get("cpu").ok_or_else(missing("cpu"))?)?,
        gpu: gpu_from_json(v.get("gpu").ok_or_else(missing("gpu"))?)?,
    })
}

/// Serializes a [`TimelineSummary`].
#[must_use]
pub fn timeline_to_json(t: &TimelineSummary) -> Json {
    Json::obj(vec![
        ("interval", Json::UInt(t.interval)),
        ("samples", Json::UInt(t.samples)),
        ("skipped_windows", Json::UInt(t.skipped_windows)),
        ("peak_dram_requests", Json::UInt(t.peak_dram_requests)),
        ("peak_llc_misses", Json::UInt(t.peak_llc_misses)),
        ("peak_interventions", Json::UInt(t.peak_interventions)),
        ("busiest_window_start", Json::UInt(t.busiest_window_start)),
    ])
}

/// Deserializes [`timeline_to_json`] output.
///
/// # Errors
///
/// Returns a [`JsonError`] when a field is missing or mistyped.
pub fn timeline_from_json(v: &Json) -> Result<TimelineSummary, JsonError> {
    Ok(TimelineSummary {
        interval: get_u64(v, "interval")?,
        samples: get_u64(v, "samples")?,
        skipped_windows: get_u64(v, "skipped_windows")?,
        peak_dram_requests: get_u64(v, "peak_dram_requests")?,
        peak_llc_misses: get_u64(v, "peak_llc_misses")?,
        peak_interventions: get_u64(v, "peak_interventions")?,
        busiest_window_start: get_u64(v, "busiest_window_start")?,
    })
}

fn cache_to_json(c: &CacheStats) -> Json {
    Json::obj(vec![
        ("hits", Json::UInt(c.hits)),
        ("misses", Json::UInt(c.misses)),
        ("evictions", Json::UInt(c.evictions)),
        ("writebacks", Json::UInt(c.writebacks)),
        ("bypasses", Json::UInt(c.bypasses)),
    ])
}

fn cache_from_json(v: &Json) -> Result<CacheStats, JsonError> {
    Ok(CacheStats {
        hits: get_u64(v, "hits")?,
        misses: get_u64(v, "misses")?,
        evictions: get_u64(v, "evictions")?,
        writebacks: get_u64(v, "writebacks")?,
        bypasses: get_u64(v, "bypasses")?,
    })
}

fn tlb_to_json(t: &TlbStats) -> Json {
    Json::obj(vec![
        ("hits", Json::UInt(t.hits)),
        ("misses", Json::UInt(t.misses)),
    ])
}

fn tlb_from_json(v: &Json) -> Result<TlbStats, JsonError> {
    Ok(TlbStats {
        hits: get_u64(v, "hits")?,
        misses: get_u64(v, "misses")?,
    })
}

fn hierarchy_to_json(h: &HierarchyStats) -> Json {
    Json::obj(vec![
        ("cpu_l1d", cache_to_json(&h.cpu_l1d)),
        ("cpu_l2", cache_to_json(&h.cpu_l2)),
        ("gpu_l1d", cache_to_json(&h.gpu_l1d)),
        ("llc", cache_to_json(&h.llc)),
        (
            "dram",
            Json::obj(vec![
                ("reads", Json::UInt(h.dram.reads)),
                ("writes", Json::UInt(h.dram.writes)),
                ("row_hits", Json::UInt(h.dram.row_hits)),
                ("row_misses", Json::UInt(h.dram.row_misses)),
                ("bus_busy_ticks", Json::UInt(h.dram.bus_busy_ticks)),
            ]),
        ),
        (
            "coherence",
            Json::obj(vec![
                ("invalidations", Json::UInt(h.coherence.invalidations)),
                ("peer_writebacks", Json::UInt(h.coherence.peer_writebacks)),
            ]),
        ),
        ("cpu_tlb", tlb_to_json(&h.cpu_tlb)),
        ("gpu_tlb", tlb_to_json(&h.gpu_tlb)),
        ("prefetches", Json::UInt(h.prefetches)),
    ])
}

fn hierarchy_from_json(v: &Json) -> Result<HierarchyStats, JsonError> {
    let dram = v.get("dram").ok_or_else(missing("dram"))?;
    let coherence = v.get("coherence").ok_or_else(missing("coherence"))?;
    Ok(HierarchyStats {
        cpu_l1d: cache_from_json(v.get("cpu_l1d").ok_or_else(missing("cpu_l1d"))?)?,
        cpu_l2: cache_from_json(v.get("cpu_l2").ok_or_else(missing("cpu_l2"))?)?,
        gpu_l1d: cache_from_json(v.get("gpu_l1d").ok_or_else(missing("gpu_l1d"))?)?,
        llc: cache_from_json(v.get("llc").ok_or_else(missing("llc"))?)?,
        dram: DramStats {
            reads: get_u64(dram, "reads")?,
            writes: get_u64(dram, "writes")?,
            row_hits: get_u64(dram, "row_hits")?,
            row_misses: get_u64(dram, "row_misses")?,
            bus_busy_ticks: get_u64(dram, "bus_busy_ticks")?,
        },
        coherence: CoherenceStats {
            invalidations: get_u64(coherence, "invalidations")?,
            peer_writebacks: get_u64(coherence, "peer_writebacks")?,
        },
        cpu_tlb: tlb_from_json(v.get("cpu_tlb").ok_or_else(missing("cpu_tlb"))?)?,
        gpu_tlb: tlb_from_json(v.get("gpu_tlb").ok_or_else(missing("gpu_tlb"))?)?,
        prefetches: get_u64(v, "prefetches")?,
    })
}

fn cpu_to_json(c: &CpuStats) -> Json {
    Json::obj(vec![
        ("instructions", Json::UInt(c.instructions)),
        ("branches", Json::UInt(c.branches)),
        ("mispredictions", Json::UInt(c.mispredictions)),
        ("loads", Json::UInt(c.loads)),
        ("stores", Json::UInt(c.stores)),
        ("rob_stall_ticks", Json::UInt(c.rob_stall_ticks)),
        ("special_ops", Json::UInt(c.special_ops)),
    ])
}

fn cpu_from_json(v: &Json) -> Result<CpuStats, JsonError> {
    Ok(CpuStats {
        instructions: get_u64(v, "instructions")?,
        branches: get_u64(v, "branches")?,
        mispredictions: get_u64(v, "mispredictions")?,
        loads: get_u64(v, "loads")?,
        stores: get_u64(v, "stores")?,
        rob_stall_ticks: get_u64(v, "rob_stall_ticks")?,
        special_ops: get_u64(v, "special_ops")?,
    })
}

fn gpu_to_json(g: &GpuStats) -> Json {
    Json::obj(vec![
        ("instructions", Json::UInt(g.instructions)),
        ("branch_stall_cycles", Json::UInt(g.branch_stall_cycles)),
        ("scratchpad_hits", Json::UInt(g.scratchpad_hits)),
        ("memory_loads", Json::UInt(g.memory_loads)),
        ("stores", Json::UInt(g.stores)),
        ("memory_stall_ticks", Json::UInt(g.memory_stall_ticks)),
        ("special_ops", Json::UInt(g.special_ops)),
    ])
}

fn gpu_from_json(v: &Json) -> Result<GpuStats, JsonError> {
    Ok(GpuStats {
        instructions: get_u64(v, "instructions")?,
        branch_stall_cycles: get_u64(v, "branch_stall_cycles")?,
        scratchpad_hits: get_u64(v, "scratchpad_hits")?,
        memory_loads: get_u64(v, "memory_loads")?,
        stores: get_u64(v, "stores")?,
        memory_stall_ticks: get_u64(v, "memory_stall_ticks")?,
        special_ops: get_u64(v, "special_ops")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn sample_record() -> SweepRecord {
        let mut report = RunReport {
            kernel: "reduction".into(),
            sequential_ticks: 10,
            parallel_ticks: 700,
            communication_ticks: 42,
            ..RunReport::default()
        };
        report.cpu.instructions = 1234;
        report.gpu.instructions = 5678;
        report.hierarchy.llc.hits = 11;
        report.hierarchy.dram.reads = 7;
        report.hierarchy.coherence.invalidations = 3;
        report.hierarchy.prefetches = 99;
        SweepRecord {
            id: 4,
            kind: "case-study".into(),
            kernel: "reduction".into(),
            target: "CPU+GPU".into(),
            scale: 64,
            design_point: "disjoint / pci-e / explicit / none coherence".into(),
            mode: ExecMode::Accurate,
            report,
            timeline: None,
        }
    }

    #[test]
    fn record_round_trips_through_json() {
        let record = sample_record();
        let text = record.to_json().render();
        let back = SweepRecord::from_json(&parse(&text).expect("parses")).expect("decodes");
        assert_eq!(back, record);
        assert_eq!(
            back.to_json().render(),
            text,
            "re-render must be byte-identical"
        );
    }

    #[test]
    fn csv_row_matches_header_width() {
        let record = sample_record();
        let row = record.csv_row();
        assert_eq!(row.split(',').count(), CSV_HEADER.split(',').count());
        assert!(row.starts_with("4,case-study,reduction,CPU+GPU,64,752,10,700,42,1234,5678,"));
    }

    #[test]
    fn csv_quotes_fields_with_separators() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("q\"q"), "\"q\"\"q\"");
    }

    #[test]
    fn timeline_round_trips_and_absence_is_tolerated() {
        let mut record = sample_record();
        let without = record.to_json().render();
        assert!(!without.contains("timeline"), "{without}");
        record.timeline = Some(TimelineSummary {
            interval: 1_000_000,
            samples: 12,
            skipped_windows: 0,
            peak_dram_requests: 55,
            peak_llc_misses: 21,
            peak_interventions: 3,
            busiest_window_start: 4_000_000,
        });
        let with = record.to_json().render();
        assert!(with.contains("\"timeline\""), "{with}");
        let back = SweepRecord::from_json(&parse(&with).expect("parses")).expect("decodes");
        assert_eq!(back, record);
        // Old records (no timeline field) still decode.
        let old = SweepRecord::from_json(&parse(&without).expect("parses")).expect("decodes");
        assert_eq!(old.timeline, None);
    }

    #[test]
    fn mode_round_trips_and_accurate_stays_byte_stable() {
        let mut record = sample_record();
        let accurate = record.to_json().render();
        assert!(
            !accurate.contains("\"mode\"") && !accurate.contains("fast_forwarded_ticks"),
            "accurate records must serialize like pre-mode records: {accurate}"
        );
        // Pre-mode payloads decode as accurate.
        let old = SweepRecord::from_json(&parse(&accurate).expect("parses")).expect("decodes");
        assert_eq!(old.mode, ExecMode::Accurate);
        assert_eq!(old.report.fast_forwarded_ticks, 0);

        record.mode = ExecMode::Sampled {
            warm_interval: 7000,
            detail_window: 250,
        };
        record.report.fast_forwarded_ticks = 12_345;
        let sampled = record.to_json().render();
        assert!(
            sampled.contains("\"mode\":\"sampled:7000:250\""),
            "{sampled}"
        );
        assert!(
            sampled.contains("\"fast_forwarded_ticks\":12345"),
            "{sampled}"
        );
        let back = SweepRecord::from_json(&parse(&sampled).expect("parses")).expect("decodes");
        assert_eq!(back, record);
    }

    #[test]
    fn missing_fields_error_cleanly() {
        let v = parse("{\"id\":1}").expect("parses");
        assert!(SweepRecord::from_json(&v).is_err());
    }
}
