//! Experiment runners: the case studies of Figures 5–6 and the
//! memory-space isolation of Figure 7.

use crate::address_space::IdealSpaceComm;
use crate::presets::EvaluatedSystem;
use hetmem_dsl::AddressSpace;
use hetmem_sim::{CommCosts, CommModel, RunReport, Simulation, SystemConfig};
use hetmem_trace::kernels::{Kernel, KernelParams};
use hetmem_trace::PhasedTrace;

/// Runs `trace` on `system` hardware with `comm` communication via the
/// builder API. Experiment configurations are constructed from validated
/// presets, so failures here are programmer errors.
fn simulate(
    system: &SystemConfig,
    costs: CommCosts,
    comm: impl CommModel + 'static,
    trace: &PhasedTrace,
) -> RunReport {
    Simulation::builder()
        .config(*system)
        .costs(costs)
        .comm_model(comm)
        .build()
        .expect("experiment system configuration is valid")
        .run(trace)
        .expect("generated traces are well-formed")
}

/// Common knobs for all experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExperimentConfig {
    /// Trace scale divisor: 1 reproduces the paper's full-size traces,
    /// larger values run proportionally smaller inputs (for quick runs and
    /// micro-benchmarks).
    pub scale: u32,
    /// The baseline hardware configuration (Table II).
    pub system: SystemConfig,
    /// Communication / programming-model latencies (Table IV).
    pub costs: CommCosts,
}

impl ExperimentConfig {
    /// Full-size paper configuration.
    #[must_use]
    pub fn paper() -> ExperimentConfig {
        ExperimentConfig {
            scale: 1,
            system: SystemConfig::baseline(),
            costs: CommCosts::paper(),
        }
    }

    /// Down-scaled configuration for fast runs.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is zero.
    #[must_use]
    pub fn scaled(scale: u32) -> ExperimentConfig {
        assert!(scale > 0, "scale must be non-zero");
        ExperimentConfig {
            scale,
            ..ExperimentConfig::paper()
        }
    }

    fn params(&self) -> KernelParams {
        KernelParams::scaled(self.scale)
    }
}

/// One Figure 5/6 measurement: a kernel on an evaluated system.
#[derive(Clone, Debug, PartialEq)]
pub struct CaseStudyRun {
    /// The system configuration.
    pub system: EvaluatedSystem,
    /// The kernel.
    pub kernel: Kernel,
    /// The simulator's report.
    pub report: RunReport,
}

/// Runs one kernel on one evaluated system (a cell of Figures 5–6).
#[must_use]
pub fn run_case_study(
    system: EvaluatedSystem,
    kernel: Kernel,
    config: &ExperimentConfig,
) -> CaseStudyRun {
    let trace = kernel.generate(&config.params());
    let report = simulate(
        &config.system,
        config.costs,
        system.comm_model(config.costs),
        &trace,
    );
    CaseStudyRun {
        system,
        kernel,
        report,
    }
}

/// Runs the full Figure 5/6 grid: every kernel on every evaluated system.
#[must_use]
pub fn run_case_studies(config: &ExperimentConfig) -> Vec<CaseStudyRun> {
    let mut out = Vec::new();
    for kernel in Kernel::ALL {
        // Generate once per kernel; systems share the trace.
        let trace = kernel.generate(&config.params());
        for system in EvaluatedSystem::ALL {
            let report = simulate(
                &config.system,
                config.costs,
                system.comm_model(config.costs),
                &trace,
            );
            out.push(CaseStudyRun {
                system,
                kernel,
                report,
            });
        }
    }
    out
}

/// One Figure 7 measurement: a kernel under an address-space option with
/// idealized communication (shared cache, free transfers — only the API
/// instruction overhead remains).
#[derive(Clone, Debug, PartialEq)]
pub struct SpaceRun {
    /// The address-space option.
    pub space: AddressSpace,
    /// The kernel.
    pub kernel: Kernel,
    /// The simulator's report.
    pub report: RunReport,
}

/// Runs one kernel under one address-space option (a cell of Figure 7).
#[must_use]
pub fn run_address_space(
    space: AddressSpace,
    kernel: Kernel,
    config: &ExperimentConfig,
) -> SpaceRun {
    let trace = kernel.generate(&config.params());
    let report = simulate(
        &config.system,
        config.costs,
        IdealSpaceComm::new(space, config.costs),
        &trace,
    );
    SpaceRun {
        space,
        kernel,
        report,
    }
}

/// Runs the full Figure 7 grid.
#[must_use]
pub fn run_address_spaces(config: &ExperimentConfig) -> Vec<SpaceRun> {
    let mut out = Vec::new();
    for kernel in Kernel::ALL {
        let trace = kernel.generate(&config.params());
        for space in AddressSpace::ALL {
            let report = simulate(
                &config.system,
                config.costs,
                IdealSpaceComm::new(space, config.costs),
                &trace,
            );
            out.push(SpaceRun {
                space,
                kernel,
                report,
            });
        }
    }
    out
}

/// One row of the GPU page-size study (§II-A1: a virtually unified or
/// partially shared space lets the GPU use large pages for stream
/// locality).
#[derive(Clone, Debug, PartialEq)]
pub struct PageSizeRow {
    /// GPU page size in bytes.
    pub gpu_page_bytes: u64,
    /// Total execution ticks.
    pub total_ticks: u64,
    /// GPU TLB miss rate over the run.
    pub gpu_tlb_miss_rate: f64,
}

/// Runs `kernel` under an ideal fabric with each GPU page size — the
/// quantitative side of §II-A1's observation that per-PU page-size freedom
/// is one of the design options a non-physically-unified space buys.
///
/// # Panics
///
/// Panics if any size is not a power of two (TLB requirement).
#[must_use]
pub fn run_page_size_study(
    kernel: Kernel,
    config: &ExperimentConfig,
    gpu_page_sizes: &[u64],
) -> Vec<PageSizeRow> {
    use hetmem_sim::{FabricKind, SynchronousFabric};
    let trace = kernel.generate(&config.params());
    gpu_page_sizes
        .iter()
        .map(|&gpu_page_bytes| {
            let mut system = config.system;
            system.mmu.gpu_page_bytes = gpu_page_bytes;
            let report = simulate(
                &system,
                config.costs,
                SynchronousFabric::new(FabricKind::Ideal, config.costs),
                &trace,
            );
            PageSizeRow {
                gpu_page_bytes,
                total_ticks: report.total_ticks(),
                gpu_tlb_miss_rate: report.hierarchy.gpu_tlb.miss_rate(),
            }
        })
        .collect()
}

/// One row of the work-partitioning sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionRow {
    /// Percentage of the parallel work on the GPU.
    pub gpu_share_pct: u32,
    /// Total execution ticks.
    pub total_ticks: u64,
}

/// Sweeps the CPU/GPU work split for `kernel` on `system`. The paper
/// divides work evenly and defers optimal partitioning to Qilin-style
/// systems (§IV-B); this sweep finds the empirically best split on our
/// substrate.
#[must_use]
pub fn run_partition_sweep(
    system: EvaluatedSystem,
    kernel: Kernel,
    config: &ExperimentConfig,
    shares: &[u32],
) -> Vec<PartitionRow> {
    shares
        .iter()
        .map(|&gpu_share_pct| {
            let params = KernelParams::scaled(config.scale).with_gpu_share(gpu_share_pct);
            let trace = kernel.generate(&params);
            let report = simulate(
                &config.system,
                config.costs,
                system.comm_model(config.costs),
                &trace,
            );
            PartitionRow {
                gpu_share_pct,
                total_ticks: report.total_ticks(),
            }
        })
        .collect()
}

/// The share minimizing total time in a sweep result.
///
/// # Panics
///
/// Panics on an empty sweep.
#[must_use]
pub fn best_partition(rows: &[PartitionRow]) -> &PartitionRow {
    rows.iter()
        .min_by_key(|r| r.total_ticks)
        .expect("non-empty sweep")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetmem_trace::Phase;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig::scaled(64)
    }

    #[test]
    fn ideal_hetero_is_never_slower() {
        // Figure 5's shape: IDEAL-HETERO lower-bounds every system.
        for kernel in [Kernel::Reduction, Kernel::MergeSort] {
            let ideal = run_case_study(EvaluatedSystem::IdealHetero, kernel, &cfg())
                .report
                .total_ticks();
            for sys in EvaluatedSystem::ALL {
                let t = run_case_study(sys, kernel, &cfg()).report.total_ticks();
                assert!(t >= ideal, "{sys}/{kernel}: {t} < ideal {ideal}");
            }
        }
    }

    #[test]
    fn pci_systems_slower_than_fusion_and_ideal() {
        // "CPU+GPU, LRB and GMAC have a longer execution time than those of
        // IDEAL-HETERO and Fusion."
        let kernel = Kernel::MergeSort;
        let comm = |sys| {
            run_case_study(sys, kernel, &cfg())
                .report
                .communication_ticks
        };
        let fusion = comm(EvaluatedSystem::Fusion);
        let ideal = comm(EvaluatedSystem::IdealHetero);
        for pci in [
            EvaluatedSystem::CpuGpuCuda,
            EvaluatedSystem::Lrb,
            EvaluatedSystem::Gmac,
        ] {
            let c = comm(pci);
            assert!(c > fusion, "{pci} comm {c} <= Fusion {fusion}");
            assert!(c > ideal, "{pci} comm {c} <= ideal {ideal}");
        }
    }

    #[test]
    fn gmac_hides_communication_relative_to_cuda() {
        let kernel = Kernel::Reduction;
        let cuda = run_case_study(EvaluatedSystem::CpuGpuCuda, kernel, &cfg());
        let gmac = run_case_study(EvaluatedSystem::Gmac, kernel, &cfg());
        assert!(
            gmac.report.communication_ticks < cuda.report.communication_ticks,
            "gmac {} vs cuda {}",
            gmac.report.communication_ticks,
            cuda.report.communication_ticks
        );
    }

    #[test]
    fn lrb_beats_cuda_by_skipping_result_transfers() {
        let kernel = Kernel::MatrixMul;
        let cfg = ExperimentConfig::scaled(256);
        let cuda = run_case_study(EvaluatedSystem::CpuGpuCuda, kernel, &cfg);
        let lrb = run_case_study(EvaluatedSystem::Lrb, kernel, &cfg);
        assert!(lrb.report.communication_ticks < cuda.report.communication_ticks);
    }

    #[test]
    fn figure7_spaces_are_within_noise() {
        // "There is almost no performance difference between options." The
        // API overheads are fixed while compute scales with input size, so
        // this property is about realistic inputs — use a mild scale.
        let cfg = ExperimentConfig::scaled(4);
        let kernel = Kernel::Convolution;
        let totals: Vec<u64> = AddressSpace::ALL
            .iter()
            .map(|&s| run_address_space(s, kernel, &cfg).report.total_ticks())
            .collect();
        let max = *totals.iter().max().expect("non-empty");
        let min = *totals.iter().min().expect("non-empty");
        let spread = (max - min) as f64 / max as f64;
        assert!(spread < 0.02, "spread {totals:?} exceeds 2 %");
    }

    #[test]
    fn partition_sweep_prefers_cpu_leaning_splits() {
        // On this substrate the in-order SIMD GPU retires the kernels'
        // instruction streams more slowly than the 4-wide OoO CPU, so the
        // time-balanced split leans CPU-ward — the even division the paper
        // uses (and its Figure 5, where the parallel phase is GPU-bound)
        // leaves the GPU as the critical path. The sweep must find that.
        let rows = run_partition_sweep(
            EvaluatedSystem::IdealHetero,
            Kernel::Dct,
            &ExperimentConfig::scaled(32),
            &[1, 5, 25, 50, 75, 95],
        );
        assert_eq!(rows.len(), 6);
        let best = best_partition(&rows);
        assert!(
            best.gpu_share_pct <= 25,
            "best share {} of {rows:?}",
            best.gpu_share_pct
        );
        // Once the GPU is the bottleneck, more GPU work is strictly worse.
        let ticks: Vec<u64> = rows
            .iter()
            .filter(|r| r.gpu_share_pct >= 25)
            .map(|r| r.total_ticks)
            .collect();
        assert!(ticks.windows(2).all(|w| w[0] < w[1]), "{rows:?}");
        let worst = rows.iter().map(|r| r.total_ticks).max().expect("non-empty");
        assert!(
            worst > best.total_ticks * 2,
            "sweep must discriminate strongly"
        );
    }

    #[test]
    fn larger_gpu_pages_reduce_tlb_misses_and_never_hurt() {
        // §II-A1: GPUs can use large pages for stream locality.
        let rows = run_page_size_study(
            Kernel::Dct,
            &ExperimentConfig::scaled(16),
            &[4096, 2 * 1024 * 1024],
        );
        assert_eq!(rows.len(), 2);
        assert!(
            rows[1].gpu_tlb_miss_rate < rows[0].gpu_tlb_miss_rate,
            "2MB: {} vs 4KB: {}",
            rows[1].gpu_tlb_miss_rate,
            rows[0].gpu_tlb_miss_rate
        );
        assert!(rows[1].total_ticks <= rows[0].total_ticks);
    }

    #[test]
    fn grid_covers_all_cells() {
        let grid = run_case_studies(&ExperimentConfig::scaled(512));
        assert_eq!(grid.len(), 6 * 5);
        let spaces = run_address_spaces(&ExperimentConfig::scaled(512));
        assert_eq!(spaces.len(), 6 * 4);
        for run in &grid {
            assert!(run.report.total_ticks() > 0);
            assert!(run.report.phase_ticks(Phase::Parallel) > 0);
        }
    }
}
