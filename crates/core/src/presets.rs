//! The five heterogeneous systems evaluated in §V-A (Figures 5–6):
//! CPU+GPU (CUDA, disjoint over PCI-E), LRB (partially shared over the PCI
//! aperture), GMAC (ADSM with asynchronous PCI-E copies), Fusion (disjoint
//! over the memory controllers), and IDEAL-HETERO (unified, fully coherent).
//!
//! Each preset pairs an address-space option with a communication model
//! implementing the behaviours the paper describes:
//!
//! * CPU+GPU must move the final data back to the CPU space synchronously.
//! * LRB skips transfers for data already in the shared window but pays
//!   ownership (`api-acq`), aperture transfers (`api-tr`), and first-touch
//!   page faults (`lib-pf`).
//! * GMAC overlaps input copies with computation and never copies results
//!   back (the CPU addresses the shared space directly).
//! * Fusion copies through the on-chip memory controllers — cheap relative
//!   to PCI-E.
//! * IDEAL-HETERO communicates for free.

use hetmem_dsl::AddressSpace;
use hetmem_sim::{CommAction, CommCostClass, CommCosts, CommModel, FabricKind, SynchronousFabric};
use hetmem_trace::{CommEvent, TransferDirection};
use std::collections::BTreeSet;

/// One of the five evaluated system configurations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EvaluatedSystem {
    /// Disjoint memory over PCI-E, CUDA-style explicit memcpys.
    CpuGpuCuda,
    /// Partially shared space with the PCI aperture and ownership (LRB).
    Lrb,
    /// ADSM with asynchronous PCI-E copies (GMAC).
    Gmac,
    /// Disjoint memory over the on-chip memory controllers (AMD Fusion).
    Fusion,
    /// Unified, fully coherent, zero-cost communication.
    IdealHetero,
}

impl EvaluatedSystem {
    /// All five, in the paper's presentation order.
    pub const ALL: [EvaluatedSystem; 5] = [
        EvaluatedSystem::CpuGpuCuda,
        EvaluatedSystem::Lrb,
        EvaluatedSystem::Gmac,
        EvaluatedSystem::Fusion,
        EvaluatedSystem::IdealHetero,
    ];

    /// The name used in Figures 5–6.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EvaluatedSystem::CpuGpuCuda => "CPU+GPU",
            EvaluatedSystem::Lrb => "LRB",
            EvaluatedSystem::Gmac => "GMAC",
            EvaluatedSystem::Fusion => "Fusion",
            EvaluatedSystem::IdealHetero => "IDEAL-HETERO",
        }
    }

    /// The system's address-space organization.
    #[must_use]
    pub fn address_space(self) -> AddressSpace {
        match self {
            EvaluatedSystem::CpuGpuCuda | EvaluatedSystem::Fusion => AddressSpace::Disjoint,
            EvaluatedSystem::Lrb => AddressSpace::PartiallyShared,
            EvaluatedSystem::Gmac => AddressSpace::Adsm,
            EvaluatedSystem::IdealHetero => AddressSpace::Unified,
        }
    }

    /// The hardware fabric the system communicates over.
    #[must_use]
    pub fn fabric(self) -> FabricKind {
        match self {
            EvaluatedSystem::CpuGpuCuda | EvaluatedSystem::Gmac => FabricKind::PciExpress,
            EvaluatedSystem::Lrb => FabricKind::PciAperture,
            EvaluatedSystem::Fusion => FabricKind::MemoryController,
            EvaluatedSystem::IdealHetero => FabricKind::Ideal,
        }
    }

    /// Builds the system's communication model with the given Table IV
    /// costs.
    #[must_use]
    pub fn comm_model(self, costs: CommCosts) -> PresetCommModel {
        match self {
            EvaluatedSystem::CpuGpuCuda => {
                PresetCommModel::Sync(SynchronousFabric::new(FabricKind::PciExpress, costs))
            }
            EvaluatedSystem::Fusion => {
                PresetCommModel::Sync(SynchronousFabric::new(FabricKind::MemoryController, costs))
            }
            EvaluatedSystem::IdealHetero => {
                PresetCommModel::Sync(SynchronousFabric::new(FabricKind::Ideal, costs))
            }
            EvaluatedSystem::Lrb => PresetCommModel::Lrb(LrbModel {
                costs,
                touched_pages: BTreeSet::new(),
            }),
            EvaluatedSystem::Gmac => PresetCommModel::Gmac(GmacModel { costs }),
        }
    }
}

impl std::fmt::Display for EvaluatedSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The LRB model: aperture transfers with ownership and first-touch page
/// faults.
#[derive(Clone, Debug)]
pub struct LrbModel {
    costs: CommCosts,
    /// 4 KB pages of the shared window already faulted in.
    touched_pages: BTreeSet<u64>,
}

impl LrbModel {
    fn page_faults(&mut self, event: &CommEvent) -> u64 {
        // First-time access to shared-window pages takes lib-pf each; the
        // window persists, so re-used regions fault no further.
        let first = event.addr / 4096;
        let last = (event.addr + event.bytes.max(1) - 1) / 4096;
        let mut faults = 0;
        for page in first..=last {
            if self.touched_pages.insert(page) {
                faults += 1;
            }
        }
        // The paper models the fault cost per first-touched *region* (a
        // single lib-pf latency per new mapping), not per page — a page-per-
        // page cost would dwarf every other Table IV parameter.
        u64::from(faults > 0)
    }
}

impl CommModel for LrbModel {
    fn cost_class(&self, event: &CommEvent) -> CommCostClass {
        match event.direction {
            // Dominated by the aperture transfer (`api-tr`).
            TransferDirection::HostToDevice => CommCostClass::ApiTr,
            // Pure ownership acquire.
            TransferDirection::DeviceToHost => CommCostClass::ApiAcq,
        }
    }

    fn plan(&mut self, event: &CommEvent) -> CommAction {
        match event.direction {
            TransferDirection::HostToDevice => {
                // Ownership release + aperture transfer + any first-touch
                // fault.
                let faults = self.page_faults(event);
                let ticks = self.costs.cpu_cycles_ticks(self.costs.api_acq_cycles)
                    + FabricKind::PciAperture.transfer_ticks(event.bytes, &self.costs)
                    + self
                        .costs
                        .cpu_cycles_ticks(faults * self.costs.lib_pf_cycles);
                CommAction::Synchronous { ticks }
            }
            TransferDirection::DeviceToHost => {
                // Results already live in the shared window: no transfer,
                // just the ownership acquire.
                CommAction::Synchronous {
                    ticks: self.costs.cpu_cycles_ticks(self.costs.api_acq_cycles),
                }
            }
        }
    }
}

/// Share of a GMAC input transfer that stays on the critical path. GMAC's
/// rolling copies move data at page granularity while the kernel runs, but
/// the kernel demand-stalls on pages that have not arrived yet, so hiding
/// is partial — the paper still groups GMAC with the PCI-bound systems
/// (slower than Fusion and IDEAL-HETERO) even though "the communication
/// cost can be easily hidden".
const GMAC_SYNC_TRANSFER_PCT: u64 = 60;

/// The GMAC model: asynchronous input copies, direct CPU access to results.
#[derive(Clone, Copy, Debug)]
pub struct GmacModel {
    costs: CommCosts,
}

impl CommModel for GmacModel {
    fn cost_class(&self, event: &CommEvent) -> CommCostClass {
        match event.direction {
            // Rolling PCI-E copies dominate the input path.
            TransferDirection::HostToDevice => CommCostClass::ApiPci,
            // Only the kernel-return synchronization remains.
            TransferDirection::DeviceToHost => CommCostClass::ApiAcq,
        }
    }

    fn plan(&mut self, event: &CommEvent) -> CommAction {
        match event.direction {
            TransferDirection::HostToDevice => {
                let transfer = FabricKind::PciExpress.transfer_ticks(event.bytes, &self.costs);
                let sync_part = transfer * GMAC_SYNC_TRANSFER_PCT / 100;
                CommAction::Asynchronous {
                    // The demand-stalled portion plus the runtime call block
                    // the host; the rest streams behind the computation.
                    setup: self.costs.cpu_cycles_ticks(self.costs.api_acq_cycles) + sync_part,
                    transfer: transfer - sync_part,
                }
            }
            TransferDirection::DeviceToHost => {
                // ADSM: the CPU addresses the shared space; only the kernel
                // return synchronization costs anything.
                CommAction::Synchronous {
                    ticks: self.costs.cpu_cycles_ticks(self.costs.sync_cycles),
                }
            }
        }
    }
}

/// A preset's communication model (closed enum so callers can hold it by
/// value).
#[derive(Clone, Debug)]
pub enum PresetCommModel {
    /// Synchronous transfers over one fabric.
    Sync(SynchronousFabric),
    /// The LRB aperture/ownership model.
    Lrb(LrbModel),
    /// The GMAC asynchronous model.
    Gmac(GmacModel),
}

impl CommModel for PresetCommModel {
    fn cost_class(&self, event: &CommEvent) -> CommCostClass {
        match self {
            PresetCommModel::Sync(m) => m.cost_class(event),
            PresetCommModel::Lrb(m) => m.cost_class(event),
            PresetCommModel::Gmac(m) => m.cost_class(event),
        }
    }

    fn plan(&mut self, event: &CommEvent) -> CommAction {
        match self {
            PresetCommModel::Sync(m) => m.plan(event),
            PresetCommModel::Lrb(m) => m.plan(event),
            PresetCommModel::Gmac(m) => m.plan(event),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetmem_trace::CommKind;

    fn event(direction: TransferDirection, bytes: u64, addr: u64) -> CommEvent {
        CommEvent {
            direction,
            bytes,
            kind: CommKind::InitialInput,
            addr,
        }
    }

    #[test]
    fn names_and_spaces() {
        assert_eq!(
            EvaluatedSystem::CpuGpuCuda.address_space(),
            AddressSpace::Disjoint
        );
        assert_eq!(
            EvaluatedSystem::Lrb.address_space(),
            AddressSpace::PartiallyShared
        );
        assert_eq!(EvaluatedSystem::Gmac.address_space(), AddressSpace::Adsm);
        assert_eq!(
            EvaluatedSystem::Fusion.address_space(),
            AddressSpace::Disjoint
        );
        assert_eq!(
            EvaluatedSystem::IdealHetero.address_space(),
            AddressSpace::Unified
        );
        assert_eq!(EvaluatedSystem::ALL.len(), 5);
    }

    #[test]
    fn lrb_skips_result_transfers() {
        let costs = CommCosts::paper();
        let mut lrb = EvaluatedSystem::Lrb.comm_model(costs);
        let h2d = lrb.plan(&event(TransferDirection::HostToDevice, 65_536, 0x3000_0000));
        let d2h = lrb.plan(&event(TransferDirection::DeviceToHost, 65_536, 0x3000_0000));
        let (CommAction::Synchronous { ticks: up }, CommAction::Synchronous { ticks: down }) =
            (h2d, d2h)
        else {
            panic!("LRB transfers are synchronous");
        };
        assert!(
            up > down,
            "input pays aperture+fault, result only ownership"
        );
        assert_eq!(down, costs.cpu_cycles_ticks(costs.api_acq_cycles));
    }

    #[test]
    fn lrb_faults_only_on_first_touch() {
        let costs = CommCosts::paper();
        let mut lrb = EvaluatedSystem::Lrb.comm_model(costs);
        let first = lrb.plan(&event(TransferDirection::HostToDevice, 4096, 0x3000_0000));
        let second = lrb.plan(&event(TransferDirection::HostToDevice, 4096, 0x3000_0000));
        let (CommAction::Synchronous { ticks: a }, CommAction::Synchronous { ticks: b }) =
            (first, second)
        else {
            panic!("synchronous expected");
        };
        assert_eq!(a - b, costs.cpu_cycles_ticks(costs.lib_pf_cycles));
    }

    #[test]
    fn gmac_inputs_are_asynchronous_and_results_cheap() {
        let costs = CommCosts::paper();
        let mut gmac = EvaluatedSystem::Gmac.comm_model(costs);
        assert!(matches!(
            gmac.plan(&event(TransferDirection::HostToDevice, 65_536, 0)),
            CommAction::Asynchronous { .. }
        ));
        match gmac.plan(&event(TransferDirection::DeviceToHost, 65_536, 0)) {
            CommAction::Synchronous { ticks } => {
                assert_eq!(ticks, costs.cpu_cycles_ticks(costs.sync_cycles));
            }
            other => panic!("expected cheap sync, got {other:?}"),
        }
    }

    #[test]
    fn ideal_elides_everything() {
        let mut ideal = EvaluatedSystem::IdealHetero.comm_model(CommCosts::paper());
        assert_eq!(
            ideal.plan(&event(TransferDirection::HostToDevice, 1 << 20, 0)),
            CommAction::Elide
        );
    }

    #[test]
    fn fusion_sync_cost_below_pci() {
        let costs = CommCosts::paper();
        let mut fusion = EvaluatedSystem::Fusion.comm_model(costs);
        let mut cuda = EvaluatedSystem::CpuGpuCuda.comm_model(costs);
        let ev = event(TransferDirection::HostToDevice, 320_512, 0);
        let (CommAction::Synchronous { ticks: f }, CommAction::Synchronous { ticks: c }) =
            (fusion.plan(&ev), cuda.plan(&ev))
        else {
            panic!("synchronous expected");
        };
        assert!(f < c, "Fusion ({f}) must beat PCI-E ({c})");
    }
}
