//! Efficiency metrics for design options — the paper's stated future work
//! ("we will develop metrics to measure the efficiency of design options to
//! provide guidelines for future programming languages and future hardware
//! system development", §VII).
//!
//! Three axes, one per trade-off the paper studies:
//!
//! * **performance** — simulated execution time (geometric mean over the six
//!   kernels), from `hetmem-sim`;
//! * **hardware cost** — an abstract score rating the silicon/verification
//!   burden of the design point (coherence machinery, duplicated page
//!   tables, fabric integration, replacement-logic changes), with the
//!   rubric documented per component;
//! * **programmer burden** — the mean extra source lines of Table V for the
//!   point's address space.
//!
//! [`pareto_frontier`] then reports which evaluated systems are
//! efficiency-optimal: no other point is at least as good on every axis and
//! better on one.

use crate::design_space::{CoherenceOption, DesignPoint};
use crate::experiment::{run_case_studies, ExperimentConfig};
use crate::locality::SharedLocality;
use crate::presets::EvaluatedSystem;
use hetmem_dsl::{paper_loc_table, AddressSpace};
use hetmem_sim::FabricKind;

/// Abstract hardware-cost score of a design point (higher = more silicon,
/// design, and verification effort). The rubric:
///
/// | component | score | why |
/// |---|---|---|
/// | unified address space | 30 | page tables + TLB shoot-downs on both PUs spanning all memory |
/// | partially shared space | 15 | duplicated mappings for the window only |
/// | ADSM | 10 | one-sided mappings; accelerator memory system untouched |
/// | disjoint | 0 | nothing shared |
/// | hardware coherence | 25 | cross-PU directory + protocol verification |
/// | ownership coherence | 8 | ownership table + fault on violation |
/// | software coherence | 5 | runtime only |
/// | no coherence | 0 | — |
/// | memory-controller fabric | 12 | on-die integration of both PUs |
/// | PCI aperture | 6 | pinned window + aperture DMA |
/// | PCI-E | 3 | commodity link |
/// | ideal fabric | 40 | (an analysis device: free communication is the most expensive hardware of all) |
/// | hybrid shared locality | 6 | tag bit + replacement-logic change (§II-B5) |
/// | explicit shared locality | 4 | push datapath into the shared cache |
/// | implicit / none | 0 | — |
#[must_use]
pub fn hardware_cost(point: &DesignPoint) -> u32 {
    let space = match point.address_space {
        AddressSpace::Unified => 30,
        AddressSpace::PartiallyShared => 15,
        AddressSpace::Adsm => 10,
        AddressSpace::Disjoint => 0,
    };
    let coherence = match point.coherence {
        CoherenceOption::Hardware => 25,
        CoherenceOption::Ownership => 8,
        CoherenceOption::Software => 5,
        CoherenceOption::None => 0,
    };
    let fabric = match point.fabric {
        FabricKind::Ideal => 40,
        FabricKind::MemoryController => 12,
        FabricKind::PciAperture => 6,
        FabricKind::PciExpress => 3,
    };
    let locality = match point.locality.shared {
        Some(SharedLocality::Hybrid) => 6,
        Some(SharedLocality::Explicit) => 4,
        Some(SharedLocality::Implicit) | None => 0,
    };
    space + coherence + fabric + locality
}

/// Mean extra source lines (Table V) a programmer pays under `space`.
#[must_use]
pub fn programmer_burden(space: AddressSpace) -> f64 {
    let table = paper_loc_table();
    let sum: u32 = table.iter().map(|r| r.overhead(space)).sum();
    f64::from(sum) / table.len() as f64
}

/// One evaluated point on all three axes.
#[derive(Clone, Debug, PartialEq)]
pub struct Evaluation {
    /// The system evaluated.
    pub system: EvaluatedSystem,
    /// Geometric-mean total execution ticks over the six kernels.
    pub perf_ticks: f64,
    /// Abstract hardware-cost score.
    pub hardware_cost: u32,
    /// Mean Table V overhead lines.
    pub programmer_burden: f64,
}

impl Evaluation {
    /// Whether `self` dominates `other`: at least as good on every axis and
    /// strictly better on at least one (all axes minimized).
    #[must_use]
    pub fn dominates(&self, other: &Evaluation) -> bool {
        let le = self.perf_ticks <= other.perf_ticks
            && self.hardware_cost <= other.hardware_cost
            && self.programmer_burden <= other.programmer_burden;
        let lt = self.perf_ticks < other.perf_ticks
            || self.hardware_cost < other.hardware_cost
            || self.programmer_burden < other.programmer_burden;
        le && lt
    }
}

/// The canonical [`DesignPoint`] for an evaluated system (used for the
/// hardware-cost score).
#[must_use]
pub fn design_point_of(system: EvaluatedSystem) -> DesignPoint {
    use crate::locality::{LocalityControl, LocalityScheme};
    let coherence = match system {
        EvaluatedSystem::CpuGpuCuda | EvaluatedSystem::Fusion => CoherenceOption::None,
        EvaluatedSystem::Lrb => CoherenceOption::Ownership,
        EvaluatedSystem::Gmac => CoherenceOption::Software,
        EvaluatedSystem::IdealHetero => CoherenceOption::Hardware,
    };
    let locality = if system.address_space() == AddressSpace::Disjoint {
        LocalityScheme {
            cpu_private: LocalityControl::Implicit,
            gpu_private: LocalityControl::Explicit,
            shared: None,
        }
    } else {
        LocalityScheme::all_implicit()
    };
    DesignPoint {
        address_space: system.address_space(),
        fabric: system.fabric(),
        locality,
        coherence,
    }
}

/// Evaluates the five case-study systems on all three axes.
#[must_use]
pub fn evaluate_systems(config: &ExperimentConfig) -> Vec<Evaluation> {
    let runs = run_case_studies(config);
    EvaluatedSystem::ALL
        .iter()
        .map(|&system| {
            let totals: Vec<f64> = runs
                .iter()
                .filter(|r| r.system == system)
                .map(|r| r.report.total_ticks() as f64)
                .collect();
            let geomean = (totals.iter().map(|t| t.ln()).sum::<f64>() / totals.len() as f64).exp();
            Evaluation {
                system,
                perf_ticks: geomean,
                hardware_cost: hardware_cost(&design_point_of(system)),
                programmer_burden: programmer_burden(system.address_space()),
            }
        })
        .collect()
}

/// Indices of the Pareto-optimal evaluations (no other point dominates
/// them), in input order.
#[must_use]
pub fn pareto_frontier(evals: &[Evaluation]) -> Vec<usize> {
    (0..evals.len())
        .filter(|&i| {
            !evals
                .iter()
                .enumerate()
                .any(|(j, e)| j != i && e.dominates(&evals[i]))
        })
        .collect()
}

/// One system × kernel energy estimate.
#[derive(Clone, Debug, PartialEq)]
pub struct EnergyEval {
    /// The system.
    pub system: EvaluatedSystem,
    /// The kernel.
    pub kernel: hetmem_trace::kernels::Kernel,
    /// The component breakdown.
    pub breakdown: hetmem_sim::EnergyBreakdown,
}

/// Estimates energy for every case-study cell. The fabric traffic follows
/// each system's actual transfer behaviour: the PCI-attached systems move
/// bytes over the link (LRB and GMAC skip the result direction thanks to
/// their shared windows), Fusion copies through the memory controllers,
/// and IDEAL-HETERO moves nothing.
#[must_use]
pub fn evaluate_energy(config: &ExperimentConfig) -> Vec<EnergyEval> {
    use hetmem_sim::{estimate_energy, CommTraffic, EnergyParams};
    use hetmem_trace::kernels::{Kernel, KernelParams};
    use hetmem_trace::TransferDirection;

    let params = EnergyParams::default();
    let mut out = Vec::new();
    for kernel in Kernel::ALL {
        let trace = kernel.generate(&KernelParams::scaled(config.scale));
        let h2d = trace.comm_bytes_in(TransferDirection::HostToDevice);
        let total = trace.comm_bytes();
        for system in EvaluatedSystem::ALL {
            let report = hetmem_sim::Simulation::builder()
                .config(config.system)
                .costs(config.costs)
                .comm_model(system.comm_model(config.costs))
                .build()
                .expect("experiment system configuration is valid")
                .run(&trace)
                .expect("generated traces are well-formed");
            let traffic = match system {
                EvaluatedSystem::CpuGpuCuda => CommTraffic {
                    pci_bytes: total,
                    memctl_bytes: 0,
                },
                // Shared windows: results stay in place, only inputs move.
                EvaluatedSystem::Lrb | EvaluatedSystem::Gmac => CommTraffic {
                    pci_bytes: h2d,
                    memctl_bytes: 0,
                },
                EvaluatedSystem::Fusion => CommTraffic {
                    pci_bytes: 0,
                    memctl_bytes: total,
                },
                EvaluatedSystem::IdealHetero => CommTraffic::default(),
            };
            out.push(EnergyEval {
                system,
                kernel,
                breakdown: estimate_energy(&report, traffic, &params),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hardware_cost_rubric_orders_sensibly() {
        // Disjoint PCI-E CUDA system is the cheapest hardware; the ideal
        // unified coherent system is the most expensive.
        let cuda = hardware_cost(&design_point_of(EvaluatedSystem::CpuGpuCuda));
        let lrb = hardware_cost(&design_point_of(EvaluatedSystem::Lrb));
        let gmac = hardware_cost(&design_point_of(EvaluatedSystem::Gmac));
        let fusion = hardware_cost(&design_point_of(EvaluatedSystem::Fusion));
        let ideal = hardware_cost(&design_point_of(EvaluatedSystem::IdealHetero));
        assert!(cuda < lrb && cuda < gmac && cuda < fusion);
        for other in [cuda, lrb, gmac, fusion] {
            assert!(ideal > other, "ideal ({ideal}) must top {other}");
        }
    }

    #[test]
    fn programmer_burden_follows_table_v_ordering() {
        let uni = programmer_burden(AddressSpace::Unified);
        let pas = programmer_burden(AddressSpace::PartiallyShared);
        let adsm = programmer_burden(AddressSpace::Adsm);
        let dis = programmer_burden(AddressSpace::Disjoint);
        assert_eq!(uni, 0.0);
        assert!(
            uni < pas && pas < adsm && adsm < dis,
            "{uni} {pas} {adsm} {dis}"
        );
    }

    #[test]
    fn dominance_is_irreflexive_and_antisymmetric() {
        let a = Evaluation {
            system: EvaluatedSystem::CpuGpuCuda,
            perf_ticks: 100.0,
            hardware_cost: 5,
            programmer_burden: 7.0,
        };
        let b = Evaluation {
            perf_ticks: 90.0,
            ..a.clone()
        };
        assert!(!a.dominates(&a));
        assert!(b.dominates(&a));
        assert!(!a.dominates(&b));
    }

    #[test]
    fn frontier_has_no_dominated_points_and_is_nonempty() {
        let evals = evaluate_systems(&ExperimentConfig::scaled(128));
        let frontier = pareto_frontier(&evals);
        assert!(!frontier.is_empty());
        for &i in &frontier {
            for (j, e) in evals.iter().enumerate() {
                if j != i {
                    assert!(
                        !e.dominates(&evals[i]),
                        "{} dominated by {}",
                        evals[i].system,
                        e.system
                    );
                }
            }
        }
        // Every non-frontier point is dominated by someone.
        for i in 0..evals.len() {
            if !frontier.contains(&i) {
                assert!(
                    evals.iter().any(|e| e.dominates(&evals[i])),
                    "{}",
                    evals[i].system
                );
            }
        }
    }

    #[test]
    fn energy_follows_runtime_and_fabric() {
        let evals = evaluate_energy(&ExperimentConfig::scaled(64));
        assert_eq!(evals.len(), 30);
        for e in &evals {
            assert!(e.breakdown.total_uj() > 0.0, "{}/{}", e.system, e.kernel);
        }
        // On any kernel, the ideal system's communication energy is zero
        // and CUDA's is the largest of the PCI systems.
        use hetmem_trace::kernels::Kernel;
        let get = |sys| {
            evals
                .iter()
                .find(|e| e.system == sys && e.kernel == Kernel::Reduction)
                .map(|e| e.breakdown.comm_uj)
                .expect("cell present")
        };
        assert_eq!(get(EvaluatedSystem::IdealHetero), 0.0);
        assert!(get(EvaluatedSystem::CpuGpuCuda) > get(EvaluatedSystem::Lrb));
        assert!(get(EvaluatedSystem::CpuGpuCuda) > get(EvaluatedSystem::Fusion));
    }

    #[test]
    fn cuda_is_pareto_optimal_on_hardware_cost() {
        // The disjoint PCI-E system has the minimum hardware cost, so
        // nothing can dominate it.
        let evals = evaluate_systems(&ExperimentConfig::scaled(128));
        let frontier = pareto_frontier(&evals);
        let cuda_idx = evals
            .iter()
            .position(|e| e.system == EvaluatedSystem::CpuGpuCuda)
            .expect("present");
        assert!(frontier.contains(&cuda_idx));
    }
}
