//! Locality-management schemes (§II-B of the paper).
//!
//! Locality in each PU's private caches and in the shared space can be
//! managed *implicitly* (hardware caching) or *explicitly* (programmer
//! `push`es). The paper enumerates the interesting combinations — including
//! the hybrid second-level cache whose replacement logic carries a locality
//! bit (implemented in `hetmem-sim`'s cache) — and argues that the
//! partially shared address space admits the most combinations.

use hetmem_dsl::AddressSpace;

/// Who manages locality at one level of the hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LocalityControl {
    /// Hardware caching decides placement and eviction.
    Implicit,
    /// The programmer (or compiler) places data with explicit operations.
    Explicit,
}

impl std::fmt::Display for LocalityControl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LocalityControl::Implicit => f.write_str("implicit"),
            LocalityControl::Explicit => f.write_str("explicit"),
        }
    }
}

/// How the shared space's locality is managed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SharedLocality {
    /// Hardware-managed shared cache.
    Implicit,
    /// Programmer-placed shared data (`push` into the shared level).
    Explicit,
    /// Both at once: the locality bit in the replacement logic protects
    /// explicitly placed blocks from implicit traffic (§II-B5).
    Hybrid,
}

impl std::fmt::Display for SharedLocality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SharedLocality::Implicit => f.write_str("implicit"),
            SharedLocality::Explicit => f.write_str("explicit"),
            SharedLocality::Hybrid => f.write_str("hybrid"),
        }
    }
}

/// A complete locality-management scheme: one control per private hierarchy
/// plus the shared space (absent for the disjoint address space, which has
/// only private caches).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LocalityScheme {
    /// CPU private caches.
    pub cpu_private: LocalityControl,
    /// GPU private storage (cache vs scratchpad-style).
    pub gpu_private: LocalityControl,
    /// The shared space, when the address space has one.
    pub shared: Option<SharedLocality>,
}

impl LocalityScheme {
    /// The baseline: hardware manages everything.
    #[must_use]
    pub fn all_implicit() -> LocalityScheme {
        LocalityScheme {
            cpu_private: LocalityControl::Implicit,
            gpu_private: LocalityControl::Implicit,
            shared: Some(SharedLocality::Implicit),
        }
    }

    /// §II-B1 implicit-private-explicit-shared.
    #[must_use]
    pub fn implicit_private_explicit_shared() -> LocalityScheme {
        LocalityScheme {
            cpu_private: LocalityControl::Implicit,
            gpu_private: LocalityControl::Implicit,
            shared: Some(SharedLocality::Explicit),
        }
    }

    /// §II-B2 explicit-private-implicit-shared.
    #[must_use]
    pub fn explicit_private_implicit_shared() -> LocalityScheme {
        LocalityScheme {
            cpu_private: LocalityControl::Explicit,
            gpu_private: LocalityControl::Explicit,
            shared: Some(SharedLocality::Implicit),
        }
    }

    /// §II-B3 implicit-private-explicit-private-explicit-shared: the CPU
    /// caches implicitly, the GPU manages its scratchpad explicitly, and the
    /// shared space is explicit.
    #[must_use]
    pub fn mixed_private_explicit_shared() -> LocalityScheme {
        LocalityScheme {
            cpu_private: LocalityControl::Implicit,
            gpu_private: LocalityControl::Explicit,
            shared: Some(SharedLocality::Explicit),
        }
    }

    /// §II-B4 implicit-private-explicit-private-implicit-shared.
    #[must_use]
    pub fn mixed_private_implicit_shared() -> LocalityScheme {
        LocalityScheme {
            cpu_private: LocalityControl::Implicit,
            gpu_private: LocalityControl::Explicit,
            shared: Some(SharedLocality::Implicit),
        }
    }

    /// §II-B5 hybrid locality in the second-level cache.
    #[must_use]
    pub fn hybrid_shared() -> LocalityScheme {
        LocalityScheme {
            cpu_private: LocalityControl::Implicit,
            gpu_private: LocalityControl::Explicit,
            shared: Some(SharedLocality::Hybrid),
        }
    }

    /// The paper's name for this scheme, in its abbreviation style
    /// (e.g. `impl-pri-expl-pri-expl-shared`).
    #[must_use]
    pub fn paper_name(&self) -> String {
        let pri = |c: LocalityControl| match c {
            LocalityControl::Implicit => "impl",
            LocalityControl::Explicit => "expl",
        };
        let mut s = if self.cpu_private == self.gpu_private {
            format!("{}-pri", pri(self.cpu_private))
        } else {
            format!(
                "{}-pri-{}-pri",
                pri(self.cpu_private),
                pri(self.gpu_private)
            )
        };
        match self.shared {
            None => {}
            Some(SharedLocality::Implicit) => s.push_str("-impl-shared"),
            Some(SharedLocality::Explicit) => s.push_str("-expl-shared"),
            Some(SharedLocality::Hybrid) => s.push_str("-hybrid-shared"),
        }
        s
    }

    /// Whether this scheme is available under `space` (§II-B's per-space
    /// discussion):
    ///
    /// * **Disjoint** spaces have only private caches — no shared component.
    /// * **Unified** spaces cannot practically use explicit shared locality
    ///   (§II-B1: "potentially all the memory space can belong to the shared
    ///   memory space ... this option is not desirable"), and the hybrid
    ///   scheme inherits that restriction.
    /// * **ADSM** keeps the accelerator's memory system simple; the hybrid
    ///   replacement logic in the shared level contradicts that goal, so
    ///   only pure implicit or explicit shared management applies.
    /// * **Partially shared** spaces admit every scheme.
    #[must_use]
    pub fn is_valid_for(&self, space: AddressSpace) -> bool {
        match (space, self.shared) {
            (AddressSpace::Disjoint, shared) => shared.is_none(),
            (_, None) => false,
            (AddressSpace::Unified, Some(s)) => s == SharedLocality::Implicit,
            (AddressSpace::Adsm, Some(s)) => s != SharedLocality::Hybrid,
            (AddressSpace::PartiallyShared, Some(_)) => true,
        }
    }

    /// Every syntactically possible scheme (shared component optional).
    #[must_use]
    pub fn all() -> Vec<LocalityScheme> {
        let controls = [LocalityControl::Implicit, LocalityControl::Explicit];
        let shareds = [
            None,
            Some(SharedLocality::Implicit),
            Some(SharedLocality::Explicit),
            Some(SharedLocality::Hybrid),
        ];
        let mut out = Vec::new();
        for cpu in controls {
            for gpu in controls {
                for shared in shareds {
                    out.push(LocalityScheme {
                        cpu_private: cpu,
                        gpu_private: gpu,
                        shared,
                    });
                }
            }
        }
        out
    }

    /// The schemes available under `space`.
    #[must_use]
    pub fn options_for(space: AddressSpace) -> Vec<LocalityScheme> {
        LocalityScheme::all()
            .into_iter()
            .filter(|s| s.is_valid_for(space))
            .collect()
    }
}

impl std::fmt::Display for LocalityScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.paper_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partially_shared_offers_the_most_options() {
        // Conclusion 3 of the paper.
        let count = |s| LocalityScheme::options_for(s).len();
        let pas = count(AddressSpace::PartiallyShared);
        for other in [
            AddressSpace::Unified,
            AddressSpace::Disjoint,
            AddressSpace::Adsm,
        ] {
            assert!(
                pas > count(other),
                "PAS ({pas}) must beat {other} ({})",
                count(other)
            );
        }
    }

    #[test]
    fn option_counts_per_space() {
        assert_eq!(
            LocalityScheme::options_for(AddressSpace::PartiallyShared).len(),
            12
        );
        assert_eq!(LocalityScheme::options_for(AddressSpace::Adsm).len(), 8);
        assert_eq!(LocalityScheme::options_for(AddressSpace::Unified).len(), 4);
        assert_eq!(LocalityScheme::options_for(AddressSpace::Disjoint).len(), 4);
    }

    #[test]
    fn named_schemes_are_valid_for_pas() {
        for scheme in [
            LocalityScheme::all_implicit(),
            LocalityScheme::implicit_private_explicit_shared(),
            LocalityScheme::explicit_private_implicit_shared(),
            LocalityScheme::mixed_private_explicit_shared(),
            LocalityScheme::mixed_private_implicit_shared(),
            LocalityScheme::hybrid_shared(),
        ] {
            assert!(
                scheme.is_valid_for(AddressSpace::PartiallyShared),
                "{scheme}"
            );
        }
    }

    #[test]
    fn unified_rejects_explicit_shared() {
        assert!(
            !LocalityScheme::implicit_private_explicit_shared().is_valid_for(AddressSpace::Unified)
        );
        assert!(
            LocalityScheme::explicit_private_implicit_shared().is_valid_for(AddressSpace::Unified)
        );
    }

    #[test]
    fn paper_names_render() {
        assert_eq!(
            LocalityScheme::all_implicit().paper_name(),
            "impl-pri-impl-shared"
        );
        assert_eq!(
            LocalityScheme::mixed_private_explicit_shared().paper_name(),
            "impl-pri-expl-pri-expl-shared"
        );
        let disjoint = LocalityScheme {
            cpu_private: LocalityControl::Implicit,
            gpu_private: LocalityControl::Explicit,
            shared: None,
        };
        assert_eq!(disjoint.paper_name(), "impl-pri-expl-pri");
    }

    #[test]
    fn all_enumerates_sixteen() {
        assert_eq!(LocalityScheme::all().len(), 16);
    }
}
