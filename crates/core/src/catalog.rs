//! The survey of existing heterogeneous-computing memory systems —
//! Table I of the paper, as queryable data.

use hetmem_dsl::AddressSpace;

/// Address-space classification used in Table I (the survey includes one
/// homogeneous accelerator, Rigel, whose "unified" space is within a single
/// architecture).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CatalogSpace {
    /// Unified address space.
    Unified,
    /// Disjoint address spaces.
    Disjoint,
    /// Partially shared address space.
    PartiallyShared,
    /// Asymmetric distributed shared memory.
    Adsm,
}

impl CatalogSpace {
    /// The corresponding design-space option, where one exists.
    #[must_use]
    pub fn as_address_space(self) -> AddressSpace {
        match self {
            CatalogSpace::Unified => AddressSpace::Unified,
            CatalogSpace::Disjoint => AddressSpace::Disjoint,
            CatalogSpace::PartiallyShared => AddressSpace::PartiallyShared,
            CatalogSpace::Adsm => AddressSpace::Adsm,
        }
    }
}

impl std::fmt::Display for CatalogSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogSpace::Unified => f.write_str("unified"),
            CatalogSpace::Disjoint => f.write_str("disjoint"),
            CatalogSpace::PartiallyShared => f.write_str("partially shared"),
            CatalogSpace::Adsm => f.write_str("ADSM"),
        }
    }
}

/// Hardware connection between the PUs (Table I "Connection").
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Connection {
    /// PCI-Express link.
    PciE,
    /// Shared memory controller.
    MemoryController,
    /// On-chip interconnection network.
    Interconnection,
    /// Shared cache / front-side bus (Xbox 360).
    CacheFsb,
    /// A system bus (CUBA).
    Bus,
    /// Not fixed by the programming model (CUDA 4.0, OpenCL).
    Unspecified,
}

impl std::fmt::Display for Connection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Connection::PciE => f.write_str("PCI-E"),
            Connection::MemoryController => f.write_str("memory controller"),
            Connection::Interconnection => f.write_str("interconnection"),
            Connection::CacheFsb => f.write_str("cache/FSB"),
            Connection::Bus => f.write_str("bus"),
            Connection::Unspecified => f.write_str("-"),
        }
    }
}

/// Consistency model (Table I "consistency").
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Consistency {
    /// Weak consistency.
    Weak,
    /// Strong (sequential) consistency — notable by its absence from the
    /// survey.
    Strong,
    /// Centralized release consistency (COMIC).
    CentralizedRelease,
    /// Not stated.
    Unspecified,
}

impl std::fmt::Display for Consistency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Consistency::Weak => f.write_str("weak"),
            Consistency::Strong => f.write_str("strong"),
            Consistency::CentralizedRelease => f.write_str("centralized release"),
            Consistency::Unspecified => f.write_str("-"),
        }
    }
}

/// One surveyed system — a row of Table I.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SystemEntry {
    /// System or programming-model name.
    pub name: &'static str,
    /// Address-space organization.
    pub space: CatalogSpace,
    /// PU-to-PU connection.
    pub connection: Connection,
    /// Coherence support, as described in the paper.
    pub coherence: &'static str,
    /// How shared data is used.
    pub shared_data: &'static str,
    /// Consistency model.
    pub consistency: Consistency,
    /// Synchronization mechanism.
    pub synchronization: &'static str,
    /// Locality-management classification.
    pub locality: &'static str,
    /// Whether the entry provides full hardware coherence across PUs.
    pub fully_coherent: bool,
}

/// Table I verbatim (13 rows; Rigel is the homogeneous comparison point).
#[must_use]
pub fn catalog() -> Vec<SystemEntry> {
    let e = |name,
             space,
             connection,
             coherence,
             shared_data,
             consistency,
             synchronization,
             locality,
             fully_coherent| SystemEntry {
        name,
        space,
        connection,
        coherence,
        shared_data,
        consistency,
        synchronization,
        locality,
        fully_coherent,
    };
    vec![
        e(
            "CPU+CUDA*",
            CatalogSpace::Disjoint,
            Connection::PciE,
            "-",
            "NA",
            Consistency::Weak,
            "-",
            "impl-pri-expl-pri",
            false,
        ),
        e(
            "EXOCHI",
            CatalogSpace::Unified,
            Connection::MemoryController,
            "can be coherent",
            "CHI runtime API",
            Consistency::Weak,
            "unknown",
            "impl-pri",
            false,
        ),
        e(
            "CPU+LRB",
            CatalogSpace::PartiallyShared,
            Connection::PciE,
            "coherent only in LRB/CPU",
            "type qualifier, ownership",
            Consistency::Weak,
            "APIs",
            "impl-pri",
            false,
        ),
        e(
            "COMIC",
            CatalogSpace::Unified,
            Connection::Interconnection,
            "directory",
            "COMIC API functions",
            Consistency::CentralizedRelease,
            "barrier function",
            "expl-pri-impl-pri-impl-shared",
            false,
        ),
        e(
            "Rigel",
            CatalogSpace::Unified,
            Connection::Interconnection,
            "HW/SW",
            "global memory operation",
            Consistency::Weak,
            "implicit barrier/Rigel LPI",
            "expl",
            false,
        ),
        e(
            "GMAC",
            CatalogSpace::Adsm,
            Connection::PciE,
            "GMAC protocol",
            "global memory operation",
            Consistency::Weak,
            "sync API",
            "expl-private-impl-shared",
            false,
        ),
        e(
            "Sandy Bridge",
            CatalogSpace::Disjoint,
            Connection::MemoryController,
            "-",
            "-",
            Consistency::Weak,
            "-",
            "impl-priv-exp-priv",
            false,
        ),
        e(
            "Fusion",
            CatalogSpace::Disjoint,
            Connection::MemoryController,
            "-",
            "-",
            Consistency::Unspecified,
            "-",
            "-",
            false,
        ),
        e(
            "IBM Cell",
            CatalogSpace::Disjoint,
            Connection::Interconnection,
            "-",
            "-",
            Consistency::Weak,
            "-",
            "expl-pri-impl-priv-impl-shared",
            false,
        ),
        e(
            "Xbox 360",
            CatalogSpace::Disjoint,
            Connection::CacheFsb,
            "-",
            "Lock-set cache, copy",
            Consistency::Unspecified,
            "-",
            "impl-priv-exp-shared",
            false,
        ),
        e(
            "CUBA",
            CatalogSpace::Disjoint,
            Connection::Bus,
            "-",
            "direct access to local storage",
            Consistency::Weak,
            "-",
            "exp-priv",
            false,
        ),
        e(
            "CUDA 4.0",
            CatalogSpace::Unified,
            Connection::Unspecified,
            "-",
            "explicit copy",
            Consistency::Weak,
            "-",
            "exp-priv",
            false,
        ),
        e(
            "OpenCL",
            CatalogSpace::Unified,
            Connection::Unspecified,
            "-",
            "explicit copy",
            Consistency::Weak,
            "-",
            "exp-priv",
            false,
        ),
    ]
}

/// Entries using a given address-space organization.
#[must_use]
pub fn by_space(space: CatalogSpace) -> Vec<SystemEntry> {
    catalog().into_iter().filter(|e| e.space == space).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_rows_like_table_i() {
        assert_eq!(catalog().len(), 13);
    }

    #[test]
    fn no_unified_fully_coherent_strong_system_exists() {
        // "The summary shows that none of the heterogeneous computing
        // systems has employed a unified, fully-coherent, strong-consistent
        // memory system yet."
        let offending = catalog().into_iter().filter(|e| {
            e.space == CatalogSpace::Unified
                && e.fully_coherent
                && e.consistency == Consistency::Strong
        });
        assert_eq!(offending.count(), 0);
    }

    #[test]
    fn most_systems_are_disjoint() {
        // "Most proposed/existing systems have disjoint memory systems."
        let disjoint = by_space(CatalogSpace::Disjoint).len();
        for s in [
            CatalogSpace::Unified,
            CatalogSpace::PartiallyShared,
            CatalogSpace::Adsm,
        ] {
            assert!(disjoint >= by_space(s).len());
        }
        assert_eq!(disjoint, 6);
    }

    #[test]
    fn known_rows_spot_check() {
        let cat = catalog();
        let gmac = cat.iter().find(|e| e.name == "GMAC").expect("GMAC present");
        assert_eq!(gmac.space, CatalogSpace::Adsm);
        assert_eq!(gmac.connection, Connection::PciE);
        let lrb = cat
            .iter()
            .find(|e| e.name == "CPU+LRB")
            .expect("LRB present");
        assert_eq!(lrb.space, CatalogSpace::PartiallyShared);
        let comic = cat
            .iter()
            .find(|e| e.name == "COMIC")
            .expect("COMIC present");
        assert_eq!(comic.consistency, Consistency::CentralizedRelease);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = catalog().into_iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 13);
    }
}
