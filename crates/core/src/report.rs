//! Text-table rendering for the regenerated tables and figures.

use crate::experiment::{CaseStudyRun, SpaceRun};
use crate::presets::EvaluatedSystem;
use hetmem_dsl::AddressSpace;
use hetmem_trace::kernels::Kernel;
use hetmem_trace::Phase;

/// A simple aligned text table.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> TextTable {
        TextTable {
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Figure 5: normalized execution-time breakdown per kernel × system.
/// Values are fractions of each kernel's slowest system so the stacked-bar
/// shape of the paper's figure is directly readable.
#[must_use]
pub fn render_figure5(runs: &[CaseStudyRun]) -> String {
    let mut table = TextTable::new(&[
        "kernel",
        "system",
        "total(µs)",
        "norm",
        "seq%",
        "par%",
        "comm%",
    ]);
    for kernel in Kernel::ALL {
        let of_kernel: Vec<&CaseStudyRun> = runs.iter().filter(|r| r.kernel == kernel).collect();
        let slowest = of_kernel
            .iter()
            .map(|r| r.report.total_ticks())
            .max()
            .unwrap_or(1)
            .max(1);
        for sys in EvaluatedSystem::ALL {
            if let Some(run) = of_kernel.iter().find(|r| r.system == sys) {
                let rep = &run.report;
                table.row(vec![
                    kernel.name().to_owned(),
                    sys.name().to_owned(),
                    format!("{:.1}", rep.total_ns() / 1000.0),
                    format!("{:.3}", rep.total_ticks() as f64 / slowest as f64),
                    format!("{:.1}", 100.0 * rep.phase_fraction(Phase::Sequential)),
                    format!("{:.1}", 100.0 * rep.phase_fraction(Phase::Parallel)),
                    format!("{:.1}", 100.0 * rep.phase_fraction(Phase::Communication)),
                ]);
            }
        }
    }
    table.render()
}

/// Figure 6: communication overhead only (µs and share of total).
#[must_use]
pub fn render_figure6(runs: &[CaseStudyRun]) -> String {
    let mut table = TextTable::new(&["kernel", "system", "comm(µs)", "comm%"]);
    for kernel in Kernel::ALL {
        for sys in EvaluatedSystem::ALL {
            if let Some(run) = runs.iter().find(|r| r.kernel == kernel && r.system == sys) {
                table.row(vec![
                    kernel.name().to_owned(),
                    sys.name().to_owned(),
                    format!("{:.2}", run.report.communication_ns() / 1000.0),
                    format!(
                        "{:.2}",
                        100.0 * run.report.phase_fraction(Phase::Communication)
                    ),
                ]);
            }
        }
    }
    table.render()
}

/// Figure 7: address-space options under ideal communication, normalized to
/// the unified space per kernel.
#[must_use]
pub fn render_figure7(runs: &[SpaceRun]) -> String {
    let mut table = TextTable::new(&["kernel", "UNI", "PAS", "DIS", "ADSM", "max spread %"]);
    for kernel in Kernel::ALL {
        let get = |space| {
            runs.iter()
                .find(|r| r.kernel == kernel && r.space == space)
                .map(|r| r.report.total_ticks())
        };
        let Some(uni) = get(AddressSpace::Unified) else {
            continue;
        };
        let norm = |space| {
            get(space).map_or_else(
                || "-".to_owned(),
                |t| format!("{:.4}", t as f64 / uni as f64),
            )
        };
        let all: Vec<u64> = AddressSpace::ALL.iter().filter_map(|&s| get(s)).collect();
        let max = *all.iter().max().unwrap_or(&1);
        let min = *all.iter().min().unwrap_or(&1);
        let spread = 100.0 * (max - min) as f64 / max as f64;
        table.row(vec![
            kernel.name().to_owned(),
            norm(AddressSpace::Unified),
            norm(AddressSpace::PartiallyShared),
            norm(AddressSpace::Disjoint),
            norm(AddressSpace::Adsm),
            format!("{spread:.3}"),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{run_address_spaces, run_case_studies, ExperimentConfig};

    #[test]
    fn text_table_aligns() {
        let mut t = TextTable::new(&["a", "long-header"]);
        t.row(vec!["xx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_rejected() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn figure5_normalization_is_bounded_by_one() {
        let cfg = ExperimentConfig::scaled(512);
        let runs = run_case_studies(&cfg);
        let f5 = render_figure5(&runs);
        for line in f5.lines().skip(2) {
            let cols: Vec<&str> = line.split_whitespace().collect();
            // kernel may be two words; "norm" is the 4th column from the end
            // of [total, norm, seq, par, comm].
            let norm: f64 = cols[cols.len() - 4].parse().expect("norm parses");
            assert!(norm > 0.0 && norm <= 1.0, "{line}");
        }
    }

    #[test]
    fn figure_renderers_cover_all_rows() {
        let cfg = ExperimentConfig::scaled(512);
        let runs = run_case_studies(&cfg);
        let f5 = render_figure5(&runs);
        assert_eq!(f5.lines().count(), 2 + 30, "6 kernels × 5 systems");
        let f6 = render_figure6(&runs);
        assert_eq!(f6.lines().count(), 2 + 30);
        let spaces = run_address_spaces(&cfg);
        let f7 = render_figure7(&spaces);
        assert_eq!(f7.lines().count(), 2 + 6);
        assert!(f7.contains("reduction"));
    }
}
