//! Ownership control for the partially shared address space (§II-A3).
//!
//! Even though a subset of the address space is shared, each object in it
//! has exactly one owner PU at a time, so the shared space needs no
//! coherence: a PU must `acquireOwnership` before touching a shared object
//! and `releaseOwnership` before the peer may take it. This module is the
//! runtime checker for that protocol — the dynamic-semantics counterpart of
//! the `releaseOwnership`/`acquireOwnership` lines the DSL lowering inserts
//! (Figure 2b).

use hetmem_trace::{Addr, PuKind};
use std::collections::BTreeMap;

/// A violation of the ownership protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OwnershipError {
    /// A PU tried to acquire an object the peer still owns.
    StillOwnedByPeer {
        /// Object base address.
        addr: Addr,
        /// The current owner.
        owner: PuKind,
    },
    /// A PU released an object it does not own.
    ReleaseWithoutOwnership {
        /// Object base address.
        addr: Addr,
    },
    /// A PU accessed a shared object it does not own.
    AccessWithoutOwnership {
        /// Accessed address.
        addr: Addr,
        /// The PU that accessed it.
        by: PuKind,
    },
    /// Acquire/release of an address that is not a registered shared
    /// object.
    UnknownObject {
        /// The address.
        addr: Addr,
    },
}

impl std::fmt::Display for OwnershipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OwnershipError::StillOwnedByPeer { addr, owner } => {
                write!(f, "object {addr:#x} is still owned by {owner}")
            }
            OwnershipError::ReleaseWithoutOwnership { addr } => {
                write!(f, "release of {addr:#x} by a non-owner")
            }
            OwnershipError::AccessWithoutOwnership { addr, by } => {
                write!(f, "{by} accessed {addr:#x} without ownership")
            }
            OwnershipError::UnknownObject { addr } => {
                write!(f, "{addr:#x} is not a registered shared object")
            }
        }
    }
}

impl std::error::Error for OwnershipError {}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct SharedObject {
    bytes: u64,
    owner: Option<PuKind>,
}

/// Tracks ownership of shared-space objects and checks the protocol.
#[derive(Clone, Debug, Default)]
pub struct OwnershipTracker {
    objects: BTreeMap<Addr, SharedObject>,
    acquires: u64,
    releases: u64,
}

impl OwnershipTracker {
    /// Creates an empty tracker.
    #[must_use]
    pub fn new() -> OwnershipTracker {
        OwnershipTracker::default()
    }

    /// Registers a shared object (a `sharedmalloc`). Initial owner is the
    /// CPU, which allocated and initializes it.
    pub fn register(&mut self, addr: Addr, bytes: u64) {
        self.objects.insert(
            addr,
            SharedObject {
                bytes,
                owner: Some(PuKind::Cpu),
            },
        );
    }

    /// The object covering `addr`, if any.
    fn object_at(&self, addr: Addr) -> Option<(Addr, SharedObject)> {
        self.objects
            .range(..=addr)
            .next_back()
            .filter(|(base, obj)| addr < *base + obj.bytes)
            .map(|(base, obj)| (*base, *obj))
    }

    /// Current owner of the object at `addr`.
    #[must_use]
    pub fn owner_of(&self, addr: Addr) -> Option<PuKind> {
        self.object_at(addr).and_then(|(_, o)| o.owner)
    }

    /// `pu` acquires the object at `addr`.
    ///
    /// # Errors
    ///
    /// Fails if the object is unknown or the peer still owns it (it must be
    /// released first — this is what prevents concurrent updates without
    /// coherence hardware).
    pub fn acquire(&mut self, pu: PuKind, addr: Addr) -> Result<(), OwnershipError> {
        let (base, obj) = self
            .object_at(addr)
            .ok_or(OwnershipError::UnknownObject { addr })?;
        match obj.owner {
            Some(owner) if owner != pu => Err(OwnershipError::StillOwnedByPeer { addr, owner }),
            _ => {
                self.objects.get_mut(&base).expect("present").owner = Some(pu);
                self.acquires += 1;
                Ok(())
            }
        }
    }

    /// `pu` releases the object at `addr`, leaving it ownerless (available
    /// to either PU).
    ///
    /// # Errors
    ///
    /// Fails if the object is unknown or `pu` is not its owner.
    pub fn release(&mut self, pu: PuKind, addr: Addr) -> Result<(), OwnershipError> {
        let (base, obj) = self
            .object_at(addr)
            .ok_or(OwnershipError::UnknownObject { addr })?;
        if obj.owner != Some(pu) {
            return Err(OwnershipError::ReleaseWithoutOwnership { addr });
        }
        self.objects.get_mut(&base).expect("present").owner = None;
        self.releases += 1;
        Ok(())
    }

    /// Checks that `pu` may read or write `addr`. Addresses outside every
    /// registered object are private memory and always allowed.
    ///
    /// # Errors
    ///
    /// Fails if `addr` is in a shared object that `pu` does not own.
    pub fn check_access(&self, pu: PuKind, addr: Addr) -> Result<(), OwnershipError> {
        match self.object_at(addr) {
            None => Ok(()),
            Some((_, obj)) if obj.owner == Some(pu) => Ok(()),
            Some(_) => Err(OwnershipError::AccessWithoutOwnership { addr, by: pu }),
        }
    }

    /// Number of successful acquires and releases (each costs `api-acq`).
    #[must_use]
    pub fn transitions(&self) -> (u64, u64) {
        (self.acquires, self.releases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_2b_protocol_runs_clean() {
        // releaseOwnership(a,b,c); GPU kernel; acquireOwnership(c); CPU use.
        let mut t = OwnershipTracker::new();
        for (addr, bytes) in [
            (0x3000_0000u64, 256),
            (0x3000_0100, 256),
            (0x3000_0200, 256),
        ] {
            t.register(addr, bytes);
        }
        for addr in [0x3000_0000u64, 0x3000_0100, 0x3000_0200] {
            t.release(PuKind::Cpu, addr)
                .expect("CPU owns after allocation");
            t.acquire(PuKind::Gpu, addr).expect("free to acquire");
        }
        assert_eq!(t.check_access(PuKind::Gpu, 0x3000_0080), Ok(()));
        // GPU done: release c, CPU re-acquires it.
        t.release(PuKind::Gpu, 0x3000_0200).expect("GPU owns c");
        t.acquire(PuKind::Cpu, 0x3000_0200).expect("released");
        assert_eq!(t.check_access(PuKind::Cpu, 0x3000_0200), Ok(()));
        assert_eq!(t.transitions(), (4, 4));
    }

    #[test]
    fn concurrent_ownership_is_impossible() {
        let mut t = OwnershipTracker::new();
        t.register(0x1000, 64);
        assert_eq!(
            t.acquire(PuKind::Gpu, 0x1000),
            Err(OwnershipError::StillOwnedByPeer {
                addr: 0x1000,
                owner: PuKind::Cpu
            })
        );
    }

    #[test]
    fn access_without_ownership_is_rejected() {
        let mut t = OwnershipTracker::new();
        t.register(0x1000, 64);
        assert_eq!(
            t.check_access(PuKind::Gpu, 0x1020),
            Err(OwnershipError::AccessWithoutOwnership {
                addr: 0x1020,
                by: PuKind::Gpu
            })
        );
        // Private addresses are unaffected.
        assert_eq!(t.check_access(PuKind::Gpu, 0x9999_0000), Ok(()));
    }

    #[test]
    fn release_requires_ownership() {
        let mut t = OwnershipTracker::new();
        t.register(0x1000, 64);
        assert_eq!(
            t.release(PuKind::Gpu, 0x1000),
            Err(OwnershipError::ReleaseWithoutOwnership { addr: 0x1000 })
        );
    }

    #[test]
    fn interior_addresses_resolve_to_their_object() {
        let mut t = OwnershipTracker::new();
        t.register(0x1000, 128);
        t.register(0x2000, 64);
        assert_eq!(t.owner_of(0x107F), Some(PuKind::Cpu));
        assert_eq!(t.owner_of(0x1080), None); // past the first object
        assert_eq!(t.owner_of(0x2010), Some(PuKind::Cpu));
    }

    #[test]
    fn unknown_objects_are_errors() {
        let mut t = OwnershipTracker::new();
        assert_eq!(
            t.acquire(PuKind::Cpu, 0x42),
            Err(OwnershipError::UnknownObject { addr: 0x42 })
        );
        assert_eq!(
            t.release(PuKind::Cpu, 0x42),
            Err(OwnershipError::UnknownObject { addr: 0x42 })
        );
    }
}
