//! # hetmem-core
//!
//! The paper's primary contribution rebuilt as a library: design-space
//! exploration of memory models for heterogeneous (CPU+GPU) computing.
//!
//! * [`AddressSpaceModel`] — semantics of the four address-space options
//!   (unified / disjoint / partially shared / ADSM, §II-A).
//! * [`OwnershipTracker`] — the partially shared space's ownership protocol
//!   checker (§II-A3).
//! * [`LocalityScheme`] — the locality-management taxonomy (§II-B),
//!   including the hybrid second-level-cache scheme.
//! * [`catalog`] — the Table I survey of thirteen existing systems.
//! * [`EvaluatedSystem`] — the five case-study systems of Figures 5–6 with
//!   their communication models (synchronous PCI-E, LRB aperture +
//!   ownership + page faults, GMAC asynchronous copies, Fusion memory
//!   controller, ideal).
//! * [`DesignPoint`] — enumeration of the full design space with validity
//!   constraints.
//! * [`experiment`] — runners that regenerate the paper's figures on the
//!   `hetmem-sim` substrate.
//!
//! ## Example
//!
//! ```
//! use hetmem_core::experiment::{run_case_study, ExperimentConfig};
//! use hetmem_core::EvaluatedSystem;
//! use hetmem_trace::kernels::Kernel;
//!
//! let cfg = ExperimentConfig::scaled(256); // small input for the example
//! let run = run_case_study(EvaluatedSystem::Fusion, Kernel::Reduction, &cfg);
//! assert!(run.report.total_ticks() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod address_space;
mod catalog;
pub mod consistency;
mod design_space;
pub mod experiment;
pub mod hash;
mod locality;
pub mod locality_study;
pub mod metrics;
mod ownership;
mod presets;
pub mod report;

pub use address_space::{AddressSpaceModel, Addressability, IdealSpaceComm};
pub use catalog::{by_space, catalog, CatalogSpace, Connection, Consistency, SystemEntry};
pub use consistency::{allows, enumerate_outcomes, ConsistencyModel, Op, Outcome};
pub use design_space::{CoherenceOption, DesignPoint};
pub use hash::fnv1a;
pub use hetmem_dsl::AddressSpace;
pub use locality::{LocalityControl, LocalityScheme, SharedLocality};
pub use locality_study::{run_locality_study, LocalityStudyRow, SharedLocalityVariant};
pub use metrics::{
    evaluate_energy, evaluate_systems, hardware_cost, pareto_frontier, programmer_burden,
    EnergyEval, Evaluation,
};
pub use ownership::{OwnershipError, OwnershipTracker};
pub use presets::{EvaluatedSystem, GmacModel, LrbModel, PresetCommModel};
