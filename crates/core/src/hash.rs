//! The workspace's one hashing primitive: FNV-1a, 64-bit.
//!
//! Every layer that needs a stable digest uses this function — the
//! xplore result cache addresses entries by `fnv1a(content_key)`, the
//! serve pool picks a job's shard as `fnv1a(key) % workers`, and the
//! cluster ring places virtual nodes at `fnv1a("addr#i")`. Keeping one
//! implementation here (the lowest crate in the workspace) means the
//! on-disk cache, the shard map, and the ring can never drift apart.
//!
//! FNV-1a is stable across platforms and builds, cheap on short keys,
//! and collision-resistant far beyond the few thousand keys a sweep (or
//! a cluster) produces. It is **not** cryptographic and must never gate
//! trust decisions.

/// FNV-1a, 64-bit, over `bytes`.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pinned digests: the on-disk cache file names and the cluster
    /// ring positions are derived from these values, so they may never
    /// change across releases.
    #[test]
    fn digests_are_pinned() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
        // Distinct inputs produce distinct digests on realistic keys.
        assert_ne!(fnv1a(b"hetmem"), fnv1a(b"hetmem "));
        assert_ne!(fnv1a(b"127.0.0.1:9301#0"), fnv1a(b"127.0.0.1:9301#1"));
    }
}
