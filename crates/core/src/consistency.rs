//! Executable memory-consistency semantics for the two-PU system.
//!
//! Every system the paper surveys is *weakly consistent* (Table I's
//! consistency column), and the ideal design point is "fully coherent and
//! strongly consistent". This module makes those notions executable: a
//! small litmus-test engine enumerates every outcome a two-PU program can
//! produce under
//!
//! * [`ConsistencyModel::SequentialConsistency`] — operations of both PUs
//!   interleave, each read sees the latest write; and
//! * [`ConsistencyModel::Weak`] — each PU's writes sit in a store buffer
//!   and drain at arbitrary times **in arbitrary order across locations**
//!   (same-location order is preserved — per-location coherence); reads
//!   forward from the own buffer and [`Op::Fence`] drains it. This is the
//!   weakly-ordered model of the surveyed systems, where even same-thread
//!   writes to different locations may become visible out of order.
//!
//! The ownership operations of the partially shared space map onto this:
//! `releaseOwnership` is a fence followed by making the object available;
//! `acquireOwnership` blocks until available. The tests demonstrate the
//! paper's §II-A3 claim operationally: the shared window needs **no
//! coherence or strong consistency** because properly-ownership-annotated
//! programs produce exactly their sequentially-consistent outcomes even
//! under the weak model.

use std::collections::BTreeSet;

/// A shared-memory location in a litmus test (small namespace).
pub type Loc = u8;

/// One operation of a litmus-test thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Op {
    /// Write `value` to `loc`.
    Write {
        /// Location written.
        loc: Loc,
        /// Value written.
        value: u8,
    },
    /// Read `loc` into the thread's observation log.
    Read {
        /// Location read.
        loc: Loc,
    },
    /// Drain the store buffer (memory fence).
    Fence,
    /// Release ownership of `loc` (fence + publish availability).
    Release {
        /// Object released.
        loc: Loc,
    },
    /// Acquire ownership of `loc` (blocks until released by the peer or
    /// never held).
    Acquire {
        /// Object acquired.
        loc: Loc,
    },
}

/// Which memory-consistency model to enumerate under.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ConsistencyModel {
    /// Strong: one global interleaving, writes visible immediately.
    SequentialConsistency,
    /// Weak: per-PU store buffers draining in arbitrary cross-location order.
    Weak,
}

/// An outcome: the values observed by each thread's reads, in program
/// order. `outcome.0[t]` is thread `t`'s observation list.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Outcome(pub [Vec<u8>; 2]);

const NUM_LOCS: usize = 4;

#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct State {
    /// Next op index per thread.
    pc: [usize; 2],
    /// Global memory.
    mem: [u8; NUM_LOCS],
    /// Store buffers (weak model only); same-location order is preserved.
    buffers: [Vec<(Loc, u8)>; 2],
    /// Ownership: which thread currently holds each loc (2 = free).
    owner: [u8; NUM_LOCS],
    /// Observed reads per thread.
    observed: [Vec<u8>; 2],
}

/// Enumerates every outcome of the two-thread program under `model`.
///
/// # Panics
///
/// Panics if any operation names a location `>= 4` (the engine's small,
/// exhaustively-enumerable namespace).
#[must_use]
pub fn enumerate_outcomes(threads: &[Vec<Op>; 2], model: ConsistencyModel) -> BTreeSet<Outcome> {
    for t in threads {
        for op in t {
            let loc = match op {
                Op::Write { loc, .. }
                | Op::Read { loc }
                | Op::Release { loc }
                | Op::Acquire { loc } => Some(*loc),
                Op::Fence => None,
            };
            if let Some(l) = loc {
                assert!((l as usize) < NUM_LOCS, "locations must be < {NUM_LOCS}");
            }
        }
    }
    let init = State {
        pc: [0, 0],
        mem: [0; NUM_LOCS],
        buffers: [Vec::new(), Vec::new()],
        // Every object starts owned by thread 0 (the host allocates it),
        // matching the ownership tracker's convention.
        owner: [0; NUM_LOCS],
        observed: [Vec::new(), Vec::new()],
    };
    let mut outcomes = BTreeSet::new();
    let mut visited = BTreeSet::new();
    explore(threads, model, init, &mut outcomes, &mut visited);
    outcomes
}

/// Drains the buffered write at `idx` (caller guarantees no older write to
/// the same location sits before it — per-location coherence).
fn drain_at(state: &mut State, t: usize, idx: usize) {
    let (loc, value) = state.buffers[t].remove(idx);
    state.mem[loc as usize] = value;
}

/// Indices of buffer entries that may drain next: the oldest write to each
/// location.
fn drainable(buffer: &[(Loc, u8)]) -> Vec<usize> {
    (0..buffer.len())
        .filter(|&i| buffer[..i].iter().all(|(l, _)| *l != buffer[i].0))
        .collect()
}

fn explore(
    threads: &[Vec<Op>; 2],
    model: ConsistencyModel,
    state: State,
    outcomes: &mut BTreeSet<Outcome>,
    visited: &mut BTreeSet<State>,
) {
    if !visited.insert(state.clone()) {
        return;
    }
    let done = state.pc[0] == threads[0].len() && state.pc[1] == threads[1].len();
    if done && state.buffers.iter().all(Vec::is_empty) {
        outcomes.insert(Outcome(state.observed.clone()));
        return;
    }

    // Non-deterministic buffer drains (weak model): any location's oldest
    // pending write may become visible next.
    if model == ConsistencyModel::Weak {
        for t in 0..2 {
            for idx in drainable(&state.buffers[t]) {
                let mut next = state.clone();
                drain_at(&mut next, t, idx);
                explore(threads, model, next, outcomes, visited);
            }
        }
    }

    // Thread steps.
    for t in 0..2 {
        let Some(op) = threads[t].get(state.pc[t]).copied() else {
            continue;
        };
        let mut next = state.clone();
        next.pc[t] += 1;
        match op {
            Op::Write { loc, value } => match model {
                ConsistencyModel::SequentialConsistency => {
                    next.mem[loc as usize] = value;
                }
                ConsistencyModel::Weak => {
                    next.buffers[t].push((loc, value));
                }
            },
            Op::Read { loc } => {
                // Store-to-load forwarding from the own buffer.
                let from_buffer = next.buffers[t]
                    .iter()
                    .rev()
                    .find(|(l, _)| *l == loc)
                    .map(|(_, v)| *v);
                let value = from_buffer.unwrap_or(next.mem[loc as usize]);
                next.observed[t].push(value);
            }
            Op::Fence => {
                while !next.buffers[t].is_empty() {
                    drain_at(&mut next, t, 0);
                }
            }
            Op::Release { loc } => {
                // Only the owner may release; a non-owner release is a
                // protocol violation and that execution path is dropped
                // (the OwnershipTracker reports it as an error at runtime).
                if next.owner[loc as usize] != t as u8 {
                    continue;
                }
                // Release implies a full fence: the object's data is
                // globally visible before it becomes available.
                while !next.buffers[t].is_empty() {
                    drain_at(&mut next, t, 0);
                }
                next.owner[loc as usize] = 2;
            }
            Op::Acquire { loc } => {
                // Blocks until free (or already ours).
                match next.owner[loc as usize] {
                    o if o == t as u8 => {}
                    2 => next.owner[loc as usize] = t as u8,
                    _ => continue, // not yet available: this step can't fire
                }
            }
        }
        explore(threads, model, next, outcomes, visited);
    }
}

/// Convenience: whether `outcome` is producible by the program under
/// `model`.
#[must_use]
pub fn allows(threads: &[Vec<Op>; 2], model: ConsistencyModel, outcome: &Outcome) -> bool {
    enumerate_outcomes(threads, model).contains(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    const X: Loc = 0;
    const Y: Loc = 1;

    fn w(loc: Loc, value: u8) -> Op {
        Op::Write { loc, value }
    }
    fn r(loc: Loc) -> Op {
        Op::Read { loc }
    }

    /// The classic store-buffering litmus (SB):
    /// T0: x=1; read y.   T1: y=1; read x.
    fn sb() -> [Vec<Op>; 2] {
        [vec![w(X, 1), r(Y)], vec![w(Y, 1), r(X)]]
    }

    #[test]
    fn sc_forbids_store_buffering_relaxation() {
        let zz = Outcome([vec![0], vec![0]]);
        assert!(!allows(&sb(), ConsistencyModel::SequentialConsistency, &zz));
    }

    #[test]
    fn weak_allows_store_buffering_relaxation() {
        let zz = Outcome([vec![0], vec![0]]);
        assert!(allows(&sb(), ConsistencyModel::Weak, &zz));
    }

    #[test]
    fn weak_is_a_superset_of_sc() {
        for prog in [sb(), [vec![w(X, 1), w(Y, 1)], vec![r(Y), r(X)]]] {
            let sc = enumerate_outcomes(&prog, ConsistencyModel::SequentialConsistency);
            let weak = enumerate_outcomes(&prog, ConsistencyModel::Weak);
            assert!(sc.is_subset(&weak), "every SC outcome is weak-reachable");
        }
    }

    #[test]
    fn fences_restore_sc_for_store_buffering() {
        let fenced: [Vec<Op>; 2] = [
            vec![w(X, 1), Op::Fence, r(Y)],
            vec![w(Y, 1), Op::Fence, r(X)],
        ];
        let sc = enumerate_outcomes(&fenced, ConsistencyModel::SequentialConsistency);
        let weak = enumerate_outcomes(&fenced, ConsistencyModel::Weak);
        assert_eq!(sc, weak);
    }

    #[test]
    fn message_passing_breaks_under_weak_without_ownership() {
        // T0 writes data x then flag y; T1 reads flag then data. Weak order
        // lets T1 see flag=1 but stale data=0.
        let mp: [Vec<Op>; 2] = [vec![w(X, 42), w(Y, 1)], vec![r(Y), r(X)]];
        let stale = Outcome([vec![], vec![1, 0]]);
        assert!(!allows(
            &mp,
            ConsistencyModel::SequentialConsistency,
            &stale
        ));
        assert!(allows(&mp, ConsistencyModel::Weak, &stale));
    }

    #[test]
    fn ownership_protocol_restores_sc_for_message_passing() {
        // The Figure 2b idiom: the producer writes the shared object and
        // releases it; the consumer acquires before reading. This is the
        // paper's §II-A3 claim — the partially shared window needs no
        // coherence because ownership transfer orders everything.
        let mp_owned: [Vec<Op>; 2] = [
            vec![w(X, 42), Op::Release { loc: X }],
            vec![Op::Acquire { loc: X }, r(X)],
        ];
        let sc = enumerate_outcomes(&mp_owned, ConsistencyModel::SequentialConsistency);
        let weak = enumerate_outcomes(&mp_owned, ConsistencyModel::Weak);
        assert_eq!(sc, weak, "ownership-annotated program is SC under weak");
        // And the only outcome is the fresh value.
        assert_eq!(weak, BTreeSet::from([Outcome([vec![], vec![42]])]));
    }

    #[test]
    fn acquire_blocks_until_release() {
        // Without the release, the consumer can never acquire (thread 0
        // owns everything initially), so its read never executes — the
        // enumeration has no terminal state with the read performed.
        let no_release: [Vec<Op>; 2] = [vec![w(X, 42)], vec![Op::Acquire { loc: X }, r(X)]];
        for model in [
            ConsistencyModel::SequentialConsistency,
            ConsistencyModel::Weak,
        ] {
            let outcomes = enumerate_outcomes(&no_release, model);
            assert!(
                outcomes.iter().all(|o| o.0[1].is_empty()),
                "{model:?}: consumer must stay blocked, got {outcomes:?}"
            );
        }
    }

    #[test]
    fn store_forwarding_sees_own_writes_early() {
        // A thread always reads its own buffered write (no stale self-read).
        let prog: [Vec<Op>; 2] = [vec![w(X, 7), r(X)], vec![]];
        let weak = enumerate_outcomes(&prog, ConsistencyModel::Weak);
        assert!(weak.iter().all(|o| o.0[0] == vec![7]), "{weak:?}");
    }

    #[test]
    #[should_panic(expected = "locations must be")]
    fn out_of_range_location_panics() {
        let bad: [Vec<Op>; 2] = [vec![r(9)], vec![]];
        let _ = enumerate_outcomes(&bad, ConsistencyModel::Weak);
    }
}
