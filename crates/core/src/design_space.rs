//! Enumeration of the full memory-model design space: address space ×
//! communication fabric × locality scheme × coherence option, with the
//! validity constraints the paper discusses.

use crate::locality::LocalityScheme;
use hetmem_dsl::AddressSpace;
use hetmem_sim::FabricKind;

/// Who keeps shared data coherent.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CoherenceOption {
    /// No coherence between PUs (software copies everything).
    None,
    /// Hardware coherence across both PUs' caches.
    Hardware,
    /// A software/runtime protocol (GMAC-style).
    Software,
    /// Ownership transfer makes coherence unnecessary (LRB-style).
    Ownership,
}

impl CoherenceOption {
    /// All options.
    pub const ALL: [CoherenceOption; 4] = [
        CoherenceOption::None,
        CoherenceOption::Hardware,
        CoherenceOption::Software,
        CoherenceOption::Ownership,
    ];
}

impl std::fmt::Display for CoherenceOption {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoherenceOption::None => f.write_str("none"),
            CoherenceOption::Hardware => f.write_str("hardware"),
            CoherenceOption::Software => f.write_str("software"),
            CoherenceOption::Ownership => f.write_str("ownership"),
        }
    }
}

/// One point in the design space.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DesignPoint {
    /// Address-space organization.
    pub address_space: AddressSpace,
    /// Hardware communication mechanism.
    pub fabric: FabricKind,
    /// Locality-management scheme.
    pub locality: LocalityScheme,
    /// Coherence responsibility.
    pub coherence: CoherenceOption,
}

impl DesignPoint {
    /// Whether this combination is self-consistent:
    ///
    /// * the locality scheme must be available under the address space
    ///   (§II-B);
    /// * the PCI aperture exists to implement a (partially) shared window —
    ///   it is meaningless for fully disjoint spaces;
    /// * ownership-based coherence requires a shared window to own
    ///   (partially shared or ADSM);
    /// * disjoint spaces have nothing to keep coherent;
    /// * a unified space must keep shared data coherent somehow (hardware
    ///   or software), or gate it by ownership — `None` would break the
    ///   single-space illusion;
    /// * the ideal fabric is an analysis device, valid anywhere.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        if !self.locality.is_valid_for(self.address_space) {
            return false;
        }
        if self.fabric == FabricKind::PciAperture && self.address_space == AddressSpace::Disjoint {
            return false;
        }
        match self.address_space {
            AddressSpace::Disjoint => self.coherence == CoherenceOption::None,
            AddressSpace::Unified => self.coherence != CoherenceOption::None,
            AddressSpace::PartiallyShared => true,
            AddressSpace::Adsm => {
                // ADSM's definition: one side (the CPU/runtime) maintains
                // coherent state — software or ownership, not symmetric
                // hardware coherence, and not nothing.
                matches!(
                    self.coherence,
                    CoherenceOption::Software | CoherenceOption::Ownership
                )
            }
        }
    }

    /// Every valid design point.
    #[must_use]
    pub fn enumerate() -> Vec<DesignPoint> {
        let mut out = Vec::new();
        for address_space in AddressSpace::ALL {
            for fabric in FabricKind::ALL {
                for locality in LocalityScheme::all() {
                    for coherence in CoherenceOption::ALL {
                        let p = DesignPoint {
                            address_space,
                            fabric,
                            locality,
                            coherence,
                        };
                        if p.is_valid() {
                            out.push(p);
                        }
                    }
                }
            }
        }
        out
    }

    /// Valid design points per address space — the quantitative form of the
    /// paper's conclusion that the partially shared space offers the most
    /// design options.
    #[must_use]
    pub fn options_per_space() -> Vec<(AddressSpace, usize)> {
        AddressSpace::ALL
            .iter()
            .map(|&s| {
                let n = DesignPoint::enumerate()
                    .into_iter()
                    .filter(|p| p.address_space == s)
                    .count();
                (s, n)
            })
            .collect()
    }
}

impl std::fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} / {} / {} / {} coherence",
            self.address_space, self.fabric, self.locality, self.coherence
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_is_nonempty_and_all_valid() {
        let points = DesignPoint::enumerate();
        assert!(points.len() > 50, "got {}", points.len());
        assert!(points.iter().all(DesignPoint::is_valid));
    }

    #[test]
    fn partially_shared_has_the_most_design_options() {
        let counts = DesignPoint::options_per_space();
        let pas = counts
            .iter()
            .find(|(s, _)| *s == AddressSpace::PartiallyShared)
            .map(|(_, n)| *n)
            .expect("PAS counted");
        for (space, n) in counts {
            if space != AddressSpace::PartiallyShared {
                assert!(pas > n, "PAS ({pas}) must beat {space} ({n})");
            }
        }
    }

    #[test]
    fn aperture_requires_a_shared_window() {
        let p = DesignPoint {
            address_space: AddressSpace::Disjoint,
            fabric: FabricKind::PciAperture,
            locality: LocalityScheme {
                cpu_private: crate::locality::LocalityControl::Implicit,
                gpu_private: crate::locality::LocalityControl::Implicit,
                shared: None,
            },
            coherence: CoherenceOption::None,
        };
        assert!(!p.is_valid());
    }

    #[test]
    fn disjoint_has_no_coherence() {
        for p in DesignPoint::enumerate() {
            if p.address_space == AddressSpace::Disjoint {
                assert_eq!(p.coherence, CoherenceOption::None);
            }
        }
    }

    #[test]
    fn unified_requires_some_coherence_mechanism() {
        for p in DesignPoint::enumerate() {
            if p.address_space == AddressSpace::Unified {
                assert_ne!(p.coherence, CoherenceOption::None);
            }
        }
    }

    #[test]
    fn evaluated_presets_are_valid_points() {
        use crate::presets::EvaluatedSystem;
        for sys in EvaluatedSystem::ALL {
            let coherence = match sys {
                EvaluatedSystem::CpuGpuCuda | EvaluatedSystem::Fusion => CoherenceOption::None,
                EvaluatedSystem::Lrb => CoherenceOption::Ownership,
                EvaluatedSystem::Gmac => CoherenceOption::Software,
                EvaluatedSystem::IdealHetero => CoherenceOption::Hardware,
            };
            let locality = if sys.address_space() == AddressSpace::Disjoint {
                LocalityScheme {
                    cpu_private: crate::locality::LocalityControl::Implicit,
                    gpu_private: crate::locality::LocalityControl::Explicit,
                    shared: None,
                }
            } else {
                LocalityScheme::all_implicit()
            };
            let p = DesignPoint {
                address_space: sys.address_space(),
                fabric: sys.fabric(),
                locality,
                coherence,
            };
            assert!(p.is_valid(), "{sys}: {p}");
        }
    }
}
