//! A quantitative locality-management study — evaluating what the paper
//! could not (§V-D: "Although we discuss the locality management options,
//! we could not evaluate the performance differences").
//!
//! The workload is the pattern the hybrid scheme of §II-B5 was designed
//! for: both PUs repeatedly consult a *critical shared table* (e.g. lookup
//! tables, constants, exchanged halos) while simultaneously streaming
//! through large private buffers. Under implicit management the streaming
//! traffic continually evicts the table from the shared LLC; under explicit
//! management a `push` pins the table with the locality bit, which the
//! replacement logic honours; the ablation runs the same pushes with the
//! bit ignored (plain LRU).

use crate::experiment::ExperimentConfig;
use hetmem_sim::{CommCosts, FabricKind, Simulation, SynchronousFabric};
use hetmem_trace::kernels::layout;
use hetmem_trace::{
    CacheLevel, Inst, Phase, PhaseSegment, PhasedTrace, PuKind, SpecialOp, TraceStream,
};

/// The locality-management variants compared.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SharedLocalityVariant {
    /// Hardware caching only; no pushes (implicit-shared).
    Implicit,
    /// Explicit `push` of the shared table, locality bit honoured
    /// (the hybrid scheme of §II-B5).
    ExplicitHybrid,
    /// The same pushes, but the replacement logic ignores the locality bit
    /// (hardware ablation: plain LRU).
    ExplicitIgnored,
}

impl SharedLocalityVariant {
    /// All variants, in presentation order.
    pub const ALL: [SharedLocalityVariant; 3] = [
        SharedLocalityVariant::Implicit,
        SharedLocalityVariant::ExplicitHybrid,
        SharedLocalityVariant::ExplicitIgnored,
    ];

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SharedLocalityVariant::Implicit => "implicit-shared",
            SharedLocalityVariant::ExplicitHybrid => "explicit-shared (hybrid bit)",
            SharedLocalityVariant::ExplicitIgnored => "explicit-shared (bit ignored)",
        }
    }
}

impl std::fmt::Display for SharedLocalityVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One measured variant.
#[derive(Clone, Debug, PartialEq)]
pub struct LocalityStudyRow {
    /// The variant measured.
    pub variant: SharedLocalityVariant,
    /// Total execution ticks.
    pub total_ticks: u64,
    /// Shared-LLC miss rate over the whole run.
    pub llc_miss_rate: f64,
}

/// Size of the critical shared table (fits comfortably in the LLC).
const TABLE_BYTES: u64 = 512 * 1024;
/// Size of each PU's private streaming buffer (large enough to flood the
/// 8 MB LLC from both sides).
const STREAM_BYTES: u64 = 12 * 1024 * 1024;

/// Builds the reuse-under-streaming workload. Each PU's parallel stream
/// interleaves: one read from the shared table (irregular, whole-table
/// reuse) with three streaming reads marching through private memory.
fn build_trace(explicit_push: bool, scale: u32) -> PhasedTrace {
    let iterations = (STREAM_BYTES / 64 / u64::from(scale)).max(1024);
    let mut trace = PhasedTrace::new("locality-study");

    if explicit_push {
        // Host-side setup: push the table into the shared LLC.
        let mut setup = TraceStream::new();
        setup.push(Inst::Special(SpecialOp::Push {
            level: CacheLevel::SharedLlc,
            addr: layout::SHARED_BASE,
            bytes: TABLE_BYTES,
        }));
        trace.push_segment(PhaseSegment::new(
            Phase::Sequential,
            setup,
            TraceStream::new(),
        ));
    }

    let make_stream = |pu: PuKind| -> TraceStream {
        let (private_base, access): (u64, u8) = match pu {
            PuKind::Cpu => (layout::CPU_BASE, 8),
            PuKind::Gpu => (layout::GPU_BASE, 32),
        };
        let mut s = TraceStream::with_capacity(iterations as usize * 6);
        // Deterministic table-walk: a coprime stride covers the whole table.
        let table_slots = TABLE_BYTES / 64;
        let mut slot: u64 = if pu == PuKind::Cpu {
            0
        } else {
            table_slots / 2
        };
        for i in 0..iterations {
            slot = (slot + 97) % table_slots;
            s.push(Inst::Load {
                addr: layout::SHARED_BASE + slot * 64,
                bytes: access,
            });
            s.push(Inst::IntAlu);
            for k in 0..3u64 {
                let addr = private_base + ((i * 3 + k) * 64) % STREAM_BYTES;
                s.push(Inst::Load {
                    addr,
                    bytes: access,
                });
            }
            s.push(Inst::Branch {
                taken: i + 1 != iterations,
            });
        }
        s
    };

    trace.push_segment(PhaseSegment::new(
        Phase::Parallel,
        make_stream(PuKind::Cpu),
        make_stream(PuKind::Gpu),
    ));
    trace
}

/// Runs the three-variant study.
#[must_use]
pub fn run_locality_study(config: &ExperimentConfig) -> Vec<LocalityStudyRow> {
    SharedLocalityVariant::ALL
        .iter()
        .map(|&variant| {
            let (push, honor) = match variant {
                SharedLocalityVariant::Implicit => (false, true),
                SharedLocalityVariant::ExplicitHybrid => (true, true),
                SharedLocalityVariant::ExplicitIgnored => (true, false),
            };
            let trace = build_trace(push, config.scale);
            let report = Simulation::builder()
                .config(config.system)
                .costs(config.costs)
                .comm_model(SynchronousFabric::new(
                    FabricKind::Ideal,
                    CommCosts::paper(),
                ))
                .llc_locality(honor)
                .build()
                .expect("experiment system configuration is valid")
                .run(&trace)
                .expect("study traces are well-formed");
            LocalityStudyRow {
                variant,
                total_ticks: report.total_ticks(),
                llc_miss_rate: report.hierarchy.llc.miss_rate(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> Vec<LocalityStudyRow> {
        run_locality_study(&ExperimentConfig::scaled(8))
    }

    #[test]
    fn hybrid_push_beats_implicit_management() {
        let rows = study();
        let get = |v| {
            rows.iter()
                .find(|r| r.variant == v)
                .expect("variant present")
                .clone()
        };
        let implicit = get(SharedLocalityVariant::Implicit);
        let hybrid = get(SharedLocalityVariant::ExplicitHybrid);
        assert!(
            hybrid.total_ticks < implicit.total_ticks,
            "hybrid {} vs implicit {}",
            hybrid.total_ticks,
            implicit.total_ticks
        );
        assert!(hybrid.llc_miss_rate < implicit.llc_miss_rate);
    }

    #[test]
    fn ignoring_the_locality_bit_squanders_the_push() {
        let rows = study();
        let get = |v| {
            rows.iter()
                .find(|r| r.variant == v)
                .expect("variant present")
                .clone()
        };
        let hybrid = get(SharedLocalityVariant::ExplicitHybrid);
        let ignored = get(SharedLocalityVariant::ExplicitIgnored);
        assert!(
            hybrid.total_ticks < ignored.total_ticks,
            "hybrid {} vs ignored {}",
            hybrid.total_ticks,
            ignored.total_ticks
        );
    }

    #[test]
    fn study_is_deterministic() {
        assert_eq!(study(), study());
    }
}
