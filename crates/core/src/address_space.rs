//! Semantic models of the four address-space design options (§II-A),
//! including the idealized communication model used for the memory-space
//! isolation experiment (Figure 7).

use hetmem_dsl::AddressSpace;
use hetmem_sim::{CommAction, CommCostClass, CommCosts, CommModel};
use hetmem_trace::{CommEvent, MemSpace, PuKind};

/// What a PU may do with an address in a given logical space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Addressability {
    /// The PU can load/store the address directly.
    Direct,
    /// The PU can reach the data only after an explicit transfer into its
    /// own space.
    ExplicitTransfer,
    /// The PU can touch the address only while holding ownership of the
    /// containing object.
    OwnershipGated,
}

/// The semantic model of one address-space option.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AddressSpaceModel {
    /// The option being modelled.
    pub kind: AddressSpace,
}

impl AddressSpaceModel {
    /// Creates the model for `kind`.
    #[must_use]
    pub fn new(kind: AddressSpace) -> AddressSpaceModel {
        AddressSpaceModel { kind }
    }

    /// How `pu` may address data living in `space`.
    #[must_use]
    pub fn addressability(&self, pu: PuKind, space: MemSpace) -> Addressability {
        use Addressability::{Direct, ExplicitTransfer, OwnershipGated};
        match (self.kind, pu, space) {
            // Every PU addresses its own private space directly.
            (_, PuKind::Cpu, MemSpace::CpuPrivate) | (_, PuKind::Gpu, MemSpace::GpuPrivate) => {
                Direct
            }
            // Unified: everything is one space.
            (AddressSpace::Unified, _, _) => Direct,
            // Disjoint: the peer's space is reachable only by transfer, and
            // there is no shared space (treat it as peer memory).
            (AddressSpace::Disjoint, _, _) => ExplicitTransfer,
            // Partially shared: the window is ownership-gated for both PUs;
            // the peer's private space still needs explicit transfers.
            (AddressSpace::PartiallyShared, _, MemSpace::Shared) => OwnershipGated,
            (AddressSpace::PartiallyShared, _, _) => ExplicitTransfer,
            // ADSM: the CPU addresses the whole space including the shared
            // region; the GPU sees only its own space plus the shared
            // region mapped into it.
            (AddressSpace::Adsm, PuKind::Cpu, _) => Direct,
            (AddressSpace::Adsm, PuKind::Gpu, MemSpace::Shared) => Direct,
            (AddressSpace::Adsm, PuKind::Gpu, MemSpace::CpuPrivate) => ExplicitTransfer,
        }
    }

    /// Whether the option requires page-table mappings for the shared data
    /// on both PUs (§II-A3's implementation cost discussion).
    #[must_use]
    pub fn duplicated_page_tables(&self) -> bool {
        matches!(
            self.kind,
            AddressSpace::Unified | AddressSpace::PartiallyShared
        )
    }

    /// Whether only one PU needs to maintain coherent data states (ADSM's
    /// headline simplification).
    #[must_use]
    pub fn single_sided_coherence(&self) -> bool {
        self.kind == AddressSpace::Adsm
    }
}

/// The Figure 7 communication model: an idealized fabric (all systems share
/// the cache, transfers are free) so that only the *instruction* overhead
/// each address space adds remains — the point of the experiment being that
/// this overhead is negligible and the address-space choice by itself does
/// not affect performance.
#[derive(Clone, Copy, Debug)]
pub struct IdealSpaceComm {
    kind: AddressSpace,
    costs: CommCosts,
}

impl IdealSpaceComm {
    /// Creates the model for `kind` with Table IV instruction costs.
    #[must_use]
    pub fn new(kind: AddressSpace, costs: CommCosts) -> IdealSpaceComm {
        IdealSpaceComm { kind, costs }
    }

    /// The per-event instruction overhead in CPU cycles.
    #[must_use]
    pub fn overhead_cycles(&self) -> u64 {
        match self.kind {
            // No API call at all.
            AddressSpace::Unified => 0,
            // Release + acquire pair around the use of the shared object.
            AddressSpace::PartiallyShared => 2 * self.costs.api_acq_cycles,
            // A memcpy API call whose copy is free through the shared cache.
            AddressSpace::Disjoint => 2 * self.costs.alloc_cycles,
            // One ownership-style transition plus the return sync.
            AddressSpace::Adsm => self.costs.api_acq_cycles + self.costs.sync_cycles,
        }
    }
}

impl CommModel for IdealSpaceComm {
    fn cost_class(&self, _event: &CommEvent) -> CommCostClass {
        match self.overhead_cycles() {
            0 => CommCostClass::Elided,
            // Every non-unified space pays API-call-shaped instruction
            // overhead; `api-acq` is the representative class.
            _ => CommCostClass::ApiAcq,
        }
    }

    fn plan(&mut self, _event: &CommEvent) -> CommAction {
        match self.overhead_cycles() {
            0 => CommAction::Elide,
            cycles => CommAction::Synchronous {
                ticks: self.costs.cpu_cycles_ticks(cycles),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetmem_trace::{CommKind, TransferDirection};

    #[test]
    fn private_spaces_always_direct() {
        for kind in AddressSpace::ALL {
            let m = AddressSpaceModel::new(kind);
            assert_eq!(
                m.addressability(PuKind::Cpu, MemSpace::CpuPrivate),
                Addressability::Direct
            );
            assert_eq!(
                m.addressability(PuKind::Gpu, MemSpace::GpuPrivate),
                Addressability::Direct
            );
        }
    }

    #[test]
    fn unified_is_direct_everywhere() {
        let m = AddressSpaceModel::new(AddressSpace::Unified);
        for pu in PuKind::ALL {
            for space in [MemSpace::CpuPrivate, MemSpace::GpuPrivate, MemSpace::Shared] {
                assert_eq!(m.addressability(pu, space), Addressability::Direct);
            }
        }
    }

    #[test]
    fn disjoint_requires_transfers_across_spaces() {
        let m = AddressSpaceModel::new(AddressSpace::Disjoint);
        assert_eq!(
            m.addressability(PuKind::Gpu, MemSpace::CpuPrivate),
            Addressability::ExplicitTransfer
        );
        assert_eq!(
            m.addressability(PuKind::Cpu, MemSpace::GpuPrivate),
            Addressability::ExplicitTransfer
        );
    }

    #[test]
    fn adsm_is_asymmetric() {
        let m = AddressSpaceModel::new(AddressSpace::Adsm);
        // The CPU sees everything...
        assert_eq!(
            m.addressability(PuKind::Cpu, MemSpace::GpuPrivate),
            Addressability::Direct
        );
        assert_eq!(
            m.addressability(PuKind::Cpu, MemSpace::Shared),
            Addressability::Direct
        );
        // ...the GPU only its own space plus the mapped shared region.
        assert_eq!(
            m.addressability(PuKind::Gpu, MemSpace::Shared),
            Addressability::Direct
        );
        assert_eq!(
            m.addressability(PuKind::Gpu, MemSpace::CpuPrivate),
            Addressability::ExplicitTransfer
        );
        assert!(m.single_sided_coherence());
    }

    #[test]
    fn partially_shared_window_is_ownership_gated() {
        let m = AddressSpaceModel::new(AddressSpace::PartiallyShared);
        for pu in PuKind::ALL {
            assert_eq!(
                m.addressability(pu, MemSpace::Shared),
                Addressability::OwnershipGated
            );
        }
        assert!(m.duplicated_page_tables());
    }

    #[test]
    fn ideal_space_overheads_are_tiny_and_ordered() {
        let costs = CommCosts::paper();
        let oh = |k| IdealSpaceComm::new(k, costs).overhead_cycles();
        assert_eq!(oh(AddressSpace::Unified), 0);
        assert!(oh(AddressSpace::PartiallyShared) > 0);
        // All overheads are orders of magnitude below a real PCI transfer.
        for k in AddressSpace::ALL {
            assert!(oh(k) < costs.api_pci_cycles / 10, "{k}");
        }
    }

    #[test]
    fn ideal_space_model_plans_accordingly() {
        let costs = CommCosts::paper();
        let ev = CommEvent {
            direction: TransferDirection::HostToDevice,
            bytes: 1 << 20,
            kind: CommKind::InitialInput,
            addr: 0,
        };
        let mut uni = IdealSpaceComm::new(AddressSpace::Unified, costs);
        assert_eq!(uni.plan(&ev), CommAction::Elide);
        let mut pas = IdealSpaceComm::new(AddressSpace::PartiallyShared, costs);
        match pas.plan(&ev) {
            CommAction::Synchronous { ticks } => {
                assert_eq!(ticks, costs.cpu_cycles_ticks(2 * costs.api_acq_cycles));
            }
            other => panic!("expected synchronous, got {other:?}"),
        }
    }
}
