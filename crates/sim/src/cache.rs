//! Set-associative caches with locality-aware replacement.
//!
//! Besides plain LRU, the cache implements the paper's *hybrid locality*
//! scheme for the shared second-level cache (§II-B5): each tag carries one
//! bit saying whether the block is implicitly managed (hardware caching) or
//! explicitly managed (placed by a `push`). The replacement logic compares
//! that bit: **an implicitly-managed block cannot evict an explicitly-managed
//! block**, and the explicitly-managed footprint is capped below the total
//! capacity so implicit traffic always retains at least one way per set.

use crate::config::CacheConfig;

/// How a block came to be in the cache (the tag's locality bit).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Placement {
    /// Brought in by ordinary hardware caching.
    #[default]
    Implicit,
    /// Placed by an explicit `push`; protected from implicit eviction.
    Explicit,
}

/// A block evicted by a fill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Evicted {
    /// Base address of the evicted line.
    pub addr: u64,
    /// Whether the line was dirty (needs write-back).
    pub dirty: bool,
}

/// Result of a cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Lookup {
    /// Whether the access hit.
    pub hit: bool,
    /// A line displaced by the miss fill, if any.
    pub evicted: Option<Evicted>,
    /// Whether the miss fill was refused because every candidate way is
    /// explicitly managed (the access bypasses the cache).
    pub bypassed: bool,
}

/// Per-line flag bits packed into one byte (see the SoA layout on [`Cache`]).
const VALID: u8 = 1 << 0;
const DIRTY: u8 = 1 << 1;
const EXPLICIT: u8 = 1 << 2;

/// Hit/miss/eviction counters for one cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Lines displaced by fills.
    pub evictions: u64,
    /// Dirty lines written back.
    pub writebacks: u64,
    /// Misses that could not fill because the set was fully explicit.
    pub bypasses: u64,
}

impl CacheStats {
    /// Miss rate in `[0, 1]`; zero when there have been no accesses.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// A set-associative, write-back, write-allocate cache.
///
/// Line state is a structure-of-arrays: three flat vectors indexed
/// `set * associativity + way`. The all-zero state is "invalid line", so
/// construction is a handful of zeroed (lazily mapped) allocations instead
/// of one heap allocation per set — building the paper's 8 MB LLC costs
/// microseconds, which keeps per-job engine construction off the profile of
/// large sweeps. Hit scans also touch only the contiguous tag/flag words of
/// one set instead of striding through padded line structs.
#[derive(Clone, Debug)]
pub struct Cache {
    tags: Vec<u64>,
    last_use: Vec<u64>,
    flags: Vec<u8>,
    assoc: usize,
    line_bytes: u64,
    set_mask: u64,
    /// When false, the locality bit is ignored and replacement is plain LRU
    /// (the ablation configuration).
    honor_locality: bool,
    /// Maximum explicitly-managed ways per set (< associativity).
    max_explicit_ways: usize,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache from its configuration, honouring locality bits.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate or the set count is not a power
    /// of two.
    #[must_use]
    pub fn new(config: &CacheConfig) -> Cache {
        Cache::with_locality(config, true)
    }

    /// Builds a cache, choosing whether replacement honours the locality bit
    /// (§II-B5) or treats all blocks uniformly (plain LRU).
    #[must_use]
    pub fn with_locality(config: &CacheConfig, honor_locality: bool) -> Cache {
        let sets = config.sets();
        assert!(
            sets.is_power_of_two(),
            "set count must be a power of two, got {sets}"
        );
        let assoc = config.associativity as usize;
        let total = sets as usize * assoc;
        Cache {
            tags: vec![0; total],
            last_use: vec![0; total],
            flags: vec![0; total],
            assoc,
            line_bytes: u64::from(config.line_bytes),
            set_mask: sets - 1,
            honor_locality,
            // Constraint (2) of §II-B5: the explicitly managed region must
            // be strictly smaller than the physical cache.
            max_explicit_ways: assoc.saturating_sub(1).max(1),
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.line_bytes;
        (
            (line & self.set_mask) as usize,
            line >> self.set_mask.count_ones(),
        )
    }

    /// Line size in bytes.
    #[must_use]
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Returns the cache to its power-on state: every line invalid, clock
    /// and counters at zero. Only the one-byte flag array is cleared — the
    /// tag and LRU words of invalid lines are never read — so resetting the
    /// paper's 2 MB LLC tile touches 32 KiB, not half a megabyte. This is
    /// what makes engine recycling (one simulation reused across sweep jobs)
    /// an order of magnitude cheaper than rebuilding.
    pub fn reset(&mut self) {
        self.flags.fill(0);
        self.clock = 0;
        self.stats = CacheStats::default();
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Whether `addr` currently resides in the cache (no state change).
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.assoc;
        (0..self.assoc).any(|w| self.flags[base + w] & VALID != 0 && self.tags[base + w] == tag)
    }

    /// Performs an access; on a miss the line is filled with the given
    /// placement according to the locality-aware replacement policy.
    pub fn access(&mut self, addr: u64, write: bool, placement: Placement) -> Lookup {
        self.clock += 1;
        let clock = self.clock;
        let honor = self.honor_locality;
        let max_explicit = self.max_explicit_ways;
        let (set_idx, tag) = self.set_and_tag(addr);
        let base = set_idx * self.assoc;
        let tags = &mut self.tags[base..base + self.assoc];
        let flags = &mut self.flags[base..base + self.assoc];
        let last_use = &mut self.last_use[base..base + self.assoc];

        if let Some(idx) = (0..tags.len()).find(|&w| flags[w] & VALID != 0 && tags[w] == tag) {
            last_use[idx] = clock;
            if write {
                flags[idx] |= DIRTY;
            }
            // An explicit push over a cached block upgrades its bit (an
            // ordinary access never downgrades one) — but the upgrade is
            // subject to the same footprint cap as explicit fills: the
            // explicitly managed region must stay below the set size.
            if placement == Placement::Explicit && flags[idx] & EXPLICIT == 0 {
                let explicit_others = flags
                    .iter()
                    .enumerate()
                    .filter(|&(w, f)| w != idx && f & (VALID | EXPLICIT) == (VALID | EXPLICIT))
                    .count();
                if !honor || explicit_others < max_explicit {
                    flags[idx] |= EXPLICIT;
                }
            }
            self.stats.hits += 1;
            return Lookup {
                hit: true,
                evicted: None,
                bypassed: false,
            };
        }

        self.stats.misses += 1;

        // Victim selection. Invalid ways first; then LRU among the ways this
        // placement class is allowed to displace.
        let victim = if let Some(w) = flags.iter().position(|f| f & VALID == 0) {
            Some(w)
        } else {
            let evictable = |f: u8| {
                if !honor {
                    return true;
                }
                match placement {
                    // Implicit fills must not displace explicit blocks.
                    Placement::Implicit => f & EXPLICIT == 0,
                    Placement::Explicit => true,
                }
            };
            (0..flags.len())
                .filter(|&w| evictable(flags[w]))
                .min_by_key(|&w| last_use[w])
        };

        let Some(victim) = victim else {
            // Whole set explicitly managed: implicit traffic bypasses.
            self.stats.bypasses += 1;
            return Lookup {
                hit: false,
                evicted: None,
                bypassed: true,
            };
        };

        // Cap the explicit footprint below the set size.
        let placement = if honor
            && placement == Placement::Explicit
            && flags
                .iter()
                .enumerate()
                .filter(|&(w, f)| w != victim && f & (VALID | EXPLICIT) == (VALID | EXPLICIT))
                .count()
                >= max_explicit
        {
            Placement::Implicit
        } else {
            placement
        };

        let old = flags[victim];
        let evicted = if old & VALID != 0 {
            self.stats.evictions += 1;
            let dirty = old & DIRTY != 0;
            if dirty {
                self.stats.writebacks += 1;
            }
            let set_bits = self.set_mask.count_ones();
            let line = (tags[victim] << set_bits) | set_idx as u64;
            Some(Evicted {
                addr: line * self.line_bytes,
                dirty,
            })
        } else {
            None
        };

        tags[victim] = tag;
        last_use[victim] = clock;
        flags[victim] = VALID
            | if write { DIRTY } else { 0 }
            | if placement == Placement::Explicit {
                EXPLICIT
            } else {
                0
            };
        Lookup {
            hit: false,
            evicted,
            bypassed: false,
        }
    }

    /// Explicitly places every line of `[addr, addr + bytes)` in the cache
    /// with the [`Placement::Explicit`] bit set, returning the number of
    /// lines touched.
    pub fn push_region(&mut self, addr: u64, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let first = addr / self.line_bytes;
        let last = (addr + bytes - 1) / self.line_bytes;
        for line in first..=last {
            let _ = self.access(line * self.line_bytes, false, Placement::Explicit);
        }
        last - first + 1
    }

    /// Invalidates `addr`'s line if present, returning whether it was dirty
    /// (and therefore needs a write-back by the coherence protocol).
    pub fn invalidate(&mut self, addr: u64) -> Option<bool> {
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.assoc;
        for w in base..base + self.assoc {
            if self.flags[w] & VALID != 0 && self.tags[w] == tag {
                self.flags[w] &= !VALID;
                return Some(self.flags[w] & DIRTY != 0);
            }
        }
        None
    }

    /// Number of valid lines currently held with each placement.
    #[must_use]
    pub fn occupancy(&self) -> (u64, u64) {
        let mut implicit = 0;
        let mut explicit = 0;
        for &f in &self.flags {
            if f & VALID != 0 {
                if f & EXPLICIT != 0 {
                    explicit += 1;
                } else {
                    implicit += 1;
                }
            }
        }
        (implicit, explicit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> Cache {
        // 4 sets × 4 ways × 64 B = 1 KiB.
        Cache::new(&CacheConfig {
            capacity_bytes: 1024,
            associativity: 4,
            line_bytes: 64,
            latency_cycles: 1,
        })
    }

    #[test]
    fn hit_after_fill() {
        let mut c = small_cache();
        assert!(!c.access(0x100, false, Placement::Implicit).hit);
        assert!(c.access(0x100, false, Placement::Implicit).hit);
        assert!(c.access(0x13F, false, Placement::Implicit).hit); // same line
        assert!(!c.access(0x140, false, Placement::Implicit).hit); // next line
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = small_cache();
        // Fill all 4 ways of set 0 (addresses 64 B apart × 4 sets stride).
        let stride = 64 * 4;
        for i in 0..4u64 {
            c.access(i * stride, false, Placement::Implicit);
        }
        // Touch line 0 so line 1 becomes LRU, then force an eviction.
        c.access(0, false, Placement::Implicit);
        let look = c.access(4 * stride, false, Placement::Implicit);
        assert_eq!(
            look.evicted,
            Some(Evicted {
                addr: stride,
                dirty: false
            })
        );
        assert!(c.contains(0));
        assert!(!c.contains(stride));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small_cache();
        let stride = 64 * 4;
        c.access(0, true, Placement::Implicit);
        for i in 1..=4u64 {
            c.access(i * stride, false, Placement::Implicit);
        }
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn implicit_cannot_evict_explicit() {
        let mut c = small_cache();
        let stride = 64 * 4;
        // Three explicit lines (the cap is assoc-1 = 3) + one implicit.
        for i in 0..3u64 {
            c.access(i * stride, false, Placement::Explicit);
        }
        c.access(3 * stride, false, Placement::Implicit);
        // A new implicit fill may only displace the one implicit line.
        let look = c.access(4 * stride, false, Placement::Implicit);
        assert_eq!(
            look.evicted,
            Some(Evicted {
                addr: 3 * stride,
                dirty: false
            })
        );
        for i in 0..3u64 {
            assert!(c.contains(i * stride), "explicit line {i} must survive");
        }
    }

    #[test]
    fn explicit_footprint_is_capped() {
        let mut c = small_cache();
        let stride = 64 * 4;
        for i in 0..4u64 {
            c.access(i * stride, false, Placement::Explicit);
        }
        let (implicit, explicit) = c.occupancy();
        // The fourth explicit fill is demoted to implicit by the cap.
        assert_eq!(explicit, 3);
        assert_eq!(implicit, 1);
    }

    #[test]
    fn explicit_upgrade_on_hit_respects_the_cap() {
        // Found by property testing: filling 3 explicit + 1 implicit and
        // then re-pushing the implicit line must NOT make the set fully
        // explicit — the cap applies to upgrades as well as fills.
        let mut c = small_cache();
        let stride = 64 * 4;
        for i in 0..3u64 {
            c.access(i * stride, false, Placement::Explicit);
        }
        c.access(3 * stride, false, Placement::Implicit);
        c.access(3 * stride, false, Placement::Explicit); // upgrade attempt
        let (implicit, explicit) = c.occupancy();
        assert_eq!(explicit, 3);
        assert_eq!(implicit, 1);
        // And implicit traffic can therefore still allocate in this set.
        let look = c.access(4 * stride, false, Placement::Implicit);
        assert!(!look.bypassed);
    }

    #[test]
    fn ignoring_locality_restores_plain_lru() {
        let cfg = CacheConfig {
            capacity_bytes: 1024,
            associativity: 4,
            line_bytes: 64,
            latency_cycles: 1,
        };
        let mut c = Cache::with_locality(&cfg, false);
        let stride = 64 * 4;
        for i in 0..4u64 {
            c.access(i * stride, false, Placement::Explicit);
        }
        let look = c.access(4 * stride, false, Placement::Implicit);
        // Plain LRU: the oldest (explicit) line is displaced.
        assert_eq!(
            look.evicted,
            Some(Evicted {
                addr: 0,
                dirty: false
            })
        );
    }

    #[test]
    fn push_region_counts_lines_and_pins_them() {
        let mut c = small_cache();
        let n = c.push_region(0x80, 130); // spans lines 0x80, 0xC0, 0x100
        assert_eq!(n, 3);
        assert!(c.contains(0x80) && c.contains(0xC0) && c.contains(0x100));
        let (_, explicit) = c.occupancy();
        assert_eq!(explicit, 3);
        assert_eq!(c.push_region(0, 0), 0);
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = small_cache();
        c.access(0x40, true, Placement::Implicit);
        assert_eq!(c.invalidate(0x40), Some(true));
        assert_eq!(c.invalidate(0x40), None);
        assert!(!c.contains(0x40));
    }

    #[test]
    fn eviction_reconstructs_correct_address() {
        let mut c = small_cache();
        let stride = 64 * 4; // maps to set 0
        let base = 0x1000;
        for i in 0..5u64 {
            c.access(base + i * stride, false, Placement::Implicit);
        }
        // All five map to the same set; the first must have been evicted
        // with its full original address.
        assert_eq!(c.stats().evictions, 1);
        assert!(!c.contains(base));
    }

    #[test]
    fn bypass_when_set_fully_explicit() {
        // Associativity 1: the cap max(assoc-1, 1) = 1 allows the single way
        // to be explicit, so implicit fills must bypass.
        let cfg = CacheConfig {
            capacity_bytes: 256,
            associativity: 1,
            line_bytes: 64,
            latency_cycles: 1,
        };
        let mut c = Cache::new(&cfg);
        c.access(0, false, Placement::Explicit);
        let look = c.access(256, false, Placement::Implicit); // same set
        assert!(look.bypassed);
        assert!(c.contains(0));
        assert_eq!(c.stats().bypasses, 1);
    }
}
