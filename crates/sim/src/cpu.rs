//! The out-of-order CPU core model (Table II: 3.5 GHz, out-of-order,
//! gshare).
//!
//! The core is trace-driven and single-pass: instructions dispatch at the
//! superscalar issue rate, complete after a class-dependent latency (loads
//! ask the memory hierarchy), and retire in order through a reorder buffer.
//! Out-of-order overlap emerges from the model naturally — a load miss does
//! not stall dispatch until the ROB fills, so independent misses overlap
//! (memory-level parallelism bounded by the ROB), which is exactly the
//! first-order behaviour of an OoO window.

use crate::clock::{ClockDomain, Tick};
use crate::config::CpuConfig;
use crate::fabric::CommCosts;
use crate::hierarchy::MemoryHierarchy;
use crate::obs::{NullObserver, SimObserver};
use crate::Gshare;
use hetmem_trace::{CacheLevel, Inst, PuKind, SpecialOp};
use std::collections::VecDeque;

/// Cycle-accounting statistics for the CPU core.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CpuStats {
    /// Dynamic instructions executed.
    pub instructions: u64,
    /// Conditional branches executed.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredictions: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Ticks dispatch was stalled waiting for ROB retirement.
    pub rob_stall_ticks: u64,
    /// Special (programming-model) operations executed.
    pub special_ops: u64,
}

/// The persistent CPU core: predictor state and statistics survive across
/// trace segments, as they would in real hardware.
#[derive(Clone, Debug)]
pub struct CpuCore {
    config: CpuConfig,
    costs: CommCosts,
    bpred: Gshare,
    stats: CpuStats,
}

impl CpuCore {
    /// Creates a core.
    #[must_use]
    pub fn new(config: &CpuConfig, costs: CommCosts) -> CpuCore {
        CpuCore {
            config: *config,
            costs,
            bpred: Gshare::new(config.gshare_log2_entries, config.gshare_history_bits),
            stats: CpuStats::default(),
        }
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> CpuStats {
        self.stats
    }

    /// Returns the core to its power-on state: cold predictor, zeroed
    /// counters.
    pub fn reset(&mut self) {
        self.bpred.reset();
        self.stats = CpuStats::default();
    }

    /// Branch-predictor statistics.
    #[must_use]
    pub fn predictor(&self) -> &Gshare {
        &self.bpred
    }

    /// Begins executing `insts` at global time `start`. Drive the returned
    /// run to completion with [`CpuRun::step`], interleaving with a GPU run
    /// by global time for contention fidelity.
    pub fn begin<'a>(&'a mut self, insts: &'a [Inst], start: Tick) -> CpuRun<'a> {
        // Hoist the per-step-invariant hot scalars out of the nested config
        // structs into the run itself: the inner loop then touches one flat,
        // cache-resident block instead of chasing `core.config.*` every step.
        let tpc = ClockDomain::CPU.ticks_per_cycle();
        let slot = (tpc / u64::from(self.config.issue_width)).max(1);
        let l1_ticks = ClockDomain::CPU.cycles_to_ticks(self.config.l1d.latency_cycles);
        let mispredict_ticks = ClockDomain::CPU.cycles_to_ticks(self.config.mispredict_penalty);
        let rob_entries = self.config.rob_entries as usize;
        CpuRun {
            core: self,
            insts,
            idx: 0,
            next_issue: start,
            rob: VecDeque::new(),
            last_retire: start,
            finish: start,
            tpc,
            slot,
            l1_ticks,
            mispredict_ticks,
            rob_entries,
        }
    }
}

/// An in-flight execution of one instruction stream on the CPU.
///
/// The trailing scalar fields are the issue loop's hot state, hoisted from
/// the config at [`CpuCore::begin`] so every step reads a single flat
/// struct (see the DESIGN.md §2.10 layout notes).
#[derive(Debug)]
pub struct CpuRun<'a> {
    core: &'a mut CpuCore,
    insts: &'a [Inst],
    idx: usize,
    next_issue: Tick,
    rob: VecDeque<Tick>,
    last_retire: Tick,
    finish: Tick,
    tpc: Tick,
    slot: Tick,
    l1_ticks: Tick,
    mispredict_ticks: Tick,
    rob_entries: usize,
}

impl CpuRun<'_> {
    /// Whether all instructions have been issued.
    #[must_use]
    pub fn done(&self) -> bool {
        self.idx == self.insts.len()
    }

    /// Global time of the next issue slot (the run's current time).
    #[must_use]
    pub fn now(&self) -> Tick {
        self.next_issue
    }

    /// Global time at which every issued instruction has retired.
    #[must_use]
    pub fn finish_tick(&self) -> Tick {
        self.finish.max(self.last_retire)
    }

    /// Issues one instruction, updating all shared memory-system state.
    ///
    /// # Panics
    ///
    /// Panics if called after [`CpuRun::done`], or on a communication event
    /// (those belong to communication segments, which the system executes
    /// directly).
    pub fn step(&mut self, hier: &mut MemoryHierarchy) {
        self.step_observed(hier, &mut NullObserver);
    }

    /// [`CpuRun::step`] with observability hooks. With [`NullObserver`] this
    /// compiles down to `step` exactly.
    ///
    /// # Panics
    ///
    /// As [`CpuRun::step`].
    pub fn step_observed<O: SimObserver>(&mut self, hier: &mut MemoryHierarchy, obs: &mut O) {
        let inst = self.insts[self.idx];
        self.idx += 1;
        // Issue-slot spacing: issue_width instructions per cycle.
        let (tpc, slot) = (self.tpc, self.slot);

        // ROB back-pressure: with a full window, dispatch waits for the
        // oldest instruction to retire.
        if self.rob.len() >= self.rob_entries {
            let oldest = self.rob.pop_front().expect("rob non-empty");
            if oldest > self.next_issue {
                self.core.stats.rob_stall_ticks += oldest - self.next_issue;
                self.next_issue = oldest;
            }
        }

        let t = self.next_issue;
        self.next_issue += slot;
        self.core.stats.instructions += 1;
        obs.on_instruction(PuKind::Cpu, t);

        let completion = match inst {
            Inst::IntAlu => t + tpc,
            Inst::Mul => t + 3 * tpc,
            Inst::FpAlu | Inst::SimdAlu { .. } => t + 4 * tpc,
            Inst::Load { addr, .. } => {
                self.core.stats.loads += 1;
                let res = hier.access_observed(PuKind::Cpu, addr, false, t, obs);
                t + res.latency
            }
            Inst::Store { addr, .. } => {
                self.core.stats.stores += 1;
                // Write-buffered: the store updates the memory system but
                // retires at L1 speed.
                let _ = hier.access_observed(PuKind::Cpu, addr, true, t, obs);
                t + self.l1_ticks
            }
            Inst::Branch { taken } => {
                self.core.stats.branches += 1;
                let correct = self.core.bpred.predict_and_train(taken);
                let done = t + tpc;
                if !correct {
                    self.core.stats.mispredictions += 1;
                    // Pipeline flush: dispatch resumes after the penalty.
                    let resume = done + self.mispredict_ticks;
                    self.next_issue = self.next_issue.max(resume);
                }
                done
            }
            Inst::Special(op) => {
                self.core.stats.special_ops += 1;
                let cost = self.core.costs.special_ticks(&op);
                obs.on_special(PuKind::Cpu, &op, cost, t);
                if let SpecialOp::Push { level, addr, bytes } = op {
                    if level == CacheLevel::SharedLlc {
                        let _ = hier.push_llc_region(addr, bytes);
                    }
                }
                // Special operations serialize the pipeline.
                let done = t + cost.max(tpc);
                self.next_issue = self.next_issue.max(done);
                done
            }
            Inst::Comm(_) => {
                panic!("communication events must be executed by the system, not a core")
            }
        };

        // In-order retirement.
        let retire = completion.max(self.last_retire);
        self.last_retire = retire;
        self.rob.push_back(retire);
        self.finish = self.finish.max(retire);
    }

    /// Runs batched inside an event-wheel wake window: steps while the next
    /// issue slot is **at or before** `limit` (the CPU wins global-time ties
    /// against the GPU, so the accurate interleave grants it the boundary
    /// tick). Exactly reproduces the accurate loop's step sequence when
    /// `limit` is the peer's frozen `now()`.
    pub fn run_while_observed<O: SimObserver>(
        &mut self,
        hier: &mut MemoryHierarchy,
        obs: &mut O,
        limit: Tick,
    ) {
        while self.idx != self.insts.len() && self.next_issue <= limit {
            self.step_observed(hier, obs);
        }
    }

    /// Skips up to `max` contiguous plain (non-special) instructions: the
    /// index advances without executing them, so no statistics, cache
    /// traffic, or issue slots are charged. Stops early at a
    /// programming-model special, which must execute in detail. Returns
    /// the number skipped; the caller accounts for their time via
    /// [`CpuRun::advance_clock`].
    pub fn skip_plain(&mut self, max: usize) -> usize {
        let start = self.idx;
        let stop = self.insts.len().min(start.saturating_add(max));
        while self.idx < stop && !matches!(self.insts[self.idx], Inst::Special(_)) {
            self.idx += 1;
        }
        self.idx - start
    }

    /// Fast-forwards the run's clock by `ticks` of extrapolated skip time.
    /// The in-flight retirement profile shifts with the clock: the skipped
    /// region is modeled as having kept the ROB exactly as full as it was,
    /// so detailed execution resumes under steady-state back-pressure
    /// instead of a drained (or artificially stalled) pipeline.
    pub fn advance_clock(&mut self, ticks: Tick) {
        self.next_issue += ticks;
        for entry in &mut self.rob {
            *entry += ticks;
        }
        self.last_retire += ticks;
        self.finish = self.finish.max(self.last_retire).max(self.next_issue);
    }

    /// Runs the stream to completion without interleaving (sequential
    /// phases), returning the finish tick.
    pub fn run_to_end(self, hier: &mut MemoryHierarchy) -> Tick {
        self.run_to_end_observed(hier, &mut NullObserver)
    }

    /// [`CpuRun::run_to_end`] with observability hooks.
    pub fn run_to_end_observed<O: SimObserver>(
        mut self,
        hier: &mut MemoryHierarchy,
        obs: &mut O,
    ) -> Tick {
        while !self.done() {
            self.step_observed(hier, obs);
        }
        self.finish_tick()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    fn setup() -> (CpuCore, MemoryHierarchy) {
        let cfg = SystemConfig::baseline();
        (
            CpuCore::new(&cfg.cpu, CommCosts::paper()),
            MemoryHierarchy::new(&cfg),
        )
    }

    #[test]
    fn alu_stream_runs_at_issue_width() {
        let (mut core, mut hier) = setup();
        let insts = vec![Inst::IntAlu; 4000];
        let end = core.begin(&insts, 0).run_to_end(&mut hier);
        // 4000 instructions at 4/cycle = 1000 cycles ≈ 12000 ticks (plus a
        // final completion latency).
        let cycles = ClockDomain::CPU.ticks_to_cycles(end);
        assert!((1000..1100).contains(&cycles), "{cycles} cycles");
    }

    #[test]
    fn cache_misses_slow_execution() {
        let (mut core, mut hier) = setup();
        // Streaming loads over 1 MiB: mostly misses at line granularity.
        let miss_insts: Vec<Inst> = (0..4096)
            .map(|i| Inst::Load {
                addr: i * 256,
                bytes: 8,
            })
            .collect();
        let miss_end = core.begin(&miss_insts, 0).run_to_end(&mut hier);

        let (mut core2, mut hier2) = setup();
        // Same count of loads, all to one line: hits after the first.
        let hit_insts: Vec<Inst> = (0..4096)
            .map(|_| Inst::Load { addr: 64, bytes: 8 })
            .collect();
        let hit_end = core2.begin(&hit_insts, 0).run_to_end(&mut hier2);

        assert!(
            miss_end > 2 * hit_end,
            "misses {miss_end} vs hits {hit_end}"
        );
    }

    #[test]
    fn rob_limits_memory_level_parallelism() {
        let (mut core, mut hier) = setup();
        let insts: Vec<Inst> = (0..2048)
            .map(|i| Inst::Load {
                addr: i * 4096,
                bytes: 8,
            })
            .collect();
        let _ = core.begin(&insts, 0).run_to_end(&mut hier);
        assert!(
            core.stats().rob_stall_ticks > 0,
            "2048 TLB-missing loads must pressure the ROB"
        );
    }

    #[test]
    fn mispredictions_cost_cycles() {
        let (mut core, mut hier) = setup();
        // Alternating pattern is learnable; random is not. Compare biased
        // vs adversarial streams of the same length.
        let mut bad = Vec::new();
        let mut state = 1u64;
        for _ in 0..4000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            bad.push(Inst::Branch {
                taken: (state >> 62) & 1 == 1,
            });
        }
        let bad_end = core.begin(&bad, 0).run_to_end(&mut hier);
        let bad_mispredicts = core.stats().mispredictions;

        let (mut core2, mut hier2) = setup();
        let good = vec![Inst::Branch { taken: true }; 4000];
        let good_end = core2.begin(&good, 0).run_to_end(&mut hier2);

        assert!(bad_mispredicts > 1000);
        assert!(bad_end > good_end);
    }

    #[test]
    fn special_ops_serialize() {
        let (mut core, mut hier) = setup();
        let insts = vec![
            Inst::Special(SpecialOp::Acquire { addr: 0, bytes: 64 }),
            Inst::IntAlu,
        ];
        let end = core.begin(&insts, 0).run_to_end(&mut hier);
        // api-acq is 1000 cycles; the following instruction cannot finish
        // earlier.
        assert!(ClockDomain::CPU.ticks_to_cycles(end) >= 1000);
        assert_eq!(core.stats().special_ops, 1);
    }

    #[test]
    fn push_special_pins_llc_lines() {
        let (mut core, mut hier) = setup();
        let insts = vec![Inst::Special(SpecialOp::Push {
            level: CacheLevel::SharedLlc,
            addr: 0x3000_0000,
            bytes: 4096,
        })];
        let _ = core.begin(&insts, 0).run_to_end(&mut hier);
        assert!(hier.stats().llc.misses >= 64, "push fills 64 lines");
    }

    #[test]
    #[should_panic(expected = "executed by the system")]
    fn comm_event_in_core_stream_panics() {
        let (mut core, mut hier) = setup();
        let ev = hetmem_trace::CommEvent {
            direction: hetmem_trace::TransferDirection::HostToDevice,
            bytes: 64,
            kind: hetmem_trace::CommKind::InitialInput,
            addr: 0,
        };
        let insts = vec![Inst::Comm(ev)];
        let _ = core.begin(&insts, 0).run_to_end(&mut hier);
    }

    #[test]
    fn retirement_is_monotone() {
        let (mut core, mut hier) = setup();
        let insts = vec![
            Inst::Load {
                addr: 0x8000,
                bytes: 8,
            }, // slow (DRAM)
            Inst::IntAlu, // fast, must retire after the load
        ];
        let mut run = core.begin(&insts, 0);
        run.step(&mut hier);
        let after_load = run.finish_tick();
        run.step(&mut hier);
        assert!(run.finish_tick() >= after_load);
    }
}
