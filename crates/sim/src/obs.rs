//! Observability: the [`SimObserver`] hook trait, the bounded [`EventTrace`]
//! ring recorder, and the [`IntervalProfiler`] timeline sampler.
//!
//! The simulator's end-of-run [`crate::RunReport`] says *how much* time went
//! where; this layer says *when*. Every component calls back into a
//! statically-dispatched observer on the interesting transitions — phase
//! boundaries, communication-fabric actions with their Table IV cost class,
//! accesses that leave the private caches, DRAM requests and row conflicts,
//! and coherence interventions.
//!
//! ## Overhead contract
//!
//! All trait methods have inline no-op defaults, and every hot path is
//! generic over the observer type, so a run driven with [`NullObserver`]
//! compiles to exactly the code that existed before this layer: observer-off
//! runs are tick-for-tick identical to unobserved ones (asserted by the
//! determinism tests). Observers never influence simulation state — they are
//! write-only taps.

use crate::clock::Tick;
use crate::coherence::InterventionKind;
use crate::fabric::{CommAction, CommCostClass};
use crate::hierarchy::ServiceLevel;
use hetmem_trace::{CommEvent, CommKind, Phase, PuKind, SpecialOp, TransferDirection};
use std::collections::VecDeque;

/// Default capacity of an [`EventTrace`] ring buffer.
pub const DEFAULT_EVENT_CAPACITY: usize = 65_536;

/// Default gap (in ticks) that ends a miss burst: two shared-level accesses
/// further apart than this are reported as separate bursts.
pub const DEFAULT_BURST_GAP: Tick = 100_000;

/// Ceiling on recorded timeline samples; later windows are counted but not
/// stored, bounding memory for pathologically small intervals.
pub const MAX_TIMELINE_SAMPLES: usize = 262_144;

/// Callbacks the simulator raises while executing a trace.
///
/// Implementations must be pure observers: the simulator's results are
/// identical for any observer, including [`NullObserver`] (no callbacks
/// overridden), which is the zero-overhead default everywhere.
pub trait SimObserver {
    /// A phase segment begins. `segment` is its ordinal in the trace.
    #[inline]
    fn on_phase_start(&mut self, segment: usize, phase: Phase, now: Tick) {
        let _ = (segment, phase, now);
    }

    /// A phase segment ended, having occupied `[start, end)` in global time.
    #[inline]
    fn on_phase_end(&mut self, segment: usize, phase: Phase, start: Tick, end: Tick) {
        let _ = (segment, phase, start, end);
    }

    /// The communication model realized `event` as `action`, classified
    /// under the Table IV cost class `class`, at global time `now`.
    #[inline]
    fn on_comm(&mut self, event: &CommEvent, action: &CommAction, class: CommCostClass, now: Tick) {
        let _ = (event, action, class, now);
    }

    /// A programming-model special operation executed on `pu` for `ticks`.
    #[inline]
    fn on_special(&mut self, pu: PuKind, op: &SpecialOp, ticks: Tick, now: Tick) {
        let _ = (pu, op, ticks, now);
    }

    /// A load or store by `pu` was serviced by `level` after `latency`.
    #[inline]
    fn on_access(
        &mut self,
        pu: PuKind,
        level: ServiceLevel,
        write: bool,
        latency: Tick,
        now: Tick,
    ) {
        let _ = (pu, level, write, latency, now);
    }

    /// An access by `pu` required a cross-PU coherence intervention.
    #[inline]
    fn on_intervention(&mut self, pu: PuKind, kind: InterventionKind, now: Tick) {
        let _ = (pu, kind, now);
    }

    /// A DRAM request (demand, write-back, or prefetch) was issued.
    #[inline]
    fn on_dram(&mut self, write: bool, row_hit: bool, now: Tick) {
        let _ = (write, row_hit, now);
    }

    /// A dynamic instruction issued on `pu`.
    #[inline]
    fn on_instruction(&mut self, pu: PuKind, now: Tick) {
        let _ = (pu, now);
    }

    /// The engine crossed `ticks` of global time inside one granted
    /// event-wheel wake window (or one extrapolated sampling skip) ending
    /// at `now`, rather than under per-step arbitration. Only the fast
    /// [`crate::ExecMode`]s raise this; it is an accounting tap, not a
    /// [`SimEvent`], so event streams stay identical across modes.
    #[inline]
    fn on_fast_forward(&mut self, ticks: Tick, now: Tick) {
        let _ = (ticks, now);
    }

    /// The run finished at global time `now`; flush any pending aggregation.
    #[inline]
    fn on_run_end(&mut self, now: Tick) {
        let _ = now;
    }
}

/// The do-nothing observer: every callback is an inline no-op, so observed
/// code paths compile down to the unobserved ones.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullObserver;

impl SimObserver for NullObserver {}

/// One recorded simulation event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimEvent {
    /// A phase segment began.
    PhaseStart {
        /// Segment ordinal in the trace.
        segment: usize,
        /// The segment's phase.
        phase: Phase,
        /// Global start tick.
        at: Tick,
    },
    /// A phase segment ended.
    PhaseEnd {
        /// Segment ordinal in the trace.
        segment: usize,
        /// The segment's phase.
        phase: Phase,
        /// Global start tick.
        at: Tick,
        /// Duration in ticks.
        ticks: Tick,
    },
    /// A communication event was realized by the fabric.
    Comm {
        /// Table IV cost class of the action.
        class: CommCostClass,
        /// Semantic role of the transfer.
        kind: CommKind,
        /// Transfer direction.
        direction: TransferDirection,
        /// Bytes moved.
        bytes: u64,
        /// Host-blocking ticks (synchronous duration or async setup).
        ticks: Tick,
        /// Background ticks overlapped with computation (async transfers).
        overlapped_ticks: Tick,
        /// Global tick the event was planned at.
        at: Tick,
    },
    /// A programming-model special operation executed.
    Special {
        /// The executing PU.
        pu: PuKind,
        /// Serializing cost in ticks.
        ticks: Tick,
        /// Global tick.
        at: Tick,
    },
    /// A burst of consecutive accesses that left `pu`'s private caches.
    MissBurst {
        /// The requesting PU.
        pu: PuKind,
        /// The level that serviced the burst ([`ServiceLevel::Llc`] or
        /// [`ServiceLevel::Dram`]).
        level: ServiceLevel,
        /// Accesses aggregated into the burst.
        count: u64,
        /// Span from the first to the last access, in ticks.
        ticks: Tick,
        /// Global tick of the first access.
        at: Tick,
    },
    /// One DRAM request (`row_hit == false` is a row conflict).
    Dram {
        /// Whether the request was a write.
        write: bool,
        /// Whether it hit the open row.
        row_hit: bool,
        /// Global tick of arrival.
        at: Tick,
    },
    /// A cross-PU coherence intervention.
    Intervention {
        /// The requesting PU (the peer was intervened upon).
        pu: PuKind,
        /// What the intervention did.
        kind: InterventionKind,
        /// Global tick.
        at: Tick,
    },
}

impl SimEvent {
    /// Short machine-readable name of the event kind.
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            SimEvent::PhaseStart { .. } => "phase-start",
            SimEvent::PhaseEnd { .. } => "phase-end",
            SimEvent::Comm { .. } => "comm",
            SimEvent::Special { .. } => "special",
            SimEvent::MissBurst { .. } => "miss-burst",
            SimEvent::Dram { .. } => "dram",
            SimEvent::Intervention { .. } => "intervention",
        }
    }
}

/// Exact totals per event family, independent of ring-buffer eviction.
///
/// These are the numbers the golden tests reconcile against the
/// [`crate::RunReport`] counters: `dram_requests == dram.reads + dram.writes`,
/// `dram_row_misses == dram.row_misses`, and
/// `interventions == coherence.invalidations`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EventCounts {
    /// Phase segments started.
    pub phase_starts: u64,
    /// Phase segments ended.
    pub phase_ends: u64,
    /// Communication events planned.
    pub comm_events: u64,
    /// Special operations observed.
    pub special_ops: u64,
    /// Miss bursts recorded.
    pub miss_bursts: u64,
    /// Accesses that left the private caches (folded into bursts).
    pub shared_accesses: u64,
    /// DRAM requests issued.
    pub dram_requests: u64,
    /// DRAM requests that missed the open row (row conflicts).
    pub dram_row_misses: u64,
    /// Coherence interventions.
    pub interventions: u64,
    /// Ticks crossed inside event-wheel wake windows or sampling skips
    /// rather than executed under per-step arbitration — distinct from
    /// executed time so fast-mode observability stays truthful. Zero under
    /// [`crate::ExecMode::Accurate`].
    pub fast_forward_ticks: u64,
}

impl std::ops::AddAssign for EventCounts {
    /// Accumulates another run's totals — how a long-lived service folds
    /// per-request observability counters into its aggregate metrics.
    fn add_assign(&mut self, other: EventCounts) {
        self.phase_starts += other.phase_starts;
        self.phase_ends += other.phase_ends;
        self.comm_events += other.comm_events;
        self.special_ops += other.special_ops;
        self.miss_bursts += other.miss_bursts;
        self.shared_accesses += other.shared_accesses;
        self.dram_requests += other.dram_requests;
        self.dram_row_misses += other.dram_row_misses;
        self.interventions += other.interventions;
        self.fast_forward_ticks += other.fast_forward_ticks;
    }
}

#[derive(Clone, Copy, Debug)]
struct Burst {
    pu: PuKind,
    level: ServiceLevel,
    count: u64,
    at: Tick,
    last: Tick,
}

/// A bounded ring buffer of typed [`SimEvent`]s.
///
/// When the ring is full the oldest event is dropped (and counted); the
/// [`EventCounts`] totals always remain exact. Consecutive accesses serviced
/// by the same shared level are aggregated into [`SimEvent::MissBurst`]
/// records so streaming misses do not flood the ring one entry per line.
#[derive(Clone, Debug)]
pub struct EventTrace {
    ring: VecDeque<SimEvent>,
    capacity: usize,
    dropped: u64,
    counts: EventCounts,
    burst: Option<Burst>,
    burst_gap: Tick,
}

impl Default for EventTrace {
    fn default() -> EventTrace {
        EventTrace::with_capacity(DEFAULT_EVENT_CAPACITY)
    }
}

impl EventTrace {
    /// An empty trace with the default capacity.
    #[must_use]
    pub fn new() -> EventTrace {
        EventTrace::default()
    }

    /// An empty trace retaining at most `capacity` events.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> EventTrace {
        EventTrace {
            ring: VecDeque::with_capacity(capacity.min(DEFAULT_EVENT_CAPACITY)),
            capacity: capacity.max(1),
            dropped: 0,
            counts: EventCounts::default(),
            burst: None,
            burst_gap: DEFAULT_BURST_GAP,
        }
    }

    /// Sets the burst-closing gap (ticks between shared-level accesses).
    #[must_use]
    pub fn with_burst_gap(mut self, gap: Tick) -> EventTrace {
        self.burst_gap = gap.max(1);
        self
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &SimEvent> {
        self.ring.iter()
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no events are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Ring capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted from the ring because it was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Exact per-family totals (unaffected by ring eviction).
    #[must_use]
    pub fn counts(&self) -> EventCounts {
        self.counts
    }

    fn record(&mut self, event: SimEvent) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(event);
    }

    fn flush_burst(&mut self) {
        if let Some(b) = self.burst.take() {
            self.counts.miss_bursts += 1;
            self.record(SimEvent::MissBurst {
                pu: b.pu,
                level: b.level,
                count: b.count,
                ticks: b.last - b.at,
                at: b.at,
            });
        }
    }
}

impl SimObserver for EventTrace {
    fn on_phase_start(&mut self, segment: usize, phase: Phase, now: Tick) {
        self.flush_burst();
        self.counts.phase_starts += 1;
        self.record(SimEvent::PhaseStart {
            segment,
            phase,
            at: now,
        });
    }

    fn on_phase_end(&mut self, segment: usize, phase: Phase, start: Tick, end: Tick) {
        self.flush_burst();
        self.counts.phase_ends += 1;
        self.record(SimEvent::PhaseEnd {
            segment,
            phase,
            at: start,
            ticks: end - start,
        });
    }

    fn on_comm(&mut self, event: &CommEvent, action: &CommAction, class: CommCostClass, now: Tick) {
        self.counts.comm_events += 1;
        let (ticks, overlapped) = match *action {
            CommAction::Elide => (0, 0),
            CommAction::Synchronous { ticks } => (ticks, 0),
            CommAction::Asynchronous { setup, transfer } => (setup, transfer),
        };
        self.record(SimEvent::Comm {
            class,
            kind: event.kind,
            direction: event.direction,
            bytes: event.bytes,
            ticks,
            overlapped_ticks: overlapped,
            at: now,
        });
    }

    fn on_special(&mut self, pu: PuKind, _op: &SpecialOp, ticks: Tick, now: Tick) {
        self.counts.special_ops += 1;
        self.record(SimEvent::Special { pu, ticks, at: now });
    }

    fn on_access(
        &mut self,
        pu: PuKind,
        level: ServiceLevel,
        _write: bool,
        _latency: Tick,
        now: Tick,
    ) {
        if !matches!(level, ServiceLevel::Llc | ServiceLevel::Dram) {
            return;
        }
        self.counts.shared_accesses += 1;
        match &mut self.burst {
            Some(b)
                if b.pu == pu
                    && b.level == level
                    && now.saturating_sub(b.last) <= self.burst_gap =>
            {
                b.count += 1;
                b.last = now;
            }
            _ => {
                self.flush_burst();
                self.burst = Some(Burst {
                    pu,
                    level,
                    count: 1,
                    at: now,
                    last: now,
                });
            }
        }
    }

    fn on_intervention(&mut self, pu: PuKind, kind: InterventionKind, now: Tick) {
        self.counts.interventions += 1;
        self.record(SimEvent::Intervention { pu, kind, at: now });
    }

    fn on_dram(&mut self, write: bool, row_hit: bool, now: Tick) {
        self.counts.dram_requests += 1;
        if !row_hit {
            self.counts.dram_row_misses += 1;
        }
        self.record(SimEvent::Dram {
            write,
            row_hit,
            at: now,
        });
    }

    fn on_fast_forward(&mut self, ticks: Tick, _now: Tick) {
        // Counted, never recorded: the ring's event stream must stay
        // identical across execution modes.
        self.counts.fast_forward_ticks += ticks;
    }

    fn on_run_end(&mut self, _now: Tick) {
        self.flush_burst();
    }
}

/// Per-component counters accumulated over one timeline window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TimelineSample {
    /// Global tick the window starts at.
    pub start: Tick,
    /// Phase active when the window closed.
    pub phase: Phase,
    /// CPU instructions issued in the window.
    pub cpu_instructions: u64,
    /// GPU instructions issued in the window.
    pub gpu_instructions: u64,
    /// Accesses that left the private caches.
    pub shared_accesses: u64,
    /// Accesses the LLC missed (serviced by DRAM).
    pub llc_misses: u64,
    /// DRAM read requests.
    pub dram_reads: u64,
    /// DRAM write requests.
    pub dram_writes: u64,
    /// DRAM row conflicts.
    pub dram_row_misses: u64,
    /// Coherence interventions.
    pub interventions: u64,
    /// Communication events planned in the window.
    pub comm_events: u64,
    /// Host-blocking communication ticks charged in the window.
    pub comm_blocked_ticks: u64,
}

/// Compact aggregate of a timeline, suitable for embedding in sweep records.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TimelineSummary {
    /// Sampling interval in ticks.
    pub interval: Tick,
    /// Windows recorded.
    pub samples: u64,
    /// Windows elided past [`MAX_TIMELINE_SAMPLES`].
    pub skipped_windows: u64,
    /// Highest DRAM request count in any window.
    pub peak_dram_requests: u64,
    /// Highest LLC-miss count in any window.
    pub peak_llc_misses: u64,
    /// Highest intervention count in any window.
    pub peak_interventions: u64,
    /// Start tick of the window with the most DRAM requests.
    pub busiest_window_start: Tick,
}

/// Samples per-component counters every `interval` ticks, producing the data
/// behind a per-phase Figure-5-style breakdown at any granularity.
///
/// Windows are aligned to `[k·interval, (k+1)·interval)` in global time;
/// each callback first flushes any windows the clock has passed, so empty
/// windows appear explicitly (with zero counters) rather than as gaps.
#[derive(Clone, Debug)]
pub struct IntervalProfiler {
    interval: Tick,
    window_start: Tick,
    phase: Phase,
    acc: TimelineSample,
    samples: Vec<TimelineSample>,
    skipped_windows: u64,
}

impl IntervalProfiler {
    /// A profiler sampling every `interval` ticks (clamped to at least 1).
    #[must_use]
    pub fn new(interval: Tick) -> IntervalProfiler {
        IntervalProfiler {
            interval: interval.max(1),
            window_start: 0,
            phase: Phase::Sequential,
            acc: TimelineSample::default(),
            samples: Vec::new(),
            skipped_windows: 0,
        }
    }

    /// The sampling interval in ticks.
    #[must_use]
    pub fn interval(&self) -> Tick {
        self.interval
    }

    /// Recorded windows, oldest first.
    #[must_use]
    pub fn samples(&self) -> &[TimelineSample] {
        &self.samples
    }

    /// Windows elided past [`MAX_TIMELINE_SAMPLES`].
    #[must_use]
    pub fn skipped_windows(&self) -> u64 {
        self.skipped_windows
    }

    fn flush_window(&mut self) {
        let mut sample = std::mem::take(&mut self.acc);
        sample.start = self.window_start;
        sample.phase = self.phase;
        if self.samples.len() < MAX_TIMELINE_SAMPLES {
            self.samples.push(sample);
        } else {
            self.skipped_windows += 1;
        }
        self.window_start += self.interval;
    }

    /// Flushes every window the clock has fully passed.
    fn roll(&mut self, now: Tick) {
        while now >= self.window_start + self.interval {
            self.flush_window();
        }
    }

    /// Aggregates the recorded timeline.
    #[must_use]
    pub fn summary(&self) -> TimelineSummary {
        let mut s = TimelineSummary {
            interval: self.interval,
            samples: self.samples.len() as u64,
            skipped_windows: self.skipped_windows,
            ..TimelineSummary::default()
        };
        for w in &self.samples {
            let dram = w.dram_reads + w.dram_writes;
            if dram > s.peak_dram_requests {
                s.peak_dram_requests = dram;
                s.busiest_window_start = w.start;
            }
            s.peak_llc_misses = s.peak_llc_misses.max(w.llc_misses);
            s.peak_interventions = s.peak_interventions.max(w.interventions);
        }
        s
    }
}

impl SimObserver for IntervalProfiler {
    fn on_phase_start(&mut self, _segment: usize, phase: Phase, now: Tick) {
        self.roll(now);
        self.phase = phase;
    }

    fn on_phase_end(&mut self, _segment: usize, _phase: Phase, _start: Tick, end: Tick) {
        self.roll(end);
    }

    fn on_comm(
        &mut self,
        _event: &CommEvent,
        action: &CommAction,
        _class: CommCostClass,
        now: Tick,
    ) {
        self.roll(now);
        self.acc.comm_events += 1;
        self.acc.comm_blocked_ticks += match *action {
            CommAction::Elide => 0,
            CommAction::Synchronous { ticks } => ticks,
            CommAction::Asynchronous { setup, .. } => setup,
        };
    }

    fn on_special(&mut self, _pu: PuKind, _op: &SpecialOp, _ticks: Tick, now: Tick) {
        self.roll(now);
    }

    fn on_access(
        &mut self,
        _pu: PuKind,
        level: ServiceLevel,
        _write: bool,
        _latency: Tick,
        now: Tick,
    ) {
        self.roll(now);
        match level {
            ServiceLevel::Llc => self.acc.shared_accesses += 1,
            ServiceLevel::Dram => {
                self.acc.shared_accesses += 1;
                self.acc.llc_misses += 1;
            }
            ServiceLevel::L1 | ServiceLevel::L2 => {}
        }
    }

    fn on_intervention(&mut self, _pu: PuKind, _kind: InterventionKind, now: Tick) {
        self.roll(now);
        self.acc.interventions += 1;
    }

    fn on_dram(&mut self, write: bool, row_hit: bool, now: Tick) {
        self.roll(now);
        if write {
            self.acc.dram_writes += 1;
        } else {
            self.acc.dram_reads += 1;
        }
        if !row_hit {
            self.acc.dram_row_misses += 1;
        }
    }

    fn on_instruction(&mut self, pu: PuKind, now: Tick) {
        self.roll(now);
        match pu {
            PuKind::Cpu => self.acc.cpu_instructions += 1,
            PuKind::Gpu => self.acc.gpu_instructions += 1,
        }
    }

    fn on_run_end(&mut self, now: Tick) {
        self.roll(now);
        // Flush the final partial window so trailing activity is visible.
        if self.acc != TimelineSample::default() || now > self.window_start {
            self.flush_window();
        }
    }
}

/// An event trace and/or an interval profiler behind one observer, for
/// callers (like the CLI) that attach either or both at runtime.
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    /// Typed event recording, when enabled.
    pub events: Option<EventTrace>,
    /// Timeline sampling, when enabled.
    pub timeline: Option<IntervalProfiler>,
}

impl Recorder {
    /// A recorder with the given parts enabled.
    #[must_use]
    pub fn new(events: Option<EventTrace>, timeline: Option<IntervalProfiler>) -> Recorder {
        Recorder { events, timeline }
    }
}

macro_rules! fan_out {
    ($self:ident, $method:ident ( $($arg:expr),* )) => {{
        if let Some(e) = $self.events.as_mut() {
            e.$method($($arg),*);
        }
        if let Some(t) = $self.timeline.as_mut() {
            t.$method($($arg),*);
        }
    }};
}

impl SimObserver for Recorder {
    fn on_phase_start(&mut self, segment: usize, phase: Phase, now: Tick) {
        fan_out!(self, on_phase_start(segment, phase, now));
    }

    fn on_phase_end(&mut self, segment: usize, phase: Phase, start: Tick, end: Tick) {
        fan_out!(self, on_phase_end(segment, phase, start, end));
    }

    fn on_comm(&mut self, event: &CommEvent, action: &CommAction, class: CommCostClass, now: Tick) {
        fan_out!(self, on_comm(event, action, class, now));
    }

    fn on_special(&mut self, pu: PuKind, op: &SpecialOp, ticks: Tick, now: Tick) {
        fan_out!(self, on_special(pu, op, ticks, now));
    }

    fn on_access(
        &mut self,
        pu: PuKind,
        level: ServiceLevel,
        write: bool,
        latency: Tick,
        now: Tick,
    ) {
        fan_out!(self, on_access(pu, level, write, latency, now));
    }

    fn on_intervention(&mut self, pu: PuKind, kind: InterventionKind, now: Tick) {
        fan_out!(self, on_intervention(pu, kind, now));
    }

    fn on_dram(&mut self, write: bool, row_hit: bool, now: Tick) {
        fan_out!(self, on_dram(write, row_hit, now));
    }

    fn on_instruction(&mut self, pu: PuKind, now: Tick) {
        fan_out!(self, on_instruction(pu, now));
    }

    fn on_fast_forward(&mut self, ticks: Tick, now: Tick) {
        fan_out!(self, on_fast_forward(ticks, now));
    }

    fn on_run_end(&mut self, now: Tick) {
        fan_out!(self, on_run_end(now));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut t = EventTrace::with_capacity(2);
        for i in 0..5u64 {
            t.on_dram(false, true, i);
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        assert_eq!(t.counts().dram_requests, 5);
        let kept: Vec<Tick> = t
            .events()
            .map(|e| match e {
                SimEvent::Dram { at, .. } => *at,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(kept, vec![3, 4]);
    }

    #[test]
    fn consecutive_shared_accesses_form_one_burst() {
        let mut t = EventTrace::new();
        for i in 0..10u64 {
            t.on_access(PuKind::Gpu, ServiceLevel::Dram, false, 100, i * 1_000);
        }
        t.on_run_end(10_000);
        assert_eq!(t.counts().miss_bursts, 1);
        assert_eq!(t.counts().shared_accesses, 10);
        let first = *t.events().next().expect("one event");
        match first {
            SimEvent::MissBurst { count, ticks, .. } => {
                assert_eq!(count, 10);
                assert_eq!(ticks, 9_000);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn gap_or_level_change_splits_bursts() {
        let mut t = EventTrace::new();
        t.on_access(PuKind::Cpu, ServiceLevel::Dram, false, 1, 0);
        t.on_access(
            PuKind::Cpu,
            ServiceLevel::Dram,
            false,
            1,
            DEFAULT_BURST_GAP + 2,
        );
        t.on_access(
            PuKind::Cpu,
            ServiceLevel::Llc,
            false,
            1,
            DEFAULT_BURST_GAP + 3,
        );
        t.on_run_end(DEFAULT_BURST_GAP + 4);
        assert_eq!(t.counts().miss_bursts, 3);
    }

    #[test]
    fn private_hits_are_not_recorded() {
        let mut t = EventTrace::new();
        t.on_access(PuKind::Cpu, ServiceLevel::L1, false, 1, 0);
        t.on_access(PuKind::Cpu, ServiceLevel::L2, true, 1, 10);
        t.on_run_end(20);
        assert!(t.is_empty());
        assert_eq!(t.counts().shared_accesses, 0);
    }

    #[test]
    fn profiler_windows_align_and_flush() {
        let mut p = IntervalProfiler::new(1_000);
        p.on_instruction(PuKind::Cpu, 10);
        p.on_instruction(PuKind::Cpu, 990);
        p.on_instruction(PuKind::Gpu, 1_500);
        p.on_dram(false, false, 2_500);
        p.on_run_end(2_600);
        let s = p.samples();
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].start, 0);
        assert_eq!(s[0].cpu_instructions, 2);
        assert_eq!(s[1].gpu_instructions, 1);
        assert_eq!(s[2].dram_reads, 1);
        assert_eq!(s[2].dram_row_misses, 1);
        let summary = p.summary();
        assert_eq!(summary.samples, 3);
        assert_eq!(summary.peak_dram_requests, 1);
        assert_eq!(summary.busiest_window_start, 2_000);
    }

    #[test]
    fn profiler_attributes_windows_to_the_active_phase() {
        let mut p = IntervalProfiler::new(100);
        p.on_phase_start(0, Phase::Parallel, 0);
        p.on_instruction(PuKind::Gpu, 50);
        p.on_phase_end(0, Phase::Parallel, 0, 250);
        p.on_phase_start(1, Phase::Communication, 250);
        p.on_run_end(300);
        let s = p.samples();
        assert!(s.len() >= 3);
        assert_eq!(s[0].phase, Phase::Parallel);
        assert_eq!(s.last().expect("non-empty").phase, Phase::Communication);
    }

    #[test]
    fn event_counts_accumulate() {
        let mut total = EventCounts::default();
        let one = EventCounts {
            dram_requests: 3,
            dram_row_misses: 1,
            comm_events: 2,
            ..Default::default()
        };
        total += one;
        total += one;
        assert_eq!(total.dram_requests, 6);
        assert_eq!(total.dram_row_misses, 2);
        assert_eq!(total.comm_events, 4);
        assert_eq!(total.phase_starts, 0);
    }

    #[test]
    fn recorder_fans_out_to_both_parts() {
        let mut r = Recorder::new(Some(EventTrace::new()), Some(IntervalProfiler::new(1_000)));
        r.on_dram(true, false, 10);
        r.on_run_end(20);
        assert_eq!(r.events.as_ref().expect("events").counts().dram_requests, 1);
        assert_eq!(
            r.timeline.as_ref().expect("timeline").samples()[0].dram_writes,
            1
        );
    }
}
