//! The on-chip interconnect between the PUs and the LLC tiles.
//!
//! The baseline is Table II's ring bus: the two PUs and the four LLC tiles
//! sit on a six-stop ring (`CPU, tile0, tile1, GPU, tile2, tile3`) and a
//! request pays the per-hop latency for the shorter way around. Two
//! alternative topologies from the design space (Table I's "Connection"
//! column) are also modelled: a full **crossbar** (flat one-hop latency)
//! and a single shared **bus** (one hop, but every transfer serializes on
//! the medium).

use crate::clock::{ClockDomain, Tick};
use crate::config::{NocConfig, NocTopology};
use hetmem_trace::PuKind;

/// Number of stops on the baseline ring (2 PUs + 4 LLC tiles).
pub const RING_STOPS: u32 = 6;

/// The interconnect.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interconnect {
    topology: NocTopology,
    hop_cycles: u64,
    bus_occupancy_cycles: u64,
    bus_free_at: Tick,
    transfers: u64,
    bus_wait_ticks: u64,
}

/// The baseline ring interconnect (alias kept for the Table II wording).
pub type RingBus = Interconnect;

impl Interconnect {
    /// Creates the interconnect from its configuration.
    #[must_use]
    pub fn new(config: &NocConfig) -> Interconnect {
        Interconnect {
            topology: config.topology,
            hop_cycles: config.hop_cycles,
            bus_occupancy_cycles: config.bus_occupancy_cycles,
            bus_free_at: 0,
            transfers: 0,
            bus_wait_ticks: 0,
        }
    }

    /// Frees the bus and zeroes the counters (power-on state).
    pub fn reset(&mut self) {
        self.bus_free_at = 0;
        self.transfers = 0;
        self.bus_wait_ticks = 0;
    }

    fn pu_stop(pu: PuKind) -> u32 {
        match pu {
            PuKind::Cpu => 0,
            PuKind::Gpu => 3,
        }
    }

    fn tile_stop(tile: u32) -> u32 {
        match tile {
            0 => 1,
            1 => 2,
            2 => 4,
            3 => 5,
            _ => panic!("baseline ring has 4 LLC tiles, got tile {tile}"),
        }
    }

    /// Ring distance in hops between a PU and an LLC tile.
    ///
    /// # Panics
    ///
    /// Panics if `tile >= 4`.
    #[must_use]
    pub fn hops(pu: PuKind, tile: u32) -> u32 {
        let a = Interconnect::pu_stop(pu);
        let b = Interconnect::tile_stop(tile);
        let d = a.abs_diff(b);
        d.min(RING_STOPS - d)
    }

    /// Contention-free one-way traversal latency from `pu` to `tile`, in
    /// global ticks. Used for cost estimates (e.g. coherence interventions)
    /// where queueing is second-order.
    #[must_use]
    pub fn traverse_ticks(&self, pu: PuKind, tile: u32) -> Tick {
        let hops = match self.topology {
            NocTopology::Ring => u64::from(Interconnect::hops(pu, tile)),
            NocTopology::Crossbar | NocTopology::Bus => 1,
        };
        ClockDomain::CPU.cycles_to_ticks(hops * self.hop_cycles)
    }

    /// Performs a one-way traversal starting at `now`, including medium
    /// contention for the bus topology. Returns the latency in ticks.
    pub fn traverse(&mut self, pu: PuKind, tile: u32, now: Tick) -> Tick {
        self.transfers += 1;
        let wire = self.traverse_ticks(pu, tile);
        match self.topology {
            NocTopology::Ring | NocTopology::Crossbar => wire,
            NocTopology::Bus => {
                let start = now.max(self.bus_free_at);
                let wait = start - now;
                self.bus_wait_ticks += wait;
                let occupancy = ClockDomain::CPU.cycles_to_ticks(self.bus_occupancy_cycles);
                self.bus_free_at = start + occupancy;
                wait + wire + occupancy
            }
        }
    }

    /// (transfers performed, ticks spent waiting for the bus).
    #[must_use]
    pub fn contention_stats(&self) -> (u64, u64) {
        (self.transfers, self.bus_wait_ticks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(topology: NocTopology) -> NocConfig {
        NocConfig {
            topology,
            ..NocConfig::default()
        }
    }

    #[test]
    fn distances_are_symmetric_and_short() {
        // CPU (stop 0) to tile0 (stop 1): 1 hop; to tile3 (stop 5): 1 hop
        // the short way round.
        assert_eq!(Interconnect::hops(PuKind::Cpu, 0), 1);
        assert_eq!(Interconnect::hops(PuKind::Cpu, 1), 2);
        assert_eq!(Interconnect::hops(PuKind::Cpu, 2), 2);
        assert_eq!(Interconnect::hops(PuKind::Cpu, 3), 1);
        // GPU (stop 3) neighbours tiles 1 (stop 2) and 2 (stop 4).
        assert_eq!(Interconnect::hops(PuKind::Gpu, 1), 1);
        assert_eq!(Interconnect::hops(PuKind::Gpu, 2), 1);
        assert_eq!(Interconnect::hops(PuKind::Gpu, 0), 2);
        assert_eq!(Interconnect::hops(PuKind::Gpu, 3), 2);
    }

    #[test]
    fn no_hop_exceeds_half_the_ring() {
        for pu in PuKind::ALL {
            for tile in 0..4 {
                assert!(Interconnect::hops(pu, tile) <= RING_STOPS / 2);
            }
        }
    }

    #[test]
    fn ring_latency_scales_with_hops() {
        let ring = Interconnect::new(&cfg(NocTopology::Ring));
        let one_hop = ring.traverse_ticks(PuKind::Cpu, 0);
        let two_hop = ring.traverse_ticks(PuKind::Cpu, 1);
        assert_eq!(two_hop, 2 * one_hop);
        assert_eq!(one_hop, ClockDomain::CPU.cycles_to_ticks(2));
    }

    #[test]
    fn crossbar_latency_is_flat() {
        let xbar = Interconnect::new(&cfg(NocTopology::Crossbar));
        let lat: Vec<Tick> = (0..4)
            .map(|t| xbar.traverse_ticks(PuKind::Cpu, t))
            .collect();
        assert!(lat.windows(2).all(|w| w[0] == w[1]));
        // And never slower than the ring's best case.
        let ring = Interconnect::new(&cfg(NocTopology::Ring));
        assert!(lat[1] < ring.traverse_ticks(PuKind::Cpu, 1));
    }

    #[test]
    fn bus_serializes_concurrent_transfers() {
        let mut bus = Interconnect::new(&cfg(NocTopology::Bus));
        let first = bus.traverse(PuKind::Cpu, 0, 0);
        let second = bus.traverse(PuKind::Gpu, 1, 0);
        assert!(second > first, "second transfer waits for the medium");
        let (transfers, waited) = bus.contention_stats();
        assert_eq!(transfers, 2);
        assert!(waited > 0);
        // After the bus drains, latency returns to the uncontended value.
        let later = bus.traverse(PuKind::Cpu, 0, 1_000_000);
        assert_eq!(later, first);
    }

    #[test]
    fn ring_and_crossbar_have_no_contention() {
        for topo in [NocTopology::Ring, NocTopology::Crossbar] {
            let mut ic = Interconnect::new(&cfg(topo));
            let a = ic.traverse(PuKind::Cpu, 0, 0);
            let b = ic.traverse(PuKind::Cpu, 0, 0);
            assert_eq!(a, b, "{topo:?}");
            assert_eq!(ic.contention_stats().1, 0);
        }
    }

    #[test]
    #[should_panic(expected = "4 LLC tiles")]
    fn invalid_tile_panics() {
        let _ = Interconnect::hops(PuKind::Cpu, 4);
    }
}
