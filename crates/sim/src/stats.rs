//! Run reports: the per-phase cycle breakdown of Figure 5 plus all
//! microarchitectural counters.

use crate::clock::{ticks_to_ns, Tick};
use crate::cpu::CpuStats;
use crate::gpu::GpuStats;
use crate::hierarchy::HierarchyStats;
use hetmem_trace::Phase;

/// The result of simulating one kernel trace on one design point.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunReport {
    /// Kernel name the trace was generated from.
    pub kernel: String,
    /// Ticks spent in sequential segments.
    pub sequential_ticks: Tick,
    /// Ticks spent in parallel segments (communication delays excluded).
    pub parallel_ticks: Tick,
    /// Ticks attributable to communication (transfers, ownership,
    /// page faults, and any un-hidden asynchronous copy tail).
    pub communication_ticks: Tick,
    /// Ticks the engine crossed inside granted event-wheel wake windows or
    /// extrapolated sampling skips, rather than under per-step global
    /// arbitration. Always zero in [`crate::ExecMode::Accurate`]; purely
    /// informational in `EventDriven` (timing is still cycle-exact);
    /// counts genuinely estimated ticks in `Sampled`. Not part of
    /// [`RunReport::total_ticks`] — the phase ticks already include these
    /// spans.
    pub fast_forwarded_ticks: Tick,
    /// Memory-system counters.
    pub hierarchy: HierarchyStats,
    /// CPU core counters.
    pub cpu: CpuStats,
    /// GPU core counters.
    pub gpu: GpuStats,
}

impl RunReport {
    /// Total execution ticks.
    #[must_use]
    pub fn total_ticks(&self) -> Tick {
        self.sequential_ticks + self.parallel_ticks + self.communication_ticks
    }

    /// Ticks attributed to `phase`.
    #[must_use]
    pub fn phase_ticks(&self, phase: Phase) -> Tick {
        match phase {
            Phase::Sequential => self.sequential_ticks,
            Phase::Parallel => self.parallel_ticks,
            Phase::Communication => self.communication_ticks,
        }
    }

    /// Fraction of total time spent in `phase`, in `[0, 1]`. Zero for an
    /// empty run.
    #[must_use]
    pub fn phase_fraction(&self, phase: Phase) -> f64 {
        let total = self.total_ticks();
        if total == 0 {
            0.0
        } else {
            self.phase_ticks(phase) as f64 / total as f64
        }
    }

    /// Total execution time in nanoseconds.
    #[must_use]
    pub fn total_ns(&self) -> f64 {
        ticks_to_ns(self.total_ticks())
    }

    /// Communication time in nanoseconds.
    #[must_use]
    pub fn communication_ns(&self) -> f64 {
        ticks_to_ns(self.communication_ticks)
    }

    /// Derived microarchitectural rates.
    #[must_use]
    pub fn derived(&self) -> DerivedStats {
        let safe_div = |num: f64, den: f64| if den == 0.0 { 0.0 } else { num / den };
        let cpu_cycles = crate::clock::ClockDomain::CPU.ticks_to_cycles(self.total_ticks()) as f64;
        let gpu_cycles = crate::clock::ClockDomain::GPU.ticks_to_cycles(self.total_ticks()) as f64;
        let per_kilo = |events: u64, insts: u64| safe_div(events as f64 * 1000.0, insts as f64);
        let dram_bytes = (self.hierarchy.dram.reads + self.hierarchy.dram.writes) * 64;
        DerivedStats {
            cpu_ipc: safe_div(self.cpu.instructions as f64, cpu_cycles),
            gpu_ipc: safe_div(self.gpu.instructions as f64, gpu_cycles),
            cpu_l1_mpki: per_kilo(self.hierarchy.cpu_l1d.misses, self.cpu.instructions),
            gpu_l1_mpki: per_kilo(self.hierarchy.gpu_l1d.misses, self.gpu.instructions),
            llc_mpki: per_kilo(
                self.hierarchy.llc.misses,
                self.cpu.instructions + self.gpu.instructions,
            ),
            branch_mpki: per_kilo(self.cpu.mispredictions, self.cpu.instructions),
            dram_bandwidth_gbps: safe_div(dram_bytes as f64, self.total_ns()),
        }
    }
}

/// Rates derived from a [`RunReport`]'s raw counters: IPC per PU, misses
/// per kilo-instruction, and achieved DRAM bandwidth.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DerivedStats {
    /// CPU instructions per CPU cycle (over total runtime).
    pub cpu_ipc: f64,
    /// GPU instructions per GPU cycle (over total runtime).
    pub gpu_ipc: f64,
    /// CPU L1D misses per 1000 CPU instructions.
    pub cpu_l1_mpki: f64,
    /// GPU L1D misses per 1000 GPU instructions.
    pub gpu_l1_mpki: f64,
    /// LLC misses per 1000 instructions (both PUs).
    pub llc_mpki: f64,
    /// Branch mispredictions per 1000 CPU instructions.
    pub branch_mpki: f64,
    /// Achieved DRAM bandwidth in GB/s (bytes / total time).
    pub dram_bandwidth_gbps: f64,
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let derived = self.derived();
        write!(
            f,
            "{}: total {:.1} µs (seq {:.1}%, par {:.1}%, comm {:.1}%) | IPC cpu {:.2} gpu {:.2}",
            self.kernel,
            self.total_ns() / 1000.0,
            100.0 * self.phase_fraction(Phase::Sequential),
            100.0 * self.phase_fraction(Phase::Parallel),
            100.0 * self.phase_fraction(Phase::Communication),
            derived.cpu_ipc,
            derived.gpu_ipc,
        )?;
        // Label fast-forwarded time distinctly from executed time so fast
        //-mode output never passes itself off as fully detailed.
        if self.fast_forwarded_ticks > 0 {
            write!(
                f,
                " | fast-forwarded {:.1} µs",
                ticks_to_ns(self.fast_forwarded_ticks) / 1000.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        let r = RunReport {
            kernel: "demo".into(),
            sequential_ticks: 100,
            parallel_ticks: 700,
            communication_ticks: 200,
            ..RunReport::default()
        };
        assert_eq!(r.total_ticks(), 1000);
        let sum: f64 = Phase::ALL.iter().map(|&p| r.phase_fraction(p)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(r.phase_ticks(Phase::Parallel), 700);
    }

    #[test]
    fn empty_run_has_zero_fractions() {
        let r = RunReport::default();
        assert_eq!(r.total_ticks(), 0);
        assert_eq!(r.phase_fraction(Phase::Parallel), 0.0);
    }

    #[test]
    fn derived_rates_are_finite_and_bounded() {
        let r = RunReport::default();
        let d = r.derived();
        assert_eq!(d.cpu_ipc, 0.0);
        assert_eq!(d.dram_bandwidth_gbps, 0.0);

        let mut r = RunReport {
            parallel_ticks: 12_000,
            ..RunReport::default()
        };
        r.cpu.instructions = 4_000; // 1000 CPU cycles at 12 ticks/cycle
        r.cpu.mispredictions = 40;
        r.hierarchy.cpu_l1d.misses = 80;
        let d = r.derived();
        assert!((d.cpu_ipc - 4.0).abs() < 1e-9, "{}", d.cpu_ipc);
        assert!((d.branch_mpki - 10.0).abs() < 1e-9);
        assert!((d.cpu_l1_mpki - 20.0).abs() < 1e-9);
    }

    #[test]
    fn display_is_informative() {
        let mut r = RunReport {
            kernel: "reduction".into(),
            parallel_ticks: 12_000,
            ..RunReport::default()
        };
        r.cpu.instructions = 4_000; // IPC 4.00 at 1000 CPU cycles
        let s = r.to_string();
        assert!(s.contains("reduction"));
        assert!(s.contains("par"));
        assert!(s.contains("IPC cpu 4.00"), "{s}");
    }

    #[test]
    fn display_labels_fast_forwarded_time_only_when_present() {
        let mut r = RunReport {
            kernel: "reduction".into(),
            parallel_ticks: 12_000,
            ..RunReport::default()
        };
        assert!(!r.to_string().contains("fast-forwarded"));
        r.fast_forwarded_ticks = 42_000; // 1 µs at 42 ticks/ns
        let s = r.to_string();
        assert!(s.contains("fast-forwarded 1.0 µs"), "{s}");
        // Fast-forwarded spans are already inside the phase ticks.
        assert_eq!(r.total_ticks(), 12_000);
    }
}
