//! DDR3-1333 DRAM model (Table II: 4 controllers, 41.6 GB/s, FR-FCFS).
//!
//! Each channel has independent banks with open-row state. Under the
//! baseline [`DramPolicy::FrFcfs`] policy rows stay open, so consecutive
//! accesses to the same row pay only CAS latency — the "first-ready" half of
//! FR-FCFS. (Because the trace-driven cores issue requests in near-global
//! time order, the *reordering* half contributes little and is approximated
//! by the open-row state; the FCFS ablation closes the row after every
//! access.) The data burst occupies the channel, which is what caps the
//! aggregate bandwidth at the configured ~41.6 GB/s.

use crate::clock::{ClockDomain, Tick};
use crate::config::{DramConfig, DramPolicy};

/// Counters for the DRAM subsystem.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Read requests serviced.
    pub reads: u64,
    /// Write requests serviced.
    pub writes: u64,
    /// Requests that hit an open row.
    pub row_hits: u64,
    /// Requests that required activate (and possibly precharge).
    pub row_misses: u64,
    /// Total ticks the channels' data buses were busy (for bandwidth
    /// accounting).
    pub bus_busy_ticks: u64,
}

impl DramStats {
    /// Total requests serviced (reads plus writes).
    #[must_use]
    pub fn total_requests(&self) -> u64 {
        self.reads + self.writes
    }

    /// Row-hit rate in `[0, 1]`; zero with no traffic.
    #[must_use]
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Bank {
    open_row: Option<u64>,
    free_at: Tick,
}

#[derive(Clone, Debug)]
struct Channel {
    banks: Vec<Bank>,
    bus_free_at: Tick,
}

/// The DRAM subsystem: address-interleaved channels of banked DDR3.
#[derive(Clone, Debug)]
pub struct Dram {
    channels: Vec<Channel>,
    config: DramConfig,
    stats: DramStats,
}

/// Completion information for one DRAM request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DramResponse {
    /// Tick at which the requested line is available (reads) or accepted
    /// (writes).
    pub done_at: Tick,
    /// Whether the request hit the open row.
    pub row_hit: bool,
}

impl Dram {
    /// Creates the DRAM subsystem.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero channels or banks.
    #[must_use]
    pub fn new(config: &DramConfig) -> Dram {
        assert!(
            config.channels > 0 && config.banks_per_channel > 0,
            "degenerate DRAM geometry"
        );
        let channel = Channel {
            banks: vec![Bank::default(); config.banks_per_channel as usize],
            bus_free_at: 0,
        };
        Dram {
            channels: vec![channel; config.channels as usize],
            config: *config,
            stats: DramStats::default(),
        }
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Closes every row, frees every bus, and zeroes the counters
    /// (power-on state).
    pub fn reset(&mut self) {
        for channel in &mut self.channels {
            channel.bus_free_at = 0;
            for bank in &mut channel.banks {
                *bank = Bank::default();
            }
        }
        self.stats = DramStats::default();
    }

    fn map(&self, addr: u64) -> (usize, usize, u64) {
        // Line-interleaved channels, bank bits above, row above that — the
        // classic scheme that spreads streams across channels and banks.
        let line = addr / 64;
        let channel = (line % u64::from(self.config.channels)) as usize;
        let bank_space = line / u64::from(self.config.channels);
        let bank = (bank_space % u64::from(self.config.banks_per_channel)) as usize;
        let row = addr / self.config.row_bytes;
        (channel, bank, row)
    }

    /// Services a 64-byte line request arriving at `arrival`.
    pub fn request(&mut self, arrival: Tick, addr: u64, write: bool) -> DramResponse {
        let (ch_idx, bank_idx, row) = self.map(addr);
        let cfg = self.config;
        let ch = &mut self.channels[ch_idx];
        let bank = &mut ch.banks[bank_idx];

        let start = arrival.max(bank.free_at);

        let (access_cycles, row_hit) = match cfg.policy {
            DramPolicy::FrFcfs => match bank.open_row {
                Some(open) if open == row => (cfg.cas_cycles, true),
                Some(_) => (cfg.rp_cycles + cfg.rcd_cycles + cfg.cas_cycles, false),
                None => (cfg.rcd_cycles + cfg.cas_cycles, false),
            },
            // Closed-page FCFS: every access activates; auto-precharge is
            // overlapped after the burst.
            DramPolicy::Fcfs => (cfg.rcd_cycles + cfg.cas_cycles, false),
        };

        let access_ticks = ClockDomain::DRAM.cycles_to_ticks(access_cycles);
        let burst_ticks = ClockDomain::DRAM.cycles_to_ticks(cfg.burst_cycles);
        // Bank timing can overlap other requests; only the data burst
        // serializes on the channel bus.
        let data_start = (start + access_ticks).max(ch.bus_free_at);
        let done_at = data_start + burst_ticks;

        bank.open_row = match cfg.policy {
            DramPolicy::FrFcfs => Some(row),
            DramPolicy::Fcfs => None,
        };
        bank.free_at = done_at;
        // The data bus is occupied only for the burst.
        ch.bus_free_at = done_at;

        self.stats.bus_busy_ticks += burst_ticks;
        if write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        if row_hit {
            self.stats.row_hits += 1;
        } else {
            self.stats.row_misses += 1;
        }

        DramResponse { done_at, row_hit }
    }

    /// Idle read latency (no contention, row miss) in ticks — useful as a
    /// sanity reference in tests and reports.
    #[must_use]
    pub fn idle_latency_ticks(&self) -> Tick {
        ClockDomain::DRAM.cycles_to_ticks(
            self.config.rcd_cycles + self.config.cas_cycles + self.config.burst_cycles,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram(policy: DramPolicy) -> Dram {
        Dram::new(&DramConfig {
            policy,
            ..DramConfig::default()
        })
    }

    #[test]
    fn idle_latency_is_about_33ns() {
        // RCD(9) + CAS(9) + burst(4) = 22 bus cycles × 1.5 ns = 33 ns.
        let d = dram(DramPolicy::FrFcfs);
        let ns = crate::clock::ticks_to_ns(d.idle_latency_ticks());
        assert!((ns - 33.0).abs() < 0.5, "{ns} ns");
    }

    #[test]
    fn open_row_makes_second_access_faster() {
        let mut d = dram(DramPolicy::FrFcfs);
        let a = d.request(0, 0x0, false);
        assert!(!a.row_hit);
        // An unrelated same-channel access on another bank in between.
        let b = d.request(a.done_at, 1024, false);
        // An address mapping to channel 0, bank 0, same row as `a`:
        // line-interleave: line % 4 == 0 and (line/4) % 8 == 0 → line ≡ 0 (mod 32),
        // i.e. addr multiple of 2048, within the same 8 KB row.
        let c = d.request(b.done_at.max(a.done_at), 2048, false);
        assert!(c.row_hit);
        let hit_lat = c.done_at - b.done_at.max(a.done_at);
        let miss_lat = a.done_at;
        assert!(hit_lat < miss_lat, "hit {hit_lat} vs miss {miss_lat}");
    }

    #[test]
    fn fcfs_never_row_hits() {
        let mut d = dram(DramPolicy::Fcfs);
        let mut t = 0;
        for _ in 0..10 {
            let r = d.request(t, 2048, false);
            assert!(!r.row_hit);
            t = r.done_at;
        }
        assert_eq!(d.stats().row_hits, 0);
        assert_eq!(d.stats().row_misses, 10);
    }

    #[test]
    fn channel_contention_serializes_bursts() {
        let mut d = dram(DramPolicy::FrFcfs);
        // Two simultaneous requests to the same channel (lines 0 and 4 both
        // map to channel 0) must serialize on the data bus.
        let a = d.request(0, 0, false);
        let b = d.request(0, 64 * 4 * 8, false); // same channel, different bank
        assert!(b.done_at > a.done_at);
    }

    #[test]
    fn different_channels_overlap() {
        let mut d = dram(DramPolicy::FrFcfs);
        let a = d.request(0, 0, false); // channel 0
        let b = d.request(0, 64, false); // channel 1
                                         // Identical timing: full overlap across channels.
        assert_eq!(a.done_at, b.done_at);
    }

    #[test]
    fn streaming_bandwidth_near_configured_peak() {
        let mut d = dram(DramPolicy::FrFcfs);
        // Saturate: back-to-back line reads across all channels.
        let lines = 4096u64;
        let mut done = 0;
        for i in 0..lines {
            done = d.request(0, i * 64, false).done_at.max(done);
        }
        let ns = crate::clock::ticks_to_ns(done);
        let gbps = (lines * 64) as f64 / ns; // bytes per ns = GB/s
        assert!(
            gbps > 30.0 && gbps < 45.0,
            "streaming bandwidth {gbps} GB/s"
        );
    }

    #[test]
    fn stats_count_reads_and_writes() {
        let mut d = dram(DramPolicy::FrFcfs);
        d.request(0, 0, false);
        d.request(0, 64, true);
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.stats().writes, 1);
    }
}
