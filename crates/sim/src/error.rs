//! The simulator-wide error type and its process exit-code mapping.

use std::fmt;

/// Everything that can go wrong building or running a simulation.
///
/// One enum replaces the previous mix of ad-hoc `String` errors and panics
/// across `hetmem-sim` and `hetmem-xplore`, and carries the CLI's uniform
/// exit-code policy: usage errors exit 2, runtime errors exit 1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The system configuration is internally inconsistent.
    InvalidConfig(String),
    /// The trace contains no phase segments, so there is nothing to run.
    EmptyTrace,
    /// The trace is structurally malformed (wrong streams for its phases).
    MalformedTrace(String),
    /// Observer or result I/O failed (event/timeline files, cache dirs).
    Io(String),
    /// The invocation itself was wrong (bad flags, unsupported format).
    Usage(String),
    /// The static checker reported findings at or above the denied
    /// severity (Error by default) — the findings themselves went to
    /// stdout; this maps the run to exit 1.
    CheckFailed {
        /// Number of failing findings.
        errors: usize,
    },
    /// `fix --deny unchanged` ran and the optimizer found nothing to
    /// change in any selected program × model pair.
    FixUnchanged {
        /// Number of program × model pairs inspected.
        pairs: usize,
    },
    /// The work was cancelled before it completed (a service shutting
    /// down, or a caller abandoning a sweep).
    Cancelled,
    /// The caller's deadline expired before the work could run.
    DeadlineExceeded {
        /// Milliseconds the work waited before the deadline was
        /// discovered to have passed.
        waited_ms: u64,
    },
    /// A cluster peer could not be reached (connect, send, or receive
    /// failed, or the reply was malformed). Callers fall back to local
    /// execution or to the rehashed ring.
    PeerUnavailable {
        /// The peer's advertised cluster address.
        peer: String,
    },
}

impl SimError {
    /// Process exit code the CLI maps this error to.
    #[must_use]
    pub fn exit_code(&self) -> i32 {
        match self {
            SimError::Usage(_) => 2,
            _ => 1,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::EmptyTrace => write!(f, "trace has no phase segments"),
            SimError::MalformedTrace(msg) => write!(f, "malformed trace: {msg}"),
            SimError::Io(msg) => write!(f, "{msg}"),
            SimError::Usage(msg) => write!(f, "{msg}"),
            SimError::CheckFailed { errors } => {
                write!(
                    f,
                    "check failed: {errors} finding(s) at the denied severity"
                )
            }
            SimError::FixUnchanged { pairs } => {
                write!(f, "fix: no changes across {pairs} program x model pair(s)")
            }
            SimError::Cancelled => write!(f, "cancelled before completion"),
            SimError::DeadlineExceeded { waited_ms } => {
                write!(f, "deadline exceeded after waiting {waited_ms} ms")
            }
            SimError::PeerUnavailable { peer } => {
                write!(f, "cluster peer {peer} is unavailable")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<std::io::Error> for SimError {
    fn from(err: std::io::Error) -> SimError {
        SimError::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_follow_cli_policy() {
        assert_eq!(SimError::Usage("bad flag".into()).exit_code(), 2);
        assert_eq!(SimError::EmptyTrace.exit_code(), 1);
        assert_eq!(SimError::Io("disk".into()).exit_code(), 1);
        assert_eq!(SimError::InvalidConfig("zero sets".into()).exit_code(), 1);
        assert_eq!(SimError::CheckFailed { errors: 3 }.exit_code(), 1);
        assert_eq!(SimError::FixUnchanged { pairs: 4 }.exit_code(), 1);
        assert_eq!(SimError::Cancelled.exit_code(), 1);
        assert_eq!(SimError::DeadlineExceeded { waited_ms: 5 }.exit_code(), 1);
        assert_eq!(
            SimError::PeerUnavailable {
                peer: "127.0.0.1:9301".into()
            }
            .exit_code(),
            1
        );
    }

    #[test]
    fn io_errors_convert() {
        let err = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        assert_eq!(SimError::from(err), SimError::Io("gone".into()));
    }
}
