//! # hetmem-sim
//!
//! A cycle-level, trace-driven heterogeneous CPU+GPU simulator — the
//! substrate the paper built on MacSim, reimplemented from scratch.
//!
//! The baseline system (Table II of the paper) is one out-of-order CPU core
//! (3.5 GHz, gshare) and one in-order 8-wide-SIMD GPU core (1.5 GHz,
//! stall-on-branch, 16 KB software-managed scratchpad) sharing a 4-tile
//! 8 MB LLC over a ring bus, backed by 4 channels of DDR3-1333 scheduled
//! FR-FCFS, with MSI directory coherence between the PUs' private caches.
//!
//! Communication between the PUs is executed per semantic event according to
//! a pluggable [`CommModel`], parameterized by the paper's Table IV costs
//! ([`CommCosts`]): `api-pci`, `api-acq`, `api-tr`, and `lib-pf`.
//!
//! ## Example
//!
//! ```
//! use hetmem_sim::{FabricKind, Simulation};
//! use hetmem_trace::kernels::{Kernel, KernelParams};
//!
//! let trace = Kernel::Reduction.generate(&KernelParams::scaled(64));
//! let report = Simulation::builder()
//!     .fabric(FabricKind::PciExpress)
//!     .build()
//!     .expect("baseline config is valid")
//!     .run(&trace)
//!     .expect("generated traces are well-formed");
//! assert!(report.total_ticks() > 0);
//! println!("{report}");
//! ```
//!
//! To watch the run as it happens, attach an observer — an [`EventTrace`]
//! for typed events, an [`IntervalProfiler`] for a counter timeline, or a
//! [`Recorder`] bundling both:
//!
//! ```
//! use hetmem_sim::{EventTrace, Simulation};
//! use hetmem_trace::kernels::{Kernel, KernelParams};
//!
//! let trace = Kernel::Reduction.generate(&KernelParams::scaled(8));
//! let mut sim = Simulation::builder()
//!     .observer(EventTrace::new())
//!     .build()
//!     .expect("valid config");
//! sim.run(&trace).expect("well-formed trace");
//! let events = sim.into_observer();
//! assert!(events.counts().dram_requests > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bpred;
mod builder;
mod cache;
mod clock;
mod coherence;
mod config;
mod cpu;
mod dram;
mod energy;
mod error;
mod exec;
mod fabric;
mod gpu;
mod hierarchy;
mod noc;
mod obs;
mod stats;
mod system;
mod tlb;

pub use bpred::Gshare;
pub use builder::{Simulation, SimulationBuilder};
pub use cache::{Cache, CacheStats, Evicted, Lookup, Placement};
pub use clock::{ticks_to_ns, ClockDomain, Tick, TICKS_PER_SECOND};
pub use coherence::{CoherenceStats, Directory, Intervention, InterventionKind, LineState};
pub use config::{
    CacheConfig, CpuConfig, DramConfig, DramPolicy, GpuConfig, LlcConfig, MmuConfig, NocConfig,
    NocTopology, SystemConfig,
};
pub use cpu::{CpuCore, CpuRun, CpuStats};
pub use dram::{Dram, DramResponse, DramStats};
pub use energy::{estimate_energy, CommTraffic, EnergyBreakdown, EnergyParams};
pub use error::SimError;
pub use exec::{ExecMode, DEFAULT_DETAIL_WINDOW, DEFAULT_WARM_INTERVAL};
pub use fabric::{CommAction, CommCostClass, CommCosts, CommModel, FabricKind, SynchronousFabric};
pub use gpu::{GpuCore, GpuRun, GpuStats, Scratchpad};
pub use hierarchy::{AccessResult, HierarchyStats, MemoryHierarchy, ServiceLevel};
pub use noc::{Interconnect, RingBus, RING_STOPS};
pub use obs::{
    EventCounts, EventTrace, IntervalProfiler, NullObserver, Recorder, SimEvent, SimObserver,
    TimelineSample, TimelineSummary, DEFAULT_BURST_GAP, DEFAULT_EVENT_CAPACITY,
    MAX_TIMELINE_SAMPLES,
};
pub use stats::{DerivedStats, RunReport};
pub use system::System;
pub use tlb::{Tlb, TlbStats};
