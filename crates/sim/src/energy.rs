//! A post-hoc energy model over run statistics.
//!
//! The paper's conclusion motivates the partially shared space with
//! "opportunities to optimize hardware and save power/energy" (§VII); this
//! module provides the estimator those comparisons need. Energy is
//! computed from the counters a [`crate::RunReport`] already carries —
//! instructions by class, cache accesses by level, DRAM traffic, and
//! communication time — using per-event energy constants in picojoules
//! (defaults in the range of published 32 nm-era numbers; every constant is
//! a tunable field).

use crate::stats::RunReport;

/// Per-event energy constants, in picojoules.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyParams {
    /// Energy per CPU instruction's core pipeline work.
    pub cpu_inst_pj: f64,
    /// Energy per GPU instruction (8-wide SIMD datapath).
    pub gpu_inst_pj: f64,
    /// Energy per L1 access.
    pub l1_access_pj: f64,
    /// Energy per L2 access.
    pub l2_access_pj: f64,
    /// Energy per LLC tile access.
    pub llc_access_pj: f64,
    /// Energy per DRAM line (64 B) transferred.
    pub dram_line_pj: f64,
    /// Energy per byte crossing a PCI-E link.
    pub pci_byte_pj: f64,
    /// Energy per byte copied through the memory controllers.
    pub memctl_byte_pj: f64,
    /// Static/leakage power in milliwatts, charged over total runtime.
    pub static_mw: f64,
}

impl Default for EnergyParams {
    fn default() -> EnergyParams {
        EnergyParams {
            cpu_inst_pj: 70.0,
            gpu_inst_pj: 25.0,
            l1_access_pj: 10.0,
            l2_access_pj: 30.0,
            llc_access_pj: 100.0,
            dram_line_pj: 2_000.0,
            pci_byte_pj: 15.0,
            memctl_byte_pj: 2.0,
            static_mw: 500.0,
        }
    }
}

/// An energy estimate, broken down by component (all in microjoules).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Core pipelines (both PUs).
    pub cores_uj: f64,
    /// All caches.
    pub caches_uj: f64,
    /// DRAM.
    pub dram_uj: f64,
    /// Inter-PU communication fabric.
    pub comm_uj: f64,
    /// Static/leakage energy over the runtime.
    pub static_uj: f64,
}

impl EnergyBreakdown {
    /// Total energy in microjoules.
    #[must_use]
    pub fn total_uj(&self) -> f64 {
        self.cores_uj + self.caches_uj + self.dram_uj + self.comm_uj + self.static_uj
    }
}

/// Bytes moved across the inter-PU fabric, needed for the communication
/// term (the report's counters do not retain per-event byte totals, so the
/// caller supplies them — `PhasedTrace::comm_bytes()` for a whole trace).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommTraffic {
    /// Bytes that crossed a PCI-class link.
    pub pci_bytes: u64,
    /// Bytes copied through the memory controllers.
    pub memctl_bytes: u64,
}

/// Estimates energy for a finished run.
#[must_use]
pub fn estimate_energy(
    report: &RunReport,
    traffic: CommTraffic,
    params: &EnergyParams,
) -> EnergyBreakdown {
    const PJ_TO_UJ: f64 = 1e-6;

    let cores_pj = report.cpu.instructions as f64 * params.cpu_inst_pj
        + report.gpu.instructions as f64 * params.gpu_inst_pj;

    let h = &report.hierarchy;
    let accesses = |s: crate::CacheStats| (s.hits + s.misses) as f64;
    let caches_pj = (accesses(h.cpu_l1d) + accesses(h.gpu_l1d)) * params.l1_access_pj
        + accesses(h.cpu_l2) * params.l2_access_pj
        + accesses(h.llc) * params.llc_access_pj;

    let dram_pj = (h.dram.reads + h.dram.writes) as f64 * params.dram_line_pj;

    let comm_pj = traffic.pci_bytes as f64 * params.pci_byte_pj
        + traffic.memctl_bytes as f64 * params.memctl_byte_pj;

    // static power (mW) × time (ns) = pJ.
    let static_pj = params.static_mw * report.total_ns() / 1000.0 * 1000.0;

    EnergyBreakdown {
        cores_uj: cores_pj * PJ_TO_UJ,
        caches_uj: caches_pj * PJ_TO_UJ,
        dram_uj: dram_pj * PJ_TO_UJ,
        comm_uj: comm_pj * PJ_TO_UJ,
        static_uj: static_pj * PJ_TO_UJ,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Simulation;
    use crate::fabric::FabricKind;
    use hetmem_trace::kernels::{Kernel, KernelParams};

    fn run(kernel: Kernel) -> (RunReport, u64) {
        let trace = kernel.generate(&KernelParams::scaled(64));
        let bytes = trace.comm_bytes();
        let report = Simulation::builder()
            .fabric(FabricKind::PciExpress)
            .build()
            .expect("baseline config is valid")
            .run(&trace)
            .expect("well-formed trace");
        (report, bytes)
    }

    #[test]
    fn breakdown_components_are_positive_and_sum() {
        let (report, bytes) = run(Kernel::Reduction);
        let e = estimate_energy(
            &report,
            CommTraffic {
                pci_bytes: bytes,
                memctl_bytes: 0,
            },
            &EnergyParams::default(),
        );
        assert!(e.cores_uj > 0.0);
        assert!(e.caches_uj > 0.0);
        assert!(e.dram_uj > 0.0);
        assert!(e.comm_uj > 0.0);
        assert!(e.static_uj > 0.0);
        let sum = e.cores_uj + e.caches_uj + e.dram_uj + e.comm_uj + e.static_uj;
        assert!((e.total_uj() - sum).abs() < 1e-12);
    }

    #[test]
    fn more_work_costs_more_energy() {
        let (small, b1) = run(Kernel::Reduction);
        let (large, b2) = run(Kernel::KMeans);
        let p = EnergyParams::default();
        let e_small = estimate_energy(
            &small,
            CommTraffic {
                pci_bytes: b1,
                memctl_bytes: 0,
            },
            &p,
        );
        let e_large = estimate_energy(
            &large,
            CommTraffic {
                pci_bytes: b2,
                memctl_bytes: 0,
            },
            &p,
        );
        assert!(e_large.total_uj() > e_small.total_uj());
    }

    #[test]
    fn memctl_bytes_cost_less_than_pci_bytes() {
        // The energy side of the Fusion-vs-PCI comparison.
        let (report, bytes) = run(Kernel::Reduction);
        let p = EnergyParams::default();
        let pci = estimate_energy(
            &report,
            CommTraffic {
                pci_bytes: bytes,
                memctl_bytes: 0,
            },
            &p,
        );
        let mc = estimate_energy(
            &report,
            CommTraffic {
                pci_bytes: 0,
                memctl_bytes: bytes,
            },
            &p,
        );
        assert!(mc.comm_uj < pci.comm_uj);
    }

    #[test]
    fn zero_traffic_zero_comm_energy() {
        let (report, _) = run(Kernel::Dct);
        let e = estimate_energy(&report, CommTraffic::default(), &EnergyParams::default());
        assert_eq!(e.comm_uj, 0.0);
    }
}
