//! System configuration — Table II of the paper.
//!
//! The baseline models one Sandy-Bridge-like CPU core and one Fermi-like GPU
//! core sharing a 4-tile L3 over a ring bus, backed by 4 channels of
//! DDR3-1333. The paper simplifies both PUs to a single core since only the
//! memory system is under study.

/// Geometry and latency of one cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity (ways per set).
    pub associativity: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Access latency in cycles of the owning clock domain.
    pub latency_cycles: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero line size or
    /// associativity, or capacity not a multiple of `line × assoc`).
    #[must_use]
    pub fn sets(&self) -> u64 {
        assert!(
            self.line_bytes > 0 && self.associativity > 0,
            "degenerate cache geometry"
        );
        let way_bytes = u64::from(self.line_bytes) * u64::from(self.associativity);
        assert!(
            way_bytes > 0 && self.capacity_bytes.is_multiple_of(way_bytes),
            "capacity {} is not a whole number of {}-byte set rows",
            self.capacity_bytes,
            way_bytes
        );
        self.capacity_bytes / way_bytes
    }
}

/// CPU core parameters (Table II, left column).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CpuConfig {
    /// Superscalar issue width.
    pub issue_width: u32,
    /// Reorder-buffer capacity.
    pub rob_entries: u32,
    /// Branch-misprediction pipeline penalty in CPU cycles.
    pub mispredict_penalty: u64,
    /// log2 of the gshare pattern-history-table size.
    pub gshare_log2_entries: u32,
    /// gshare global-history length in bits.
    pub gshare_history_bits: u32,
    /// L1 data cache (8-way 32 KB, 2 cycles).
    pub l1d: CacheConfig,
    /// Private L2 (8-way 256 KB, 8 cycles).
    pub l2: CacheConfig,
    /// Next-line stream-prefetch degree at the L2: on a detected
    /// sequential miss stream, this many subsequent lines are fetched into
    /// the L2 in the background. `0` disables prefetching (the baseline, so
    /// the memory system stays exactly Table II; the ablation bench turns
    /// it on).
    pub l2_prefetch_degree: u32,
}

impl Default for CpuConfig {
    fn default() -> CpuConfig {
        CpuConfig {
            issue_width: 4,
            rob_entries: 128,
            mispredict_penalty: 14,
            gshare_log2_entries: 12,
            gshare_history_bits: 12,
            l1d: CacheConfig {
                capacity_bytes: 32 * 1024,
                associativity: 8,
                line_bytes: 64,
                latency_cycles: 2,
            },
            l2: CacheConfig {
                capacity_bytes: 256 * 1024,
                associativity: 8,
                line_bytes: 64,
                latency_cycles: 8,
            },
            l2_prefetch_degree: 0,
        }
    }
}

/// GPU core parameters (Table II, right column).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GpuConfig {
    /// SIMD width (8 in the baseline).
    pub simd_width: u32,
    /// Cycles the in-order pipeline stalls on every branch
    /// ("N/A (stall on branch)" in Table II — no predictor).
    pub branch_stall_cycles: u64,
    /// L1 data cache (8-way 32 KB, 2 cycles).
    pub l1d: CacheConfig,
    /// Software-managed scratchpad capacity in bytes (16 KB).
    pub scratchpad_bytes: u64,
    /// Scratchpad access latency in GPU cycles.
    pub scratchpad_latency: u64,
    /// Maximum in-flight cache misses. Models the latency hiding a SIMT
    /// core gets from switching among warps: the pipeline keeps issuing
    /// until this many misses are outstanding, then stalls for the oldest.
    pub max_outstanding_misses: u32,
}

impl Default for GpuConfig {
    fn default() -> GpuConfig {
        GpuConfig {
            simd_width: 8,
            branch_stall_cycles: 4,
            l1d: CacheConfig {
                capacity_bytes: 32 * 1024,
                associativity: 8,
                line_bytes: 64,
                latency_cycles: 2,
            },
            scratchpad_bytes: 16 * 1024,
            scratchpad_latency: 2,
            max_outstanding_misses: 8,
        }
    }
}

/// Shared last-level cache parameters (32-way 8 MB, 4 tiles, 20 cycles).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LlcConfig {
    /// Per-tile cache geometry.
    pub tile: CacheConfig,
    /// Number of address-interleaved tiles.
    pub tiles: u32,
}

impl Default for LlcConfig {
    fn default() -> LlcConfig {
        LlcConfig {
            tile: CacheConfig {
                capacity_bytes: 2 * 1024 * 1024, // 4 tiles × 2 MB = 8 MB
                associativity: 32,
                line_bytes: 64,
                latency_cycles: 20,
            },
            tiles: 4,
        }
    }
}

/// On-chip interconnect topology (the "Connection" axis of Table I spans
/// buses, rings, and richer interconnection networks).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum NocTopology {
    /// Ring bus (the baseline, Table II): latency scales with hop count.
    #[default]
    Ring,
    /// Full crossbar: every PU one hop from every tile (more wiring, flat
    /// latency).
    Crossbar,
    /// A single shared bus: one hop, but all requests serialize on the
    /// medium.
    Bus,
}

/// Interconnect parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NocConfig {
    /// Topology.
    pub topology: NocTopology,
    /// Latency per hop, in CPU cycles.
    pub hop_cycles: u64,
    /// Bus occupancy per transfer in CPU cycles (bus topology only).
    pub bus_occupancy_cycles: u64,
}

impl Default for NocConfig {
    fn default() -> NocConfig {
        NocConfig {
            topology: NocTopology::Ring,
            hop_cycles: 2,
            bus_occupancy_cycles: 4,
        }
    }
}

/// DRAM scheduling policy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DramPolicy {
    /// First-ready, first-come-first-served: the row buffer stays open and
    /// row hits are served at CAS latency (the baseline; Table II).
    #[default]
    FrFcfs,
    /// Closed-page in-order service: every access pays activate + CAS
    /// (the ablation baseline).
    Fcfs,
}

/// DDR3-1333 DRAM parameters (Table II: 4 controllers, 41.6 GB/s, FR-FCFS).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of channels / controllers.
    pub channels: u32,
    /// Banks per channel.
    pub banks_per_channel: u32,
    /// Row-buffer size in bytes.
    pub row_bytes: u64,
    /// CAS latency in DRAM-bus cycles (CL 9 for DDR3-1333).
    pub cas_cycles: u64,
    /// Activate (RCD) latency in DRAM-bus cycles.
    pub rcd_cycles: u64,
    /// Precharge latency in DRAM-bus cycles.
    pub rp_cycles: u64,
    /// Data-burst occupancy per 64-byte line, in DRAM-bus cycles.
    pub burst_cycles: u64,
    /// Scheduling policy.
    pub policy: DramPolicy,
}

impl Default for DramConfig {
    fn default() -> DramConfig {
        DramConfig {
            channels: 4,
            banks_per_channel: 8,
            row_bytes: 8 * 1024,
            cas_cycles: 9,
            rcd_cycles: 9,
            rp_cycles: 9,
            burst_cycles: 4,
            policy: DramPolicy::FrFcfs,
        }
    }
}

/// TLB and page-table parameters.
///
/// The page size is per PU: a virtually unified (or partially shared)
/// address space lets each PU keep its own page-table format and page size
/// (§II-A1 — "GPUs can have large page size to accommodate high stream
/// locality"), at the price of more complex TLB/MMU designs. The baseline
/// uses 4 KB on both.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MmuConfig {
    /// CPU page size in bytes.
    pub cpu_page_bytes: u64,
    /// GPU page size in bytes.
    pub gpu_page_bytes: u64,
    /// TLB entries per PU.
    pub tlb_entries: u32,
    /// Page-walk latency in CPU cycles on a TLB miss.
    pub walk_cycles: u64,
}

impl Default for MmuConfig {
    fn default() -> MmuConfig {
        MmuConfig {
            cpu_page_bytes: 4096,
            gpu_page_bytes: 4096,
            tlb_entries: 64,
            walk_cycles: 50,
        }
    }
}

/// The complete baseline system configuration (Table II).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SystemConfig {
    /// CPU core and private caches.
    pub cpu: CpuConfig,
    /// GPU core, L1, and scratchpad.
    pub gpu: GpuConfig,
    /// Shared last-level cache.
    pub llc: LlcConfig,
    /// Ring interconnect.
    pub noc: NocConfig,
    /// DRAM subsystem.
    pub dram: DramConfig,
    /// Address translation.
    pub mmu: MmuConfig,
}

impl SystemConfig {
    /// The paper's baseline configuration (alias of `Default`).
    #[must_use]
    pub fn baseline() -> SystemConfig {
        SystemConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table_ii() {
        let c = SystemConfig::baseline();
        assert_eq!(c.cpu.l1d.capacity_bytes, 32 * 1024);
        assert_eq!(c.cpu.l1d.associativity, 8);
        assert_eq!(c.cpu.l1d.latency_cycles, 2);
        assert_eq!(c.cpu.l2.capacity_bytes, 256 * 1024);
        assert_eq!(c.cpu.l2.latency_cycles, 8);
        assert_eq!(c.gpu.simd_width, 8);
        assert_eq!(c.gpu.scratchpad_bytes, 16 * 1024);
        assert_eq!(
            u64::from(c.llc.tiles) * c.llc.tile.capacity_bytes,
            8 * 1024 * 1024
        );
        assert_eq!(c.llc.tile.associativity, 32);
        assert_eq!(c.llc.tile.latency_cycles, 20);
        assert_eq!(c.dram.channels, 4);
        assert_eq!(c.dram.policy, DramPolicy::FrFcfs);
    }

    #[test]
    fn cache_geometry_sets() {
        let c = SystemConfig::baseline();
        assert_eq!(c.cpu.l1d.sets(), 64); // 32 KB / (64 B × 8)
        assert_eq!(c.cpu.l2.sets(), 512);
        assert_eq!(c.llc.tile.sets(), 1024); // 2 MB / (64 × 32)
    }

    #[test]
    #[should_panic(expected = "not a whole number")]
    fn bad_geometry_panics() {
        let bad = CacheConfig {
            capacity_bytes: 1000,
            associativity: 8,
            line_bytes: 64,
            latency_cycles: 1,
        };
        let _ = bad.sets();
    }

    #[test]
    fn dram_bandwidth_is_about_41_6_gbps() {
        // 4 channels × (64 B per burst / (4 cycles × 1.5 ns)) ≈ 42.7 GB/s,
        // matching Table II's 41.6 GB/s within a few percent.
        let c = DramConfig::default();
        let ns_per_burst = c.burst_cycles as f64 * 1.5;
        let bw = c.channels as f64 * 64.0 / ns_per_burst; // bytes per ns = GB/s
        assert!((bw - 41.6).abs() < 2.0, "bw {bw}");
    }
}
