//! Address translation: per-PU TLBs with a fixed page-walk cost.
//!
//! The address-space design options differ in *who* maintains page tables
//! (§II-A: a virtually unified space needs mappings on both PUs, disjoint
//! spaces keep independent tables, and the PCI aperture pins a small shared
//! window). At the timing level those choices surface as TLB reach and page
//! walks, which this module models; the *policy* costs (page faults on first
//! touch of shared pages, `lib-pf`) are charged by the communication model.

/// Statistics for one TLB.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Translations that hit.
    pub hits: u64,
    /// Translations that missed and paid a page walk.
    pub misses: u64,
}

impl TlbStats {
    /// Miss rate in `[0, 1]`; zero with no accesses.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// A fully-associative, LRU translation look-aside buffer.
#[derive(Clone, Debug)]
pub struct Tlb {
    entries: Vec<(u64, u64)>, // (page number, last use)
    /// Index of the most recently hit entry — checked first, since nearly
    /// every access in a streaming kernel lands on the same page as the
    /// previous one, turning the associative scan into one compare.
    mru: usize,
    capacity: usize,
    page_bytes: u64,
    clock: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Creates a TLB with `entries` slots for `page_bytes`-sized pages.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or `page_bytes` is not a power of two.
    #[must_use]
    pub fn new(entries: u32, page_bytes: u64) -> Tlb {
        assert!(entries > 0, "TLB needs at least one entry");
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        Tlb {
            entries: Vec::with_capacity(entries as usize),
            mru: 0,
            capacity: entries as usize,
            page_bytes,
            clock: 0,
            stats: TlbStats::default(),
        }
    }

    /// Empties the TLB and zeroes its clock and counters (power-on state).
    pub fn reset(&mut self) {
        self.entries.clear();
        self.mru = 0;
        self.clock = 0;
        self.stats = TlbStats::default();
    }

    /// Translates `addr`, returning `true` on a hit and `false` when a page
    /// walk is required (the entry is filled either way).
    pub fn translate(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let page = addr / self.page_bytes;
        if let Some(slot) = self.entries.get_mut(self.mru) {
            if slot.0 == page {
                slot.1 = self.clock;
                self.stats.hits += 1;
                return true;
            }
        }
        if let Some(idx) = self.entries.iter().position(|(p, _)| *p == page) {
            self.entries[idx].1 = self.clock;
            self.mru = idx;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        if self.entries.len() == self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(i, _)| i)
                .expect("capacity > 0");
            self.entries.swap_remove(lru);
        }
        self.entries.push((page, self.clock));
        self.mru = self.entries.len() - 1;
        false
    }

    /// Drops all cached translations (e.g. on an ownership transfer that
    /// remaps the shared window).
    pub fn flush(&mut self) {
        self.entries.clear();
        self.mru = 0;
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> TlbStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_access_to_page_hits() {
        let mut t = Tlb::new(4, 4096);
        assert!(!t.translate(0x1000));
        assert!(t.translate(0x1FFF)); // same page
        assert!(!t.translate(0x2000)); // next page
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let mut t = Tlb::new(2, 4096);
        t.translate(0x0000); // page 0
        t.translate(0x1000); // page 1
        t.translate(0x0000); // touch page 0 → page 1 becomes LRU
        t.translate(0x2000); // page 2 evicts page 1
        assert!(t.translate(0x0000), "page 0 must survive");
        assert!(!t.translate(0x1000), "page 1 must have been evicted");
    }

    #[test]
    fn flush_empties_the_tlb() {
        let mut t = Tlb::new(4, 4096);
        t.translate(0x1000);
        t.flush();
        assert!(!t.translate(0x1000));
    }

    #[test]
    fn miss_rate_reflects_reach() {
        let mut t = Tlb::new(64, 4096);
        // 64 pages of reach: a 128-page working set thrashes.
        for round in 0..4 {
            for page in 0..128u64 {
                t.translate(page * 4096);
            }
            let _ = round;
        }
        assert!(t.stats().miss_rate() > 0.9);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_page_rejected() {
        let _ = Tlb::new(4, 1000);
    }
}
