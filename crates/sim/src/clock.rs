//! Clock domains and the global time base.
//!
//! The baseline system (Table II) runs the CPU at 3.5 GHz, the GPU at
//! 1.5 GHz, and the DDR3-1333 memory bus at 666.7 MHz. To keep the
//! simulation integral and deterministic, all components share a single
//! global time base of **ticks at 42 GHz** — the least common multiple that
//! makes every domain's cycle an integer number of ticks:
//!
//! | domain | frequency | ticks / cycle |
//! |--------|-----------|---------------|
//! | CPU    | 3.5 GHz   | 12            |
//! | GPU    | 1.5 GHz   | 28            |
//! | DRAM   | 666.7 MHz | 63            |

/// A point in (or duration of) global simulation time, in 42 GHz ticks.
pub type Tick = u64;

/// Global tick frequency in Hz.
pub const TICKS_PER_SECOND: u64 = 42_000_000_000;

/// A fixed-frequency clock domain expressed as ticks per cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClockDomain {
    ticks_per_cycle: u64,
}

impl ClockDomain {
    /// The 3.5 GHz CPU domain.
    pub const CPU: ClockDomain = ClockDomain {
        ticks_per_cycle: 12,
    };
    /// The 1.5 GHz GPU domain.
    pub const GPU: ClockDomain = ClockDomain {
        ticks_per_cycle: 28,
    };
    /// The 666.7 MHz DDR3-1333 bus domain.
    pub const DRAM: ClockDomain = ClockDomain {
        ticks_per_cycle: 63,
    };

    /// Creates a domain with an explicit tick-per-cycle count.
    ///
    /// # Panics
    ///
    /// Panics if `ticks_per_cycle` is zero.
    #[must_use]
    pub fn from_ticks_per_cycle(ticks_per_cycle: u64) -> ClockDomain {
        assert!(
            ticks_per_cycle > 0,
            "a clock domain needs a non-zero period"
        );
        ClockDomain { ticks_per_cycle }
    }

    /// Ticks in one cycle of this domain.
    #[must_use]
    pub fn ticks_per_cycle(self) -> u64 {
        self.ticks_per_cycle
    }

    /// Converts a cycle count of this domain into global ticks.
    #[must_use]
    pub fn cycles_to_ticks(self, cycles: u64) -> Tick {
        cycles * self.ticks_per_cycle
    }

    /// Converts global ticks into whole cycles of this domain (rounding up,
    /// since a partially elapsed cycle still occupies the resource).
    #[must_use]
    pub fn ticks_to_cycles(self, ticks: Tick) -> u64 {
        ticks.div_ceil(self.ticks_per_cycle)
    }

    /// The domain's frequency in Hz.
    #[must_use]
    pub fn frequency_hz(self) -> u64 {
        TICKS_PER_SECOND / self.ticks_per_cycle
    }
}

/// Converts ticks to nanoseconds (floating point, for reporting only).
#[must_use]
pub fn ticks_to_ns(ticks: Tick) -> f64 {
    ticks as f64 * 1e9 / TICKS_PER_SECOND as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_frequencies_match_table_ii() {
        assert_eq!(ClockDomain::CPU.frequency_hz(), 3_500_000_000);
        assert_eq!(ClockDomain::GPU.frequency_hz(), 1_500_000_000);
        // 42 GHz / 63 = 666.67 MHz DDR3-1333 bus clock.
        assert_eq!(ClockDomain::DRAM.frequency_hz(), 666_666_666);
    }

    #[test]
    fn cycle_tick_round_trip() {
        for cycles in [0u64, 1, 7, 1000] {
            let t = ClockDomain::CPU.cycles_to_ticks(cycles);
            assert_eq!(ClockDomain::CPU.ticks_to_cycles(t), cycles);
        }
    }

    #[test]
    fn ticks_to_cycles_rounds_up() {
        assert_eq!(ClockDomain::CPU.ticks_to_cycles(1), 1);
        assert_eq!(ClockDomain::CPU.ticks_to_cycles(12), 1);
        assert_eq!(ClockDomain::CPU.ticks_to_cycles(13), 2);
    }

    #[test]
    fn ns_conversion() {
        // One CPU cycle at 3.5 GHz is ~0.2857 ns.
        let ns = ticks_to_ns(ClockDomain::CPU.cycles_to_ticks(1));
        assert!((ns - 0.2857).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "non-zero period")]
    fn zero_period_rejected() {
        let _ = ClockDomain::from_ticks_per_cycle(0);
    }
}
