//! The top-level system: both cores, the shared memory hierarchy, and the
//! phase-by-phase execution of a kernel trace under a communication model.
//!
//! Phase semantics follow the paper's accounting (§V-A):
//!
//! * **Sequential** segments run on the CPU alone.
//! * **Parallel** segments run both cores concurrently, interleaved in
//!   global time so they contend for the LLC and DRAM; the segment ends when
//!   the slower PU finishes.
//! * **Communication** segments execute each semantic event according to the
//!   design point's [`CommModel`]: elided (shared address space), blocking
//!   (synchronous memcpy), or asynchronous (GMAC-style background copy that
//!   only charges the portion it fails to hide behind the following
//!   parallel segment).

use crate::clock::Tick;
use crate::config::SystemConfig;
use crate::cpu::CpuCore;
use crate::exec::ExecMode;
use crate::fabric::{CommAction, CommCosts, CommModel};
use crate::gpu::GpuCore;
use crate::hierarchy::MemoryHierarchy;
use crate::obs::SimObserver;
use crate::stats::RunReport;
use hetmem_trace::{Inst, Phase, PhasedTrace, PuKind};

/// A complete simulated heterogeneous system.
#[derive(Debug)]
pub struct System {
    config: SystemConfig,
    costs: CommCosts,
    llc_locality: bool,
    cpu: CpuCore,
    gpu: GpuCore,
    hierarchy: MemoryHierarchy,
}

impl System {
    /// Builds a system with explicit communication-cost parameters.
    ///
    /// The pre-builder constructors (`System::new` plus a standalone
    /// `System::run`) were removed once every call site migrated to
    /// [`crate::Simulation::builder`]; construct through the builder
    /// unless you are wiring a custom harness around [`System::execute`].
    #[must_use]
    pub fn with_costs(config: &SystemConfig, costs: CommCosts) -> System {
        System::with_costs_and_locality(config, costs, true)
    }

    /// Builds a system, selecting whether the LLC honours the explicit
    /// locality bit (`false` is the plain-LRU ablation of §II-B5).
    #[must_use]
    pub fn with_costs_and_locality(
        config: &SystemConfig,
        costs: CommCosts,
        llc_locality: bool,
    ) -> System {
        System {
            config: *config,
            costs,
            llc_locality,
            cpu: CpuCore::new(&config.cpu, costs),
            gpu: GpuCore::new(&config.gpu, costs),
            hierarchy: MemoryHierarchy::with_llc_locality(config, llc_locality),
        }
    }

    /// Whether this system was built from exactly these parameters — the
    /// recycling precondition checked by
    /// [`crate::SimulationBuilder::recycle`].
    #[must_use]
    pub fn matches(&self, config: &SystemConfig, costs: &CommCosts, llc_locality: bool) -> bool {
        self.config == *config && self.costs == *costs && self.llc_locality == llc_locality
    }

    /// Builds a system whose LLC ignores the explicit-locality bit (the
    /// hybrid-locality ablation).
    #[must_use]
    pub fn without_llc_locality(config: &SystemConfig) -> System {
        System::with_costs_and_locality(config, CommCosts::paper(), false)
    }

    /// The system configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The communication-cost parameters.
    #[must_use]
    pub fn costs(&self) -> &CommCosts {
        &self.costs
    }

    /// Returns the whole system — cores and memory hierarchy — to its
    /// power-on state without releasing allocations. A reset system is
    /// observationally identical to a freshly built one, so engines can be
    /// recycled across independent jobs (see
    /// [`crate::SimulationBuilder::recycle`]).
    pub fn reset(&mut self) {
        self.cpu.reset();
        self.gpu.reset();
        self.hierarchy.reset();
    }

    /// Read access to the memory hierarchy (for inspection in tests and
    /// reports).
    #[must_use]
    pub fn hierarchy(&self) -> &MemoryHierarchy {
        &self.hierarchy
    }

    /// Simulates a validated `trace` under `comm`, reporting every phase
    /// transition, communication action, access, and DRAM request to `obs`.
    ///
    /// This is the engine behind [`crate::Simulation::run`], which performs
    /// trace validation and error mapping; with [`NullObserver`] it compiles
    /// down to the historical unobserved loop, tick for tick.
    pub fn execute<O: SimObserver>(
        &mut self,
        trace: &PhasedTrace,
        comm: &mut dyn CommModel,
        obs: &mut O,
    ) -> RunReport {
        self.execute_with_mode(trace, comm, obs, ExecMode::Accurate)
    }

    /// [`System::execute`] under an explicit [`ExecMode`].
    ///
    /// `Accurate` is the reference loop. `EventDriven` runs the same step
    /// sequence through the event wheel — each core executes batched inside
    /// wake windows bounded by its peer's frozen clock, reproducing the
    /// accurate interleave decision-for-decision — so its reports and
    /// observer streams are bit-identical except for the
    /// `fast_forwarded_ticks` accounting. `Sampled` alternates detailed
    /// windows with functionally-warmed skips whose cost is extrapolated
    /// from the measured ticks-per-instruction; its microarchitectural
    /// counters cover only the detailed windows.
    pub fn execute_with_mode<O: SimObserver>(
        &mut self,
        trace: &PhasedTrace,
        comm: &mut dyn CommModel,
        obs: &mut O,
        mode: ExecMode,
    ) -> RunReport {
        let mut now: Tick = 0;
        let mut seq_ticks: Tick = 0;
        let mut par_ticks: Tick = 0;
        let mut comm_ticks: Tick = 0;
        // Ticks crossed inside granted wake windows (or extrapolated skips)
        // rather than under per-step global arbitration.
        let mut ff_ticks: Tick = 0;
        // Completion time of outstanding asynchronous transfers the next
        // parallel segment's GPU work must wait for.
        let mut dma_ready: Tick = 0;

        for (index, segment) in trace.segments().iter().enumerate() {
            let seg_start = now;
            obs.on_phase_start(index, segment.phase(), now);
            match segment.phase() {
                Phase::Sequential => {
                    let insts = segment.stream(PuKind::Cpu).as_slice();
                    let end = match mode {
                        ExecMode::Sampled {
                            warm_interval,
                            detail_window,
                        } => {
                            let (end, skipped) = sampled_cpu_stream(
                                &mut self.cpu,
                                &mut self.hierarchy,
                                insts,
                                now,
                                warm_interval,
                                detail_window,
                                obs,
                            );
                            ff_ticks += skipped;
                            end
                        }
                        ExecMode::Accurate | ExecMode::EventDriven => {
                            let end = self
                                .cpu
                                .begin(insts, now)
                                .run_to_end_observed(&mut self.hierarchy, obs);
                            if mode == ExecMode::EventDriven {
                                // Every other component is parked past the
                                // segment: the wheel grants the CPU one wake
                                // window spanning it.
                                ff_ticks += end - now;
                                obs.on_fast_forward(end - now, end);
                            }
                            end
                        }
                    };
                    seq_ticks += end - now;
                    now = end;
                }
                Phase::Parallel => {
                    let cpu_insts = segment.stream(PuKind::Cpu).as_slice();
                    let gpu_insts = segment.stream(PuKind::Gpu).as_slice();
                    // Asynchronous copies stream their data during kernel
                    // execution (GMAC's on-demand/rolling transfer): both
                    // cores start immediately, and only the portion of the
                    // transfer that outlives the computation is charged to
                    // communication below.
                    let compute_end = match mode {
                        ExecMode::Accurate => interleaved_parallel(
                            &mut self.cpu,
                            &mut self.gpu,
                            &mut self.hierarchy,
                            cpu_insts,
                            gpu_insts,
                            now,
                            obs,
                        ),
                        ExecMode::EventDriven => {
                            // Event wheel: the core owed the next step runs
                            // batched up to the peer's frozen clock (its
                            // registered next-wake tick), instead of being
                            // re-arbitrated every instruction. The CPU owns
                            // ties, so its window is inclusive and the GPU's
                            // exclusive — the step sequence is exactly the
                            // accurate loop's.
                            let mut cpu_run = self.cpu.begin(cpu_insts, now);
                            let mut gpu_run = self.gpu.begin(gpu_insts, now);
                            loop {
                                match (cpu_run.done(), gpu_run.done()) {
                                    (true, true) => break,
                                    (false, true) => {
                                        let from = cpu_run.now();
                                        cpu_run.run_while_observed(
                                            &mut self.hierarchy,
                                            obs,
                                            Tick::MAX,
                                        );
                                        let advance = cpu_run.now().saturating_sub(from);
                                        ff_ticks += advance;
                                        obs.on_fast_forward(advance, cpu_run.now());
                                    }
                                    (true, false) => {
                                        let from = gpu_run.now();
                                        gpu_run.run_while_observed(
                                            &mut self.hierarchy,
                                            obs,
                                            Tick::MAX,
                                        );
                                        let advance = gpu_run.now().saturating_sub(from);
                                        ff_ticks += advance;
                                        obs.on_fast_forward(advance, gpu_run.now());
                                    }
                                    (false, false) => {
                                        if cpu_run.now() <= gpu_run.now() {
                                            let from = cpu_run.now();
                                            cpu_run.run_while_observed(
                                                &mut self.hierarchy,
                                                obs,
                                                gpu_run.now(),
                                            );
                                            let advance = cpu_run.now().saturating_sub(from);
                                            ff_ticks += advance;
                                            obs.on_fast_forward(advance, cpu_run.now());
                                        } else {
                                            let from = gpu_run.now();
                                            gpu_run.run_while_observed(
                                                &mut self.hierarchy,
                                                obs,
                                                cpu_run.now(),
                                            );
                                            let advance = gpu_run.now().saturating_sub(from);
                                            ff_ticks += advance;
                                            obs.on_fast_forward(advance, gpu_run.now());
                                        }
                                    }
                                }
                            }
                            cpu_run.finish_tick().max(gpu_run.finish_tick()).max(now)
                        }
                        ExecMode::Sampled {
                            warm_interval,
                            detail_window,
                        } => {
                            // Paired sampling: detailed windows interleave
                            // both cores by global time (full contention
                            // fidelity), then both streams skip together so
                            // the clocks never diverge. A phase where both
                            // streams fit one window is exact.
                            let (end, skipped) = sampled_parallel(
                                &mut self.cpu,
                                &mut self.gpu,
                                &mut self.hierarchy,
                                cpu_insts,
                                gpu_insts,
                                now,
                                warm_interval,
                                detail_window,
                                obs,
                            );
                            ff_ticks += skipped;
                            end
                        }
                    };
                    par_ticks += compute_end - now;
                    // A background transfer that outlives the computation
                    // delays the segment's completion; that tail is
                    // communication time.
                    if dma_ready > compute_end {
                        comm_ticks += dma_ready - compute_end;
                        now = dma_ready;
                    } else {
                        now = compute_end;
                    }
                    dma_ready = 0;
                }
                Phase::Communication => {
                    for inst in segment.stream(PuKind::Cpu).iter() {
                        match inst {
                            Inst::Comm(event) => {
                                // Classify before planning: `plan` may mutate
                                // first-touch state the class depends on.
                                let class = comm.cost_class(event);
                                let action = comm.plan(event);
                                obs.on_comm(event, &action, class, now);
                                match action {
                                    CommAction::Elide => {}
                                    CommAction::Synchronous { ticks } => {
                                        comm_ticks += ticks;
                                        now += ticks;
                                    }
                                    CommAction::Asynchronous { setup, transfer } => {
                                        comm_ticks += setup;
                                        now += setup;
                                        dma_ready = dma_ready.max(now + transfer);
                                    }
                                }
                            }
                            Inst::Special(op) => {
                                let ticks = self.costs.special_ticks(op);
                                obs.on_special(PuKind::Cpu, op, ticks, now);
                                comm_ticks += ticks;
                                now += ticks;
                            }
                            other => unreachable!(
                                "validated communication segments contain only comm/special \
                                 instructions, found {other:?}"
                            ),
                        }
                    }
                }
            }
            obs.on_phase_end(index, segment.phase(), seg_start, now);
        }

        // Any asynchronous transfer still in flight must complete before the
        // program can observe its data.
        if dma_ready > now {
            comm_ticks += dma_ready - now;
            now = dma_ready;
        }
        obs.on_run_end(now);

        RunReport {
            kernel: trace.name().to_owned(),
            sequential_ticks: seq_ticks,
            parallel_ticks: par_ticks,
            communication_ticks: comm_ticks,
            fast_forwarded_ticks: ff_ticks,
            hierarchy: self.hierarchy.stats(),
            cpu: self.cpu.stats(),
            gpu: self.gpu.stats(),
        }
    }
}

/// The reference parallel-phase loop: CPU and GPU runs interleaved by
/// global time (CPU owns ties) so both cores contend for the same LLC/DRAM
/// state in order. Shared by `Accurate` and by `Sampled` phases short
/// enough that sampling would never engage.
fn interleaved_parallel<O: SimObserver>(
    cpu: &mut CpuCore,
    gpu: &mut GpuCore,
    hier: &mut MemoryHierarchy,
    cpu_insts: &[Inst],
    gpu_insts: &[Inst],
    now: Tick,
    obs: &mut O,
) -> Tick {
    let mut cpu_run = cpu.begin(cpu_insts, now);
    let mut gpu_run = gpu.begin(gpu_insts, now);
    loop {
        match (cpu_run.done(), gpu_run.done()) {
            (true, true) => break,
            (false, true) => {
                cpu_run.step_observed(hier, obs);
            }
            (true, false) => {
                gpu_run.step_observed(hier, obs);
            }
            (false, false) => {
                if cpu_run.now() <= gpu_run.now() {
                    cpu_run.step_observed(hier, obs);
                } else {
                    gpu_run.step_observed(hier, obs);
                }
            }
        }
    }
    cpu_run.finish_tick().max(gpu_run.finish_tick()).max(now)
}

/// SMARTS-style sampling of one CPU instruction stream: detailed windows of
/// `window` instructions alternate with skips of `warm` instructions whose
/// duration is extrapolated from the measured detailed ticks-per-
/// instruction. The whole stream executes as ONE [`CpuCore::begin`] run —
/// skips advance the run's index and clock in place — so no pipeline-drain
/// penalty is paid at window boundaries, and the measured ratio is the
/// steady-state issue throughput (`now()` deltas, drain excluded). The
/// front half of each detailed window is a warm-up that absorbs cold
/// cache/predictor state; only the back half feeds the ratio. Programming-
/// model specials inside skipped spans still execute in detail (they
/// mutate scratchpad/LLC mappings and serialize); plain skipped
/// instructions are neither executed nor counted in the core's statistics.
/// Returns `(end tick, extrapolated ticks)`.
fn sampled_cpu_stream<O: SimObserver>(
    cpu: &mut CpuCore,
    hier: &mut MemoryHierarchy,
    insts: &[Inst],
    start: Tick,
    warm: u64,
    window: u64,
    obs: &mut O,
) -> (Tick, Tick) {
    let window = usize::try_from(window.max(1)).unwrap_or(usize::MAX);
    let warm = usize::try_from(warm).unwrap_or(usize::MAX);
    let n = insts.len();
    let mut run = cpu.begin(insts, start);
    let mut i = 0usize;
    let mut det_insts: u128 = 0;
    let mut det_ticks: u128 = 0;
    let mut skipped: Tick = 0;
    while i < n {
        let w = window.min(n - i);
        let head = if i + w < n && warm > 0 { w / 2 } else { 0 };
        for _ in 0..head {
            run.step_observed(hier, obs);
        }
        let measure_from = run.now();
        for _ in head..w {
            run.step_observed(hier, obs);
        }
        det_ticks += u128::from(run.now() - measure_from);
        det_insts += (w - head) as u128;
        i += w;
        if i >= n || warm == 0 {
            continue;
        }
        let mut remaining = warm.min(n - i);
        while remaining > 0 {
            let plain = run.skip_plain(remaining);
            if plain > 0 {
                let est = ((plain as u128 * det_ticks) / det_insts.max(1)) as Tick;
                run.advance_clock(est);
                skipped += est;
                obs.on_fast_forward(est, run.now());
                remaining -= plain;
                i += plain;
            }
            if remaining > 0 {
                // Stopped at a programming-model special: run it in detail.
                run.step_observed(hier, obs);
                remaining -= 1;
                i += 1;
            }
        }
    }
    (run.finish_tick().max(start), skipped)
}

/// Paired SMARTS sampling of a parallel phase. Detailed windows run both
/// cores through the reference global-time interleave (CPU owns ties), so
/// contention and ordering against the shared LLC/DRAM are exactly the
/// accurate loop's within every window. Both streams then skip together —
/// each side extrapolates from its own measured ticks-per-instruction — so
/// neither clock ever rewinds against the time-stateful hierarchy. A phase
/// where both streams fit a single window executes exactly. Returns
/// `(phase end tick, extrapolated ticks)`.
#[allow(clippy::too_many_arguments)]
fn sampled_parallel<O: SimObserver>(
    cpu: &mut CpuCore,
    gpu: &mut GpuCore,
    hier: &mut MemoryHierarchy,
    cpu_insts: &[Inst],
    gpu_insts: &[Inst],
    start: Tick,
    warm: u64,
    window: u64,
    obs: &mut O,
) -> (Tick, Tick) {
    let window = usize::try_from(window.max(1)).unwrap_or(usize::MAX);
    let warm = usize::try_from(warm).unwrap_or(usize::MAX);
    let (cn, gn) = (cpu_insts.len(), gpu_insts.len());
    let mut cpu_run = cpu.begin(cpu_insts, start);
    let mut gpu_run = gpu.begin(gpu_insts, start);
    let (mut ci, mut gi) = (0usize, 0usize);
    let (mut c_insts, mut c_ticks): (u128, u128) = (0, 0);
    let (mut g_insts, mut g_ticks): (u128, u128) = (0, 0);
    let mut skipped: Tick = 0;
    while ci < cn || gi < gn {
        // Detailed window: interleave by global time until each side has
        // stepped `window` instructions or run out of stream.
        let c_target = window.min(cn - ci);
        let g_target = window.min(gn - gi);
        // Only the back half of each side's window feeds its ratio: the
        // front half absorbs post-skip cold-cache transients (skipped
        // loads never warmed the hierarchy), like the sequential sampler.
        let (c_head, g_head) = (c_target / 2, g_target / 2);
        let (mut c_from, mut g_from) = (cpu_run.now(), gpu_run.now());
        let (mut c_steps, mut g_steps) = (0usize, 0usize);
        loop {
            let c_eligible = c_steps < c_target;
            let g_eligible = g_steps < g_target;
            let step_cpu = match (c_eligible, g_eligible) {
                (false, false) => break,
                (true, false) => true,
                (false, true) => false,
                (true, true) => cpu_run.now() <= gpu_run.now(),
            };
            if step_cpu {
                cpu_run.step_observed(hier, obs);
                c_steps += 1;
                if c_steps == c_head {
                    c_from = cpu_run.now();
                }
            } else {
                gpu_run.step_observed(hier, obs);
                g_steps += 1;
                if g_steps == g_head {
                    g_from = gpu_run.now();
                }
            }
        }
        c_insts += (c_steps - c_head.min(c_steps)) as u128;
        c_ticks += u128::from(cpu_run.now().saturating_sub(c_from));
        g_insts += (g_steps - g_head.min(g_steps)) as u128;
        g_ticks += u128::from(gpu_run.now().saturating_sub(g_from));
        ci += c_steps;
        gi += g_steps;
        if (ci >= cn && gi >= gn) || warm == 0 {
            continue;
        }
        // Skip phase, both sides together: plain spans extrapolate from the
        // owning core's measured rate, programming-model specials run in
        // detail.
        let mut remaining = warm.min(cn - ci);
        while remaining > 0 {
            let plain = cpu_run.skip_plain(remaining);
            if plain > 0 {
                let est = ((plain as u128 * c_ticks) / c_insts.max(1)) as Tick;
                cpu_run.advance_clock(est);
                skipped += est;
                obs.on_fast_forward(est, cpu_run.now());
                remaining -= plain;
                ci += plain;
            }
            if remaining > 0 {
                cpu_run.step_observed(hier, obs);
                remaining -= 1;
                ci += 1;
            }
        }
        let mut remaining = warm.min(gn - gi);
        while remaining > 0 {
            let plain = gpu_run.skip_plain(remaining);
            if plain > 0 {
                let est = ((plain as u128 * g_ticks) / g_insts.max(1)) as Tick;
                gpu_run.advance_clock(est);
                skipped += est;
                obs.on_fast_forward(est, gpu_run.now());
                remaining -= plain;
                gi += plain;
            }
            if remaining > 0 {
                gpu_run.step_observed(hier, obs);
                remaining -= 1;
                gi += 1;
            }
        }
    }
    (
        cpu_run.finish_tick().max(gpu_run.finish_tick()).max(start),
        skipped,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Simulation;
    use crate::fabric::{FabricKind, SynchronousFabric};
    use crate::obs::NullObserver;
    use hetmem_trace::kernels::{Kernel, KernelParams};
    use hetmem_trace::{CommEvent, CommKind, TransferDirection};

    fn run_over(trace: &PhasedTrace, fabric: FabricKind) -> RunReport {
        Simulation::builder()
            .fabric(fabric)
            .build()
            .expect("baseline config is valid")
            .run(trace)
            .expect("well-formed trace")
    }

    #[test]
    fn reduction_runs_and_attributes_all_phases() {
        let trace = Kernel::Reduction.generate(&KernelParams::scaled(8));
        let report = run_over(&trace, FabricKind::PciExpress);
        assert!(report.sequential_ticks > 0);
        assert!(report.parallel_ticks > 0);
        assert!(report.communication_ticks > 0);
        assert_eq!(report.kernel, "reduction");
    }

    #[test]
    fn parallel_phase_dominates() {
        // The paper's headline observation: most time is parallel compute.
        let trace = Kernel::MatrixMul.generate(&KernelParams::scaled(64));
        let report = run_over(&trace, FabricKind::PciExpress);
        assert!(
            report.phase_fraction(hetmem_trace::Phase::Parallel) > 0.5,
            "{report}"
        );
    }

    #[test]
    fn ideal_fabric_has_zero_communication() {
        let trace = Kernel::Reduction.generate(&KernelParams::scaled(8));
        let report = run_over(&trace, FabricKind::Ideal);
        assert_eq!(report.communication_ticks, 0);
    }

    #[test]
    fn pci_slower_than_memory_controller() {
        let trace = Kernel::MergeSort.generate(&KernelParams::scaled(8));
        let pci = run_over(&trace, FabricKind::PciExpress);
        let fusion = run_over(&trace, FabricKind::MemoryController);
        assert!(pci.communication_ticks > fusion.communication_ticks);
        assert!(pci.total_ticks() > fusion.total_ticks());
    }

    #[test]
    fn async_transfers_are_hidden_behind_parallel_work() {
        // A model that makes every transfer asynchronous with tiny setup.
        struct AsyncModel;
        impl CommModel for AsyncModel {
            fn plan(&mut self, event: &CommEvent) -> CommAction {
                CommAction::Asynchronous {
                    setup: 1_000,
                    transfer: FabricKind::PciExpress
                        .transfer_ticks(event.bytes, &CommCosts::paper()),
                }
            }
        }
        let trace = Kernel::Reduction.generate(&KernelParams::scaled(8));
        let sync = run_over(&trace, FabricKind::PciExpress);
        let asy = Simulation::builder()
            .comm_model(AsyncModel)
            .build()
            .expect("valid config")
            .run(&trace)
            .expect("well-formed trace");
        assert!(
            asy.communication_ticks < sync.communication_ticks,
            "async {} vs sync {}",
            asy.communication_ticks,
            sync.communication_ticks
        );
    }

    #[test]
    fn trailing_async_transfer_is_charged_at_the_end() {
        // A trace that ends with an async transfer: nothing can hide it.
        struct AsyncModel;
        impl CommModel for AsyncModel {
            fn plan(&mut self, _: &CommEvent) -> CommAction {
                CommAction::Asynchronous {
                    setup: 10,
                    transfer: 1_000_000,
                }
            }
        }
        let mut b = hetmem_trace::TraceBuilder::new("tail", 0);
        b.communication([CommEvent {
            direction: TransferDirection::DeviceToHost,
            bytes: 4096,
            kind: CommKind::ResultReturn,
            addr: 0,
        }]);
        let trace = b.finish();
        let report = Simulation::builder()
            .comm_model(AsyncModel)
            .build()
            .expect("valid config")
            .run(&trace)
            .expect("well-formed trace");
        assert_eq!(report.communication_ticks, 10 + 1_000_000);
    }

    #[test]
    fn noc_topologies_order_sensibly_end_to_end() {
        use crate::config::NocTopology;
        let trace = Kernel::KMeans.generate(&KernelParams::scaled(64));
        let total = |topo| {
            let mut cfg = SystemConfig::baseline();
            cfg.noc.topology = topo;
            Simulation::builder()
                .config(cfg)
                .fabric(FabricKind::Ideal)
                .build()
                .expect("valid config")
                .run(&trace)
                .expect("well-formed trace")
                .total_ticks()
        };
        let ring = total(NocTopology::Ring);
        let xbar = total(NocTopology::Crossbar);
        let bus = total(NocTopology::Bus);
        // A crossbar's flat one-hop latency never loses to the ring; the
        // shared bus pays serialization under two-PU traffic.
        assert!(xbar <= ring, "crossbar {xbar} vs ring {ring}");
        assert!(bus > xbar, "bus {bus} vs crossbar {xbar}");
    }

    #[test]
    fn direct_execute_matches_builder_path() {
        // Custom harnesses that wire `System::execute` directly (the
        // builder's engine) must see exactly the builder's reports.
        let real = Kernel::Reduction.generate(&KernelParams::scaled(8));
        let mut sys = System::with_costs(&SystemConfig::baseline(), CommCosts::paper());
        let mut comm = SynchronousFabric::new(FabricKind::PciExpress, CommCosts::paper());
        let direct = sys.execute(&real, &mut comm, &mut NullObserver);
        assert_eq!(direct, run_over(&real, FabricKind::PciExpress));
    }

    #[test]
    fn sequential_only_trace_has_no_parallel_or_comm_time() {
        let mut b = hetmem_trace::TraceBuilder::new("seq-only", 1);
        b.sequential(
            500,
            hetmem_trace::InstMix::serial(),
            hetmem_trace::AddressPattern::Stream {
                base: 0x1000,
                len: 4096,
                stride: 8,
            },
        );
        let report = run_over(&b.finish(), FabricKind::PciExpress);
        assert!(report.sequential_ticks > 0);
        assert_eq!(report.parallel_ticks, 0);
        assert_eq!(report.communication_ticks, 0);
        assert_eq!(report.gpu.instructions, 0);
    }

    #[test]
    fn ownership_specials_in_comm_segments_cost_api_acq() {
        use hetmem_trace::SpecialOp;
        let mut trace = PhasedTrace::new("own");
        let cpu: hetmem_trace::TraceStream = [
            hetmem_trace::Inst::Special(SpecialOp::Release {
                addr: 0x3000_0000,
                bytes: 64,
            }),
            hetmem_trace::Inst::Special(SpecialOp::Acquire {
                addr: 0x3000_0000,
                bytes: 64,
            }),
        ]
        .into_iter()
        .collect();
        trace.push_segment(hetmem_trace::PhaseSegment::new(
            hetmem_trace::Phase::Communication,
            cpu,
            hetmem_trace::TraceStream::new(),
        ));
        let report = run_over(&trace, FabricKind::PciExpress);
        let costs = CommCosts::paper();
        assert_eq!(
            report.communication_ticks,
            2 * costs.cpu_cycles_ticks(costs.api_acq_cycles)
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let trace = Kernel::KMeans.generate(&KernelParams::scaled(32));
        let run = || run_over(&trace, FabricKind::PciExpress);
        assert_eq!(run(), run());
    }
}
