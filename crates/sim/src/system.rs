//! The top-level system: both cores, the shared memory hierarchy, and the
//! phase-by-phase execution of a kernel trace under a communication model.
//!
//! Phase semantics follow the paper's accounting (§V-A):
//!
//! * **Sequential** segments run on the CPU alone.
//! * **Parallel** segments run both cores concurrently, interleaved in
//!   global time so they contend for the LLC and DRAM; the segment ends when
//!   the slower PU finishes.
//! * **Communication** segments execute each semantic event according to the
//!   design point's [`CommModel`]: elided (shared address space), blocking
//!   (synchronous memcpy), or asynchronous (GMAC-style background copy that
//!   only charges the portion it fails to hide behind the following
//!   parallel segment).

use crate::clock::Tick;
use crate::config::SystemConfig;
use crate::cpu::CpuCore;
use crate::fabric::{CommAction, CommCosts, CommModel};
use crate::gpu::GpuCore;
use crate::hierarchy::MemoryHierarchy;
use crate::stats::RunReport;
use hetmem_trace::{Inst, Phase, PhasedTrace, PuKind};

/// A complete simulated heterogeneous system.
#[derive(Debug)]
pub struct System {
    config: SystemConfig,
    costs: CommCosts,
    cpu: CpuCore,
    gpu: GpuCore,
    hierarchy: MemoryHierarchy,
}

impl System {
    /// Builds the baseline system with the paper's Table IV costs.
    #[must_use]
    pub fn new(config: &SystemConfig) -> System {
        System::with_costs(config, CommCosts::paper())
    }

    /// Builds a system with explicit communication-cost parameters.
    #[must_use]
    pub fn with_costs(config: &SystemConfig, costs: CommCosts) -> System {
        System {
            config: *config,
            costs,
            cpu: CpuCore::new(&config.cpu, costs),
            gpu: GpuCore::new(&config.gpu, costs),
            hierarchy: MemoryHierarchy::new(config),
        }
    }

    /// Builds a system whose LLC ignores the explicit-locality bit (the
    /// hybrid-locality ablation).
    #[must_use]
    pub fn without_llc_locality(config: &SystemConfig) -> System {
        let costs = CommCosts::paper();
        System {
            config: *config,
            costs,
            cpu: CpuCore::new(&config.cpu, costs),
            gpu: GpuCore::new(&config.gpu, costs),
            hierarchy: MemoryHierarchy::with_llc_locality(config, false),
        }
    }

    /// The system configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The communication-cost parameters.
    #[must_use]
    pub fn costs(&self) -> &CommCosts {
        &self.costs
    }

    /// Read access to the memory hierarchy (for inspection in tests and
    /// reports).
    #[must_use]
    pub fn hierarchy(&self) -> &MemoryHierarchy {
        &self.hierarchy
    }

    /// Simulates `trace` under `comm`, returning the per-phase breakdown.
    ///
    /// # Panics
    ///
    /// Panics if the trace violates the phased-trace shape invariants (use
    /// [`PhasedTrace::validate`] on untrusted traces first).
    pub fn run(&mut self, trace: &PhasedTrace, comm: &mut dyn CommModel) -> RunReport {
        trace.validate().expect("trace must be well-formed");

        let mut now: Tick = 0;
        let mut seq_ticks: Tick = 0;
        let mut par_ticks: Tick = 0;
        let mut comm_ticks: Tick = 0;
        // Completion time of outstanding asynchronous transfers the next
        // parallel segment's GPU work must wait for.
        let mut dma_ready: Tick = 0;

        for segment in trace.segments() {
            match segment.phase() {
                Phase::Sequential => {
                    let insts = segment.stream(PuKind::Cpu).as_slice();
                    let end = self.cpu.begin(insts, now).run_to_end(&mut self.hierarchy);
                    seq_ticks += end - now;
                    now = end;
                }
                Phase::Parallel => {
                    let cpu_insts = segment.stream(PuKind::Cpu).as_slice();
                    let gpu_insts = segment.stream(PuKind::Gpu).as_slice();
                    // Asynchronous copies stream their data during kernel
                    // execution (GMAC's on-demand/rolling transfer): both
                    // cores start immediately, and only the portion of the
                    // transfer that outlives the computation is charged to
                    // communication below.
                    let mut cpu_run = self.cpu.begin(cpu_insts, now);
                    let mut gpu_run = self.gpu.begin(gpu_insts, now);
                    // Interleave by global time so both cores contend for
                    // the same LLC/DRAM state in order.
                    loop {
                        match (cpu_run.done(), gpu_run.done()) {
                            (true, true) => break,
                            (false, true) => cpu_run.step(&mut self.hierarchy),
                            (true, false) => gpu_run.step(&mut self.hierarchy),
                            (false, false) => {
                                if cpu_run.now() <= gpu_run.now() {
                                    cpu_run.step(&mut self.hierarchy);
                                } else {
                                    gpu_run.step(&mut self.hierarchy);
                                }
                            }
                        }
                    }
                    let cpu_end = cpu_run.finish_tick();
                    let gpu_end = gpu_run.finish_tick();
                    let compute_end = cpu_end.max(gpu_end).max(now);
                    par_ticks += compute_end - now;
                    // A background transfer that outlives the computation
                    // delays the segment's completion; that tail is
                    // communication time.
                    if dma_ready > compute_end {
                        comm_ticks += dma_ready - compute_end;
                        now = dma_ready;
                    } else {
                        now = compute_end;
                    }
                    dma_ready = 0;
                }
                Phase::Communication => {
                    for inst in segment.stream(PuKind::Cpu).iter() {
                        match inst {
                            Inst::Comm(event) => match comm.plan(event) {
                                CommAction::Elide => {}
                                CommAction::Synchronous { ticks } => {
                                    comm_ticks += ticks;
                                    now += ticks;
                                }
                                CommAction::Asynchronous { setup, transfer } => {
                                    comm_ticks += setup;
                                    now += setup;
                                    dma_ready = dma_ready.max(now + transfer);
                                }
                            },
                            Inst::Special(op) => {
                                let ticks = self.costs.special_ticks(op);
                                comm_ticks += ticks;
                                now += ticks;
                            }
                            other => unreachable!(
                                "validated communication segments contain only comm/special \
                                 instructions, found {other:?}"
                            ),
                        }
                    }
                }
            }
        }

        // Any asynchronous transfer still in flight must complete before the
        // program can observe its data.
        if dma_ready > now {
            comm_ticks += dma_ready - now;
            now = dma_ready;
        }
        let _ = now;

        RunReport {
            kernel: trace.name().to_owned(),
            sequential_ticks: seq_ticks,
            parallel_ticks: par_ticks,
            communication_ticks: comm_ticks,
            hierarchy: self.hierarchy.stats(),
            cpu: self.cpu.stats(),
            gpu: self.gpu.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{FabricKind, SynchronousFabric};
    use hetmem_trace::kernels::{Kernel, KernelParams};
    use hetmem_trace::{CommEvent, CommKind, TransferDirection};

    fn pci_model() -> SynchronousFabric {
        SynchronousFabric::new(FabricKind::PciExpress, CommCosts::paper())
    }

    #[test]
    fn reduction_runs_and_attributes_all_phases() {
        let trace = Kernel::Reduction.generate(&KernelParams::scaled(8));
        let mut sys = System::new(&SystemConfig::baseline());
        let report = sys.run(&trace, &mut pci_model());
        assert!(report.sequential_ticks > 0);
        assert!(report.parallel_ticks > 0);
        assert!(report.communication_ticks > 0);
        assert_eq!(report.kernel, "reduction");
    }

    #[test]
    fn parallel_phase_dominates() {
        // The paper's headline observation: most time is parallel compute.
        let trace = Kernel::MatrixMul.generate(&KernelParams::scaled(64));
        let mut sys = System::new(&SystemConfig::baseline());
        let report = sys.run(&trace, &mut pci_model());
        assert!(
            report.phase_fraction(hetmem_trace::Phase::Parallel) > 0.5,
            "{report}"
        );
    }

    #[test]
    fn ideal_fabric_has_zero_communication() {
        let trace = Kernel::Reduction.generate(&KernelParams::scaled(8));
        let mut sys = System::new(&SystemConfig::baseline());
        let mut ideal = SynchronousFabric::new(FabricKind::Ideal, CommCosts::paper());
        let report = sys.run(&trace, &mut ideal);
        assert_eq!(report.communication_ticks, 0);
    }

    #[test]
    fn pci_slower_than_memory_controller() {
        let trace = Kernel::MergeSort.generate(&KernelParams::scaled(8));
        let mut pci_sys = System::new(&SystemConfig::baseline());
        let pci = pci_sys.run(&trace, &mut pci_model());
        let mut mc_sys = System::new(&SystemConfig::baseline());
        let mut mc = SynchronousFabric::new(FabricKind::MemoryController, CommCosts::paper());
        let fusion = mc_sys.run(&trace, &mut mc);
        assert!(pci.communication_ticks > fusion.communication_ticks);
        assert!(pci.total_ticks() > fusion.total_ticks());
    }

    #[test]
    fn async_transfers_are_hidden_behind_parallel_work() {
        // A model that makes every transfer asynchronous with tiny setup.
        struct AsyncModel;
        impl CommModel for AsyncModel {
            fn plan(&mut self, event: &CommEvent) -> CommAction {
                CommAction::Asynchronous {
                    setup: 1_000,
                    transfer: FabricKind::PciExpress
                        .transfer_ticks(event.bytes, &CommCosts::paper()),
                }
            }
        }
        let trace = Kernel::Reduction.generate(&KernelParams::scaled(8));
        let mut sync_sys = System::new(&SystemConfig::baseline());
        let sync = sync_sys.run(&trace, &mut pci_model());
        let mut async_sys = System::new(&SystemConfig::baseline());
        let asy = async_sys.run(&trace, &mut AsyncModel);
        assert!(
            asy.communication_ticks < sync.communication_ticks,
            "async {} vs sync {}",
            asy.communication_ticks,
            sync.communication_ticks
        );
    }

    #[test]
    fn trailing_async_transfer_is_charged_at_the_end() {
        // A trace that ends with an async transfer: nothing can hide it.
        struct AsyncModel;
        impl CommModel for AsyncModel {
            fn plan(&mut self, _: &CommEvent) -> CommAction {
                CommAction::Asynchronous {
                    setup: 10,
                    transfer: 1_000_000,
                }
            }
        }
        let mut b = hetmem_trace::TraceBuilder::new("tail", 0);
        b.communication([CommEvent {
            direction: TransferDirection::DeviceToHost,
            bytes: 4096,
            kind: CommKind::ResultReturn,
            addr: 0,
        }]);
        let trace = b.finish();
        let mut sys = System::new(&SystemConfig::baseline());
        let report = sys.run(&trace, &mut AsyncModel);
        assert_eq!(report.communication_ticks, 10 + 1_000_000);
    }

    #[test]
    fn noc_topologies_order_sensibly_end_to_end() {
        use crate::config::NocTopology;
        let trace = Kernel::KMeans.generate(&KernelParams::scaled(64));
        let total = |topo| {
            let mut cfg = SystemConfig::baseline();
            cfg.noc.topology = topo;
            let mut sys = System::new(&cfg);
            let mut comm = SynchronousFabric::new(FabricKind::Ideal, CommCosts::paper());
            sys.run(&trace, &mut comm).total_ticks()
        };
        let ring = total(NocTopology::Ring);
        let xbar = total(NocTopology::Crossbar);
        let bus = total(NocTopology::Bus);
        // A crossbar's flat one-hop latency never loses to the ring; the
        // shared bus pays serialization under two-PU traffic.
        assert!(xbar <= ring, "crossbar {xbar} vs ring {ring}");
        assert!(bus > xbar, "bus {bus} vs crossbar {xbar}");
    }

    #[test]
    fn empty_trace_runs_to_zero() {
        let trace = PhasedTrace::new("empty");
        let mut sys = System::new(&SystemConfig::baseline());
        let report = sys.run(&trace, &mut pci_model());
        assert_eq!(report.total_ticks(), 0);
        assert_eq!(report.kernel, "empty");
    }

    #[test]
    fn sequential_only_trace_has_no_parallel_or_comm_time() {
        let mut b = hetmem_trace::TraceBuilder::new("seq-only", 1);
        b.sequential(
            500,
            hetmem_trace::InstMix::serial(),
            hetmem_trace::AddressPattern::Stream {
                base: 0x1000,
                len: 4096,
                stride: 8,
            },
        );
        let mut sys = System::new(&SystemConfig::baseline());
        let report = sys.run(&b.finish(), &mut pci_model());
        assert!(report.sequential_ticks > 0);
        assert_eq!(report.parallel_ticks, 0);
        assert_eq!(report.communication_ticks, 0);
        assert_eq!(report.gpu.instructions, 0);
    }

    #[test]
    fn ownership_specials_in_comm_segments_cost_api_acq() {
        use hetmem_trace::SpecialOp;
        let mut trace = PhasedTrace::new("own");
        let cpu: hetmem_trace::TraceStream = [
            hetmem_trace::Inst::Special(SpecialOp::Release {
                addr: 0x3000_0000,
                bytes: 64,
            }),
            hetmem_trace::Inst::Special(SpecialOp::Acquire {
                addr: 0x3000_0000,
                bytes: 64,
            }),
        ]
        .into_iter()
        .collect();
        trace.push_segment(hetmem_trace::PhaseSegment::new(
            hetmem_trace::Phase::Communication,
            cpu,
            hetmem_trace::TraceStream::new(),
        ));
        let mut sys = System::new(&SystemConfig::baseline());
        let report = sys.run(&trace, &mut pci_model());
        let costs = CommCosts::paper();
        assert_eq!(
            report.communication_ticks,
            2 * costs.cpu_cycles_ticks(costs.api_acq_cycles)
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let trace = Kernel::KMeans.generate(&KernelParams::scaled(32));
        let run = || {
            let mut sys = System::new(&SystemConfig::baseline());
            sys.run(&trace, &mut pci_model())
        };
        assert_eq!(run(), run());
    }
}
