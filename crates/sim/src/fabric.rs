//! Communication fabrics and programming-model operation costs (Table IV).
//!
//! The paper models programming-model effects with special instructions
//! whose latency is a design-point parameter: `api-pci` (a PCI-E memcpy,
//! 33250 cycles + bytes at 16 GB/s), `api-acq` (ownership acquire, 1000),
//! `api-tr` (partially-shared-space transfer, 7000), and `lib-pf` (page
//! fault, 42000). This module holds those constants, the hardware fabrics
//! that realize bulk transfers, and the [`CommModel`] hook through which a
//! design point (in `hetmem-core`) decides what each semantic communication
//! event actually costs.

use crate::clock::{ClockDomain, Tick, TICKS_PER_SECOND};
use hetmem_trace::{CommEvent, SpecialOp};

/// Latency parameters for communication and programming-model operations.
///
/// The first four fields are Table IV verbatim (in CPU cycles); the rest are
/// modelling constants for operations the paper uses but does not tabulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommCosts {
    /// `api-pci`: fixed cost of a PCI-E memcpy call (CPU cycles).
    pub api_pci_cycles: u64,
    /// PCI-E 2.0 transfer rate (`trans_rate`), bytes per second.
    pub pci_bytes_per_sec: u64,
    /// `api-acq`: ownership acquire/release action (CPU cycles).
    pub api_acq_cycles: u64,
    /// `api-tr`: data transfer in the partially shared space (CPU cycles).
    pub api_tr_cycles: u64,
    /// `lib-pf`: page-fault handling cost (CPU cycles).
    pub lib_pf_cycles: u64,
    /// Setup cost of a memory-controller (Fusion-style) copy (CPU cycles).
    pub memctl_setup_cycles: u64,
    /// Effective memory-controller copy rate, bytes per second (a copy is a
    /// read plus a write through the controllers, so roughly half of the
    /// 41.6 GB/s aggregate).
    pub memctl_bytes_per_sec: u64,
    /// Kernel-launch overhead (CPU cycles).
    pub kernel_launch_cycles: u64,
    /// Synchronization/barrier overhead (CPU cycles).
    pub sync_cycles: u64,
    /// Allocation / free bookkeeping (CPU cycles).
    pub alloc_cycles: u64,
    /// Per-line issue cost of an explicit locality `push` (cycles of the
    /// pushing PU's clock).
    pub push_cycles_per_line: u64,
}

impl Default for CommCosts {
    fn default() -> CommCosts {
        CommCosts {
            api_pci_cycles: 33_250,
            pci_bytes_per_sec: 16_000_000_000,
            api_acq_cycles: 1_000,
            api_tr_cycles: 7_000,
            lib_pf_cycles: 42_000,
            memctl_setup_cycles: 500,
            memctl_bytes_per_sec: 20_800_000_000,
            kernel_launch_cycles: 1_000,
            sync_cycles: 100,
            alloc_cycles: 200,
            push_cycles_per_line: 1,
        }
    }
}

impl CommCosts {
    /// The paper's Table IV parameters (alias of `Default`).
    #[must_use]
    pub fn paper() -> CommCosts {
        CommCosts::default()
    }

    /// Converts a CPU-cycle cost to ticks.
    #[must_use]
    pub fn cpu_cycles_ticks(&self, cycles: u64) -> Tick {
        ClockDomain::CPU.cycles_to_ticks(cycles)
    }

    /// Ticks needed to move `bytes` at `bytes_per_sec`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is zero.
    #[must_use]
    pub fn bytes_ticks(bytes: u64, bytes_per_sec: u64) -> Tick {
        assert!(bytes_per_sec > 0, "transfer rate must be non-zero");
        // bytes / (bytes/s) seconds × ticks/s, computed without overflow for
        // realistic sizes (bytes < 2^40).
        bytes.saturating_mul(TICKS_PER_SECOND) / bytes_per_sec
    }

    /// The serializing cost of a [`SpecialOp`] when executed by a core, in
    /// ticks. `Push` returns only the per-line issue cost; the actual cache
    /// placement is performed by the core against the hierarchy.
    #[must_use]
    pub fn special_ticks(&self, op: &SpecialOp) -> Tick {
        let cycles = match op {
            SpecialOp::Acquire { .. } | SpecialOp::Release { .. } => self.api_acq_cycles,
            SpecialOp::PageFault { .. } => self.lib_pf_cycles,
            SpecialOp::Push { bytes, .. } => {
                let lines = bytes.div_ceil(64).max(1);
                self.push_cycles_per_line * lines
            }
            SpecialOp::KernelLaunch => self.kernel_launch_cycles,
            SpecialOp::Sync => self.sync_cycles,
            SpecialOp::Alloc { .. } | SpecialOp::Free { .. } => self.alloc_cycles,
        };
        self.cpu_cycles_ticks(cycles)
    }
}

/// The hardware mechanisms that can move data between the PUs' memories.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FabricKind {
    /// A PCI-Express 2.0 link driven by memcpy APIs (`api-pci`).
    PciExpress,
    /// The PCI aperture: a pinned shared window with cheap asynchronous
    /// copies (`api-tr`), as used by the LRB programming model.
    PciAperture,
    /// An on-chip copy through the memory controllers (Fusion-style).
    MemoryController,
    /// An idealized fabric with zero transfer cost (IDEAL-HETERO).
    Ideal,
}

impl FabricKind {
    /// All fabrics, in rough order of decreasing cost.
    pub const ALL: [FabricKind; 4] = [
        FabricKind::PciExpress,
        FabricKind::PciAperture,
        FabricKind::MemoryController,
        FabricKind::Ideal,
    ];

    /// End-to-end ticks to move `bytes` across this fabric.
    #[must_use]
    pub fn transfer_ticks(self, bytes: u64, costs: &CommCosts) -> Tick {
        match self {
            FabricKind::PciExpress => {
                costs.cpu_cycles_ticks(costs.api_pci_cycles)
                    + CommCosts::bytes_ticks(bytes, costs.pci_bytes_per_sec)
            }
            FabricKind::PciAperture => {
                costs.cpu_cycles_ticks(costs.api_tr_cycles)
                    + CommCosts::bytes_ticks(bytes, costs.pci_bytes_per_sec)
            }
            FabricKind::MemoryController => {
                costs.cpu_cycles_ticks(costs.memctl_setup_cycles)
                    + CommCosts::bytes_ticks(bytes, costs.memctl_bytes_per_sec)
            }
            FabricKind::Ideal => 0,
        }
    }
}

/// The Table IV cost class that dominates one communication action — the
/// label observability attaches to every planned transfer so event traces
/// can be reconciled against the paper's cost taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CommCostClass {
    /// `api-pci`: a PCI-E memcpy API call.
    ApiPci,
    /// `api-tr`: a transfer within the partially shared window.
    ApiTr,
    /// `api-acq`: an ownership acquire/release action.
    ApiAcq,
    /// `lib-pf`: first-touch page-fault handling.
    LibPf,
    /// An on-chip memory-controller copy (Fusion-style).
    MemCtl,
    /// No cost: the shared address space elides the transfer.
    Elided,
    /// The model did not classify the event.
    Unclassified,
}

impl CommCostClass {
    /// Short machine-readable name (matches the paper's spelling where one
    /// exists).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CommCostClass::ApiPci => "api-pci",
            CommCostClass::ApiTr => "api-tr",
            CommCostClass::ApiAcq => "api-acq",
            CommCostClass::LibPf => "lib-pf",
            CommCostClass::MemCtl => "memctl",
            CommCostClass::Elided => "elided",
            CommCostClass::Unclassified => "unclassified",
        }
    }
}

impl std::fmt::Display for CommCostClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl FabricKind {
    /// The cost class a plain transfer over this fabric falls under.
    #[must_use]
    pub fn cost_class(self) -> CommCostClass {
        match self {
            FabricKind::PciExpress => CommCostClass::ApiPci,
            FabricKind::PciAperture => CommCostClass::ApiTr,
            FabricKind::MemoryController => CommCostClass::MemCtl,
            FabricKind::Ideal => CommCostClass::Elided,
        }
    }
}

impl std::fmt::Display for FabricKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricKind::PciExpress => f.write_str("PCI-E"),
            FabricKind::PciAperture => f.write_str("PCI aperture"),
            FabricKind::MemoryController => f.write_str("memory controller"),
            FabricKind::Ideal => f.write_str("ideal"),
        }
    }
}

/// How a design point realizes one semantic communication event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommAction {
    /// No transfer needed: the data is already addressable by the consumer
    /// (shared address space).
    Elide,
    /// A blocking transfer of the given duration.
    Synchronous {
        /// Total ticks the host is blocked.
        ticks: Tick,
    },
    /// An overlapped transfer: the host pays `setup` and continues; the data
    /// is available `transfer` ticks after the setup completes (GMAC-style
    /// asynchronous copies).
    Asynchronous {
        /// Host-side blocking setup ticks.
        setup: Tick,
        /// Background transfer ticks after setup.
        transfer: Tick,
    },
}

/// A design point's policy for realizing communication events.
///
/// Implemented in `hetmem-core` per memory-model design point; the simulator
/// only executes the resulting actions.
pub trait CommModel {
    /// Decide how `event` is realized. Called once per dynamic event in
    /// trace order, so implementations may track first-touch state (e.g. for
    /// `lib-pf` page faults).
    fn plan(&mut self, event: &CommEvent) -> CommAction;

    /// The Table IV cost class the *next* [`CommModel::plan`] call for
    /// `event` would fall under. Observability queries this immediately
    /// before `plan` (which may mutate first-touch state), so it must not
    /// mutate. The default leaves events unclassified.
    fn cost_class(&self, event: &CommEvent) -> CommCostClass {
        let _ = event;
        CommCostClass::Unclassified
    }
}

/// The simplest model: every event is a synchronous transfer over one
/// fabric. This is the CPU+GPU (CUDA) disjoint-memory behaviour when used
/// with [`FabricKind::PciExpress`].
#[derive(Clone, Copy, Debug)]
pub struct SynchronousFabric {
    /// The fabric used for every transfer.
    pub fabric: FabricKind,
    /// Latency parameters.
    pub costs: CommCosts,
}

impl SynchronousFabric {
    /// Creates the model.
    #[must_use]
    pub fn new(fabric: FabricKind, costs: CommCosts) -> SynchronousFabric {
        SynchronousFabric { fabric, costs }
    }
}

impl CommModel for SynchronousFabric {
    fn plan(&mut self, event: &CommEvent) -> CommAction {
        match self.fabric {
            FabricKind::Ideal => CommAction::Elide,
            f => CommAction::Synchronous {
                ticks: f.transfer_ticks(event.bytes, &self.costs),
            },
        }
    }

    fn cost_class(&self, _event: &CommEvent) -> CommCostClass {
        self.fabric.cost_class()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetmem_trace::{CommKind, TransferDirection};

    fn event(bytes: u64) -> CommEvent {
        CommEvent {
            direction: TransferDirection::HostToDevice,
            bytes,
            kind: CommKind::InitialInput,
            addr: 0,
        }
    }

    #[test]
    fn table_iv_defaults() {
        let c = CommCosts::paper();
        assert_eq!(c.api_pci_cycles, 33_250);
        assert_eq!(c.api_acq_cycles, 1_000);
        assert_eq!(c.api_tr_cycles, 7_000);
        assert_eq!(c.lib_pf_cycles, 42_000);
        assert_eq!(c.pci_bytes_per_sec, 16_000_000_000);
    }

    #[test]
    fn pci_transfer_cost_matches_hand_computation() {
        let c = CommCosts::paper();
        // 320512 bytes at 16 GB/s = 20.032 µs = 841344 ticks; setup
        // 33250 CPU cycles = 399000 ticks.
        let t = FabricKind::PciExpress.transfer_ticks(320_512, &c);
        assert_eq!(t, 399_000 + 841_344);
    }

    #[test]
    fn fabric_cost_ordering() {
        let c = CommCosts::paper();
        let bytes = 65_536;
        let pci = FabricKind::PciExpress.transfer_ticks(bytes, &c);
        let ap = FabricKind::PciAperture.transfer_ticks(bytes, &c);
        let mc = FabricKind::MemoryController.transfer_ticks(bytes, &c);
        let ideal = FabricKind::Ideal.transfer_ticks(bytes, &c);
        assert!(pci > ap, "aperture avoids the heavyweight memcpy setup");
        assert!(ap > mc, "on-chip copies beat PCI");
        assert_eq!(ideal, 0);
    }

    #[test]
    fn zero_byte_transfer_still_pays_setup() {
        let c = CommCosts::paper();
        assert_eq!(
            FabricKind::PciExpress.transfer_ticks(0, &c),
            c.cpu_cycles_ticks(c.api_pci_cycles)
        );
    }

    #[test]
    fn special_op_costs() {
        let c = CommCosts::paper();
        assert_eq!(
            c.special_ticks(&SpecialOp::Acquire { addr: 0, bytes: 64 }),
            c.cpu_cycles_ticks(1000)
        );
        assert_eq!(
            c.special_ticks(&SpecialOp::PageFault { addr: 0 }),
            c.cpu_cycles_ticks(42_000)
        );
        // Push of 1 KiB = 16 lines at 1 cycle each.
        assert_eq!(
            c.special_ticks(&SpecialOp::Push {
                level: hetmem_trace::CacheLevel::SharedLlc,
                addr: 0,
                bytes: 1024
            }),
            c.cpu_cycles_ticks(16)
        );
    }

    #[test]
    fn synchronous_fabric_model_plans_blocking_transfers() {
        let mut m = SynchronousFabric::new(FabricKind::PciExpress, CommCosts::paper());
        match m.plan(&event(1024)) {
            CommAction::Synchronous { ticks } => assert!(ticks > 0),
            other => panic!("expected synchronous, got {other:?}"),
        }
        let mut ideal = SynchronousFabric::new(FabricKind::Ideal, CommCosts::paper());
        assert_eq!(ideal.plan(&event(1024)), CommAction::Elide);
    }

    #[test]
    fn fabrics_map_to_table_iv_cost_classes() {
        assert_eq!(FabricKind::PciExpress.cost_class(), CommCostClass::ApiPci);
        assert_eq!(FabricKind::PciAperture.cost_class(), CommCostClass::ApiTr);
        assert_eq!(
            FabricKind::MemoryController.cost_class(),
            CommCostClass::MemCtl
        );
        assert_eq!(FabricKind::Ideal.cost_class(), CommCostClass::Elided);
        assert_eq!(CommCostClass::ApiPci.name(), "api-pci");
        let m = SynchronousFabric::new(FabricKind::PciAperture, CommCosts::paper());
        assert_eq!(m.cost_class(&event(64)), CommCostClass::ApiTr);
    }
}
